//! Integration tests cross-checking the Section 5 closed forms against the
//! simulator and against the paper's own worked numbers.

use mobiquery_repro::geom::mps_to_mph;
use mobiquery_repro::mobiquery::analysis::*;

#[test]
fn paper_worked_examples_reproduce() {
    // Section 5.2: vprfh ~ 469 mph, 4 vs ~58 trees, crossover ~ tens of seconds.
    assert!((paper_prefetch_speed_mph() - 466.0).abs() < 10.0);
    let storage = AnalysisParams::storage_example();
    assert_eq!(prefetch_length_jit(&storage), 4);
    assert!(prefetch_length_greedy(&storage) >= 58);
    assert!(storage_crossover_lifetime_s(&storage) < storage.lifetime_s);

    // Section 5.4: 35 interfering trees for greedy vs a handful for JIT,
    // v* ~ 131 mph.
    let contention = AnalysisParams::contention_example();
    assert_eq!(interference_length_greedy(&contention), 35);
    assert!(interference_length_jit(&contention) <= 4);
    assert!((mps_to_mph(contention_speed_threshold_mps(&contention)) - 131.0).abs() < 2.0);
}

#[test]
fn warmup_bound_is_monotone_in_advance_time_and_sleep_period() {
    let base = AnalysisParams {
        period_s: 2.0,
        freshness_s: 1.0,
        sleep_s: 9.0,
        lifetime_s: 500.0,
        user_speed_mps: 4.0,
        prefetch_speed_mps: 200.0,
        query_radius_m: 150.0,
        comm_range_m: 105.0,
    };
    // More advance notice never lengthens the warm-up.
    let mut last = f64::INFINITY;
    for ta in [-10.0, -5.0, 0.0, 5.0, 10.0, 15.0] {
        let w = warmup_interval_s(&base, ta);
        assert!(w <= last + 1e-9);
        last = w;
    }
    // Longer sleep periods need longer warm-ups.
    let longer_sleep = AnalysisParams {
        sleep_s: 15.0,
        ..base
    };
    assert!(warmup_interval_s(&longer_sleep, 0.0) >= warmup_interval_s(&base, 0.0));
}

#[test]
fn jit_storage_is_insensitive_to_query_lifetime_but_greedy_is_not() {
    let short = AnalysisParams {
        lifetime_s: 100.0,
        ..AnalysisParams::storage_example()
    };
    let long = AnalysisParams {
        lifetime_s: 1_000.0,
        ..AnalysisParams::storage_example()
    };
    assert_eq!(prefetch_length_jit(&short), prefetch_length_jit(&long));
    assert!(prefetch_length_greedy(&long) > prefetch_length_greedy(&short));
}

#[test]
fn contention_gap_closes_at_very_high_user_speeds() {
    // Above v* the two schemes have the same interference length.
    let mut p = AnalysisParams::contention_example();
    p.user_speed_mps = contention_speed_threshold_mps(&p) * 1.5;
    p.prefetch_speed_mps = p.user_speed_mps * 10.0;
    assert_eq!(
        interference_length_jit(&p),
        interference_length_greedy(&p),
        "above v* both schemes interfere equally"
    );
}
