//! CLI argument handling of the `repro` binary.
//!
//! A daemon-shaped CLI gets scripted against, so malformed invocations must
//! fail loudly: every bad flag exits non-zero with a usage message on
//! stderr, and `--help` keeps exiting zero. These run the real binary via
//! `CARGO_BIN_EXE_repro` — no argv mocking.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn assert_usage_failure(args: &[&str]) {
    let out = repro(args);
    assert!(
        !out.status.success(),
        "`repro {}` should exit non-zero",
        args.join(" ")
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("usage: repro"),
        "`repro {}` should print usage on stderr, got:\n{stderr}",
        args.join(" ")
    );
}

#[test]
fn help_exits_zero_with_usage_on_stdout() {
    for args in [
        &["--help"][..],
        &["-h"],
        &["serve", "--help"],
        &["load", "-h"],
    ] {
        let out = repro(args);
        assert!(out.status.success(), "`repro {}` exits 0", args.join(" "));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage: repro"));
    }
}

#[test]
fn no_target_is_a_usage_error() {
    assert_usage_failure(&[]);
    assert_usage_failure(&["--quick"]);
}

#[test]
fn zero_users_is_a_usage_error() {
    assert_usage_failure(&["--users", "0", "multiuser"]);
    assert_usage_failure(&["--users", "-3", "multiuser"]);
    assert_usage_failure(&["--users", "many", "multiuser"]);
    assert_usage_failure(&["--users"]);
}

#[test]
fn malformed_jobs_are_usage_errors() {
    // --jobs shards query resolution *inside* the engine as well as fanning
    // out across trials, so a nonsense worker count must die at argv: zero
    // workers is not a serial run, it is a typo.
    assert_usage_failure(&["--jobs", "0", "fig4"]);
    assert_usage_failure(&["--jobs", "-1", "fig4"]);
    assert_usage_failure(&["--jobs", "many", "fig4"]);
    assert_usage_failure(&["--jobs", "1.5", "fig4"]);
    assert_usage_failure(&["--jobs"]);
    // The service subcommands accept the same flag with the same contract.
    assert_usage_failure(&["serve", "--periods", "5", "--jobs", "0"]);
    assert_usage_failure(&["serve", "--periods", "5", "--jobs", "-4"]);
    assert_usage_failure(&["serve", "--periods", "5", "--jobs", "abc"]);
    assert_usage_failure(&["load", "--qps", "4", "--duration", "10", "--jobs", "0"]);
    assert_usage_failure(&["load", "--qps", "4", "--duration", "10", "--jobs"]);
}

#[test]
fn malformed_scale_lists_are_usage_errors() {
    assert_usage_failure(&["--bench", "/dev/null", "--scale", "", "fig4"]);
    assert_usage_failure(&["--bench", "/dev/null", "--scale", "1000,,2000", "fig4"]);
    assert_usage_failure(&["--bench", "/dev/null", "--scale", "1000,0", "fig4"]);
    assert_usage_failure(&["--bench", "/dev/null", "--scale", "abc", "fig4"]);
    assert_usage_failure(&["--bench", "/dev/null", "--scale"]);
}

#[test]
fn unknown_flags_and_targets_are_usage_errors() {
    assert_usage_failure(&["--frobnicate", "fig4"]);
    assert_usage_failure(&["fig9"]);
    assert_usage_failure(&["--format", "xml", "fig4"]);
}

#[test]
fn malformed_churn_rates_are_usage_errors() {
    // A rate must be a finite fraction strictly between 0 and 1.
    assert_usage_failure(&["--churn-rate", "0", "churn"]);
    assert_usage_failure(&["--churn-rate", "-1", "churn"]);
    assert_usage_failure(&["--churn-rate", "-0.05", "churn"]);
    assert_usage_failure(&["--churn-rate", "1", "churn"]);
    assert_usage_failure(&["--churn-rate", "1.5", "churn"]);
    assert_usage_failure(&["--churn-rate", "nan", "churn"]);
    assert_usage_failure(&["--churn-rate", "inf", "churn"]);
    assert_usage_failure(&["--churn-rate", "abc", "churn"]);
    assert_usage_failure(&["--churn-rate"]);
}

#[test]
fn churn_target_requires_a_rate() {
    assert_usage_failure(&["churn"]);
    assert_usage_failure(&["--quick", "churn"]);
    let out = repro(&["--quick", "churn"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--churn-rate"),
        "the error must name the missing flag, got:\n{stderr}"
    );
}

#[test]
fn churn_scale_lists_are_validated_like_bench_ones() {
    assert_usage_failure(&["--churn-rate", "0.05", "--scale", "10,abc", "churn"]);
    assert_usage_failure(&["--churn-rate", "0.05", "--scale", "0", "churn"]);
    assert_usage_failure(&["--churn-rate", "0.05", "--scale", "", "churn"]);
    // --scale without --bench still needs the churn target to make sense.
    assert_usage_failure(&["--scale", "1000", "fig4"]);
}

#[test]
fn all_does_not_include_the_churn_target() {
    // `all` reproduces the paper's static figures; churn must stay an
    // explicit opt-in, so `repro all` must not fail for lack of a rate.
    let out = repro(&["--help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--churn-rate R churn"));
}

#[test]
fn churn_target_succeeds_on_valid_arguments() {
    let out = repro(&[
        "--quick",
        "--scale",
        "300",
        "--churn-rate",
        "0.1",
        "--format",
        "json",
        "churn",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"churn\""));
    assert!(stdout.contains("\"backbone_digest\""));
    assert!(stdout.contains("\"per_batch_verified\": true"));
    assert!(
        !stdout.contains("_ms"),
        "deterministic churn JSON must not leak wall-clock fields"
    );
}

#[test]
fn malformed_fault_losses_are_usage_errors() {
    // A loss rate is a probability below 1: the batch sweep path...
    assert_usage_failure(&["--fault-loss", "-0.1", "resilience"]);
    assert_usage_failure(&["--fault-loss", "-1", "resilience"]);
    assert_usage_failure(&["--fault-loss", "1", "resilience"]);
    assert_usage_failure(&["--fault-loss", "1.5", "resilience"]);
    assert_usage_failure(&["--fault-loss", "nan", "resilience"]);
    assert_usage_failure(&["--fault-loss", "inf", "resilience"]);
    assert_usage_failure(&["--fault-loss", "lossy", "resilience"]);
    assert_usage_failure(&["--fault-loss"]);
    // ...and the service path enforce the same contract.
    assert_usage_failure(&[
        "load",
        "--qps",
        "2",
        "--duration",
        "4",
        "--fault-loss",
        "-0.2",
    ]);
    assert_usage_failure(&[
        "load",
        "--qps",
        "2",
        "--duration",
        "4",
        "--fault-loss",
        "1.2",
    ]);
    assert_usage_failure(&[
        "load",
        "--qps",
        "2",
        "--duration",
        "4",
        "--fault-loss",
        "abc",
    ]);
    assert_usage_failure(&["load", "--qps", "2", "--duration", "4", "--fault-loss"]);
    assert_usage_failure(&["serve", "--periods", "4", "--fault-loss", "2"]);
    assert_usage_failure(&["serve", "--periods", "4", "--fault-loss", "nan"]);
}

#[test]
fn resilience_target_requires_a_loss_rate() {
    assert_usage_failure(&["resilience"]);
    assert_usage_failure(&["--quick", "resilience"]);
    let out = repro(&["--quick", "resilience"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--fault-loss"),
        "the error must name the missing flag, got:\n{stderr}"
    );
}

#[test]
fn dependent_fault_flags_need_the_loss_rate() {
    // --fault-burst and --no-recovery modify a fault profile that only
    // exists once --fault-loss is given.
    assert_usage_failure(&["--fault-burst", "4", "resilience"]);
    assert_usage_failure(&[
        "load",
        "--qps",
        "2",
        "--duration",
        "4",
        "--fault-burst",
        "4",
    ]);
    assert_usage_failure(&["load", "--qps", "2", "--duration", "4", "--no-recovery"]);
    assert_usage_failure(&["serve", "--periods", "4", "--no-recovery"]);
    // A burst is a mean dwell in periods, so it must be at least one.
    assert_usage_failure(&["--fault-loss", "0.1", "--fault-burst", "0.5", "resilience"]);
    assert_usage_failure(&["--fault-loss", "0.1", "--fault-burst", "0", "resilience"]);
    assert_usage_failure(&["--fault-loss", "0.1", "--fault-burst", "abc", "resilience"]);
    // --no-recovery is a service-side baseline switch, not a batch flag:
    // the batch sweep always runs both arms itself.
    assert_usage_failure(&["--fault-loss", "0.1", "--no-recovery", "resilience"]);
}

#[test]
fn resilience_target_succeeds_on_valid_arguments() {
    let out = repro(&[
        "--quick",
        "--scale",
        "200",
        "--fault-loss",
        "0.2",
        "--format",
        "json",
        "resilience",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"resilience\""));
    assert!(stdout.contains("\"recovery\""));
    assert!(stdout.contains("\"mean_delivery_ratio\""));
    assert!(
        !stdout.contains("_ms"),
        "deterministic resilience JSON must not leak wall-clock fields"
    );
}

#[test]
fn serve_argument_errors_exit_nonzero_with_usage() {
    // Missing required --periods.
    assert_usage_failure(&["serve"]);
    // Malformed values.
    assert_usage_failure(&["serve", "--periods", "0"]);
    assert_usage_failure(&["serve", "--periods", "soon"]);
    assert_usage_failure(&["serve", "--periods"]);
    assert_usage_failure(&["serve", "--periods", "5", "--nodes", "0"]);
    // Flags of the other subcommand / unknown flags.
    assert_usage_failure(&["serve", "--periods", "5", "--qps", "2"]);
    assert_usage_failure(&["serve", "--periods", "5", "--frobnicate"]);
}

#[test]
fn load_argument_errors_exit_nonzero_with_usage() {
    assert_usage_failure(&["load"]);
    assert_usage_failure(&["load", "--qps", "4"]);
    assert_usage_failure(&["load", "--duration", "10"]);
    assert_usage_failure(&["load", "--qps", "0", "--duration", "10"]);
    assert_usage_failure(&["load", "--qps", "nan", "--duration", "10"]);
    assert_usage_failure(&["load", "--qps", "4", "--duration", "0"]);
    assert_usage_failure(&["load", "--qps", "4", "--duration", "10", "--periods", "5"]);
}

#[test]
fn service_subcommands_succeed_on_valid_arguments() {
    let out = repro(&["serve", "--periods", "2", "--quick"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"mobiquery-repro/service/v1\""));
    assert!(stdout.contains("\"serve\""));

    let out = repro(&["load", "--qps", "2", "--duration", "4", "--quick"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"load\""));
    assert!(stdout.contains("\"latency\""));
}
