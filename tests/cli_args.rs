//! CLI argument handling of the `repro` binary.
//!
//! A daemon-shaped CLI gets scripted against, so malformed invocations must
//! fail loudly: every bad flag exits non-zero with a usage message on
//! stderr, and `--help` keeps exiting zero. These run the real binary via
//! `CARGO_BIN_EXE_repro` — no argv mocking.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn assert_usage_failure(args: &[&str]) {
    let out = repro(args);
    assert!(
        !out.status.success(),
        "`repro {}` should exit non-zero",
        args.join(" ")
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("usage: repro"),
        "`repro {}` should print usage on stderr, got:\n{stderr}",
        args.join(" ")
    );
}

#[test]
fn help_exits_zero_with_usage_on_stdout() {
    for args in [
        &["--help"][..],
        &["-h"],
        &["serve", "--help"],
        &["load", "-h"],
    ] {
        let out = repro(args);
        assert!(out.status.success(), "`repro {}` exits 0", args.join(" "));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage: repro"));
    }
}

#[test]
fn no_target_is_a_usage_error() {
    assert_usage_failure(&[]);
    assert_usage_failure(&["--quick"]);
}

#[test]
fn zero_users_is_a_usage_error() {
    assert_usage_failure(&["--users", "0", "multiuser"]);
    assert_usage_failure(&["--users", "-3", "multiuser"]);
    assert_usage_failure(&["--users", "many", "multiuser"]);
    assert_usage_failure(&["--users"]);
}

#[test]
fn malformed_scale_lists_are_usage_errors() {
    assert_usage_failure(&["--bench", "/dev/null", "--scale", "", "fig4"]);
    assert_usage_failure(&["--bench", "/dev/null", "--scale", "1000,,2000", "fig4"]);
    assert_usage_failure(&["--bench", "/dev/null", "--scale", "1000,0", "fig4"]);
    assert_usage_failure(&["--bench", "/dev/null", "--scale", "abc", "fig4"]);
    assert_usage_failure(&["--bench", "/dev/null", "--scale"]);
}

#[test]
fn unknown_flags_and_targets_are_usage_errors() {
    assert_usage_failure(&["--frobnicate", "fig4"]);
    assert_usage_failure(&["fig9"]);
    assert_usage_failure(&["--format", "xml", "fig4"]);
}

#[test]
fn serve_argument_errors_exit_nonzero_with_usage() {
    // Missing required --periods.
    assert_usage_failure(&["serve"]);
    // Malformed values.
    assert_usage_failure(&["serve", "--periods", "0"]);
    assert_usage_failure(&["serve", "--periods", "soon"]);
    assert_usage_failure(&["serve", "--periods"]);
    assert_usage_failure(&["serve", "--periods", "5", "--nodes", "0"]);
    // Flags of the other subcommand / unknown flags.
    assert_usage_failure(&["serve", "--periods", "5", "--qps", "2"]);
    assert_usage_failure(&["serve", "--periods", "5", "--frobnicate"]);
}

#[test]
fn load_argument_errors_exit_nonzero_with_usage() {
    assert_usage_failure(&["load"]);
    assert_usage_failure(&["load", "--qps", "4"]);
    assert_usage_failure(&["load", "--duration", "10"]);
    assert_usage_failure(&["load", "--qps", "0", "--duration", "10"]);
    assert_usage_failure(&["load", "--qps", "nan", "--duration", "10"]);
    assert_usage_failure(&["load", "--qps", "4", "--duration", "0"]);
    assert_usage_failure(&["load", "--qps", "4", "--duration", "10", "--periods", "5"]);
}

#[test]
fn service_subcommands_succeed_on_valid_arguments() {
    let out = repro(&["serve", "--periods", "2", "--quick"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"mobiquery-repro/service/v1\""));
    assert!(stdout.contains("\"serve\""));

    let out = repro(&["load", "--qps", "2", "--duration", "4", "--quick"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"load\""));
    assert!(stdout.contains("\"latency\""));
}
