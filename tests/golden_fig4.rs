//! Golden-snapshot gate: `repro --quick --format json fig4` must keep
//! producing byte-identical output.
//!
//! The spatial-index work (and any future performance work) is only allowed
//! to change *speed*, never *results* — the simulation is a pure function of
//! its scenario. This test pins the full CLI path (argument parsing, the
//! trial planner, JSON rendering) against a committed snapshot so a hot-path
//! "optimization" that perturbs tie-breaks, RNG draw order or float
//! evaluation order fails CI instead of silently shifting every figure.
//!
//! To update the snapshot after a *deliberate* behaviour change:
//!
//! ```text
//! cargo run --release --bin repro -- --quick --format json \
//!     --out tests/golden/fig4_quick.json fig4
//! ```

use std::process::Command;

const GOLDEN: &str = include_str!("golden/fig4_quick.json");

#[test]
fn repro_quick_fig4_json_matches_golden_snapshot() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--format", "json", "fig4"])
        .output()
        .expect("repro binary runs");
    assert!(
        output.status.success(),
        "repro exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let got = String::from_utf8(output.stdout).expect("repro emits UTF-8 JSON");
    if got != GOLDEN {
        // Show the first divergent line: the full documents are hundreds of
        // lines and the interesting part is where they split.
        let line = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| got.lines().count().min(GOLDEN.lines().count()) + 1);
        panic!(
            "fig4 quick JSON diverged from tests/golden/fig4_quick.json at line {line}.\n\
             Performance work must not change simulation results; if this \
             change is deliberate, regenerate the snapshot (see this test's \
             module docs)."
        );
    }
}

#[test]
fn repro_quick_fig4_is_jobs_invariant() {
    // The golden bytes must not depend on the worker count either; this is
    // the same property ci.sh checks with a jobs-1-vs-4 diff, pinned here so
    // `cargo test` alone exercises it.
    let run = |jobs: &str| {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["--quick", "--format", "json", "--jobs", jobs, "fig4"])
            .output()
            .expect("repro binary runs");
        assert!(output.status.success());
        output.stdout
    };
    assert_eq!(run("1"), run("3"), "--jobs must never change results");
}
