//! Golden-snapshot gate for the resilience target: `repro --quick --scale
//! 2000 --fault-loss 0.2 --format json resilience` must keep producing
//! byte-identical output.
//!
//! This pins the whole fault-injection stack — the seed-derived
//! Gilbert–Elliott loss schedule, install retries with exponential backoff,
//! crash-triggered tree repair and the recovery-on/off pairing over the
//! identical schedule — against a committed snapshot. The JSON carries no
//! wall-clock fields, so the bytes are a pure function of the seed.
//!
//! To update the snapshot after a *deliberate* behaviour change:
//!
//! ```text
//! cargo run --release --bin repro -- --quick --scale 2000 \
//!     --fault-loss 0.2 --format json \
//!     --out tests/golden/resilience_quick.json resilience
//! ```

use std::process::Command;

const GOLDEN: &str = include_str!("golden/resilience_quick.json");
const ARGS: [&str; 7] = [
    "--quick",
    "--scale",
    "2000",
    "--fault-loss",
    "0.2",
    "--format",
    "json",
];

#[test]
fn repro_quick_resilience_json_matches_golden_snapshot() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(ARGS)
        .arg("resilience")
        .output()
        .expect("repro binary runs");
    assert!(
        output.status.success(),
        "repro exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let got = String::from_utf8(output.stdout).expect("repro emits UTF-8 JSON");
    if got != GOLDEN {
        let line = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| got.lines().count().min(GOLDEN.lines().count()) + 1);
        panic!(
            "resilience quick JSON diverged from tests/golden/resilience_quick.json at line \
             {line}.\nThe fault schedule and every recovery decision are pure functions of \
             the seed; if this change is deliberate, regenerate the snapshot (see this \
             test's module docs)."
        );
    }
}

#[test]
fn repro_quick_resilience_is_jobs_invariant() {
    let run = |jobs: &str| {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(ARGS)
            .args(["--jobs", jobs, "resilience"])
            .output()
            .expect("repro binary runs");
        assert!(output.status.success());
        output.stdout
    };
    assert_eq!(
        run("1"),
        run("3"),
        "--jobs must never change resilience results"
    );
}
