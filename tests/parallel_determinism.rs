//! Parallel trial execution must be invisible in the results: any figure
//! computed with `jobs = N` has to be bit-identical to the serial run. This
//! is what lets `repro --jobs N` default to every core while CI diffs its
//! JSON output byte-for-byte against `--jobs 1`.

use mobiquery_repro::experiments::runner::trial_seed;
use mobiquery_repro::experiments::{fig4, fig8, multiuser, ExperimentConfig};
use mobiquery_repro::sim::pool;
use std::process::Command;

#[test]
fn fig4_points_are_identical_serial_and_parallel() {
    let serial = fig4::run_points(&ExperimentConfig::quick().with_jobs(1));
    let parallel = fig4::run_points(&ExperimentConfig::quick().with_jobs(4));
    // Bit-identical, not approximately equal: the seeds are a pure function
    // of the plan coordinates, so no float may differ.
    assert_eq!(serial, parallel);
}

#[test]
fn fig8_json_is_identical_serial_and_parallel() {
    // fig8 exercises the multi-metric run_map path (power + baseline from
    // one trial); compare all the way down to the rendered bytes.
    let serial = fig8::run_json(&ExperimentConfig::quick().with_jobs(1));
    let parallel = fig8::run_json(&ExperimentConfig::quick().with_jobs(3));
    assert_eq!(serial.to_pretty_string(), parallel.to_pretty_string());
}

#[test]
fn multiuser_points_are_identical_serial_and_parallel() {
    // The multi-user sweep runs shared and naive modes per trial and asserts
    // them equal internally; here we pin that the *fan-out* is also invisible.
    let config = ExperimentConfig::quick().with_users(4);
    let serial = multiuser::run_points(&config.with_jobs(1));
    let parallel = multiuser::run_points(&config.with_jobs(4));
    assert_eq!(serial, parallel);
}

#[test]
fn multiuser_binary_is_jobs_invariant_at_64_users() {
    // The CI gate, pinned as a test: a 64-user quick sweep through the full
    // CLI path must emit byte-identical JSON for --jobs 1 and --jobs 4.
    let run = |jobs: &str| {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args([
                "--quick",
                "--users",
                "64",
                "--format",
                "json",
                "--jobs",
                jobs,
                "multiuser",
            ])
            .output()
            .expect("repro binary runs");
        assert!(
            output.status.success(),
            "repro exited with {:?}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );
        output.stdout
    };
    assert_eq!(run("1"), run("4"), "--jobs must never change results");
}

#[test]
fn trial_seeds_are_stable_across_releases() {
    // The committed BENCH/results artifacts depend on the seed derivation;
    // pin a few values so an accidental change to the mixer is caught here
    // rather than as a mysterious CI diff.
    assert_eq!(trial_seed(42, 0, 0), 13675133952202209295);
    assert_eq!(trial_seed(42, 3, 1), 1535636025250397661);
    assert_ne!(trial_seed(42, 0, 1), trial_seed(42, 1, 0));
    assert_ne!(trial_seed(42, 2, 0), trial_seed(43, 2, 0));
}

#[test]
fn pool_overlaps_independent_tasks() {
    use std::time::{Duration, Instant};
    // Eight 50 ms sleeps on eight workers must overlap even on one core
    // (sleeping threads hold no CPU); serial execution would take 400 ms.
    let start = Instant::now();
    pool::run_indexed(8, vec![(); 8], |_, ()| {
        std::thread::sleep(Duration::from_millis(50));
    });
    assert!(
        start.elapsed() < Duration::from_millis(300),
        "workers did not run concurrently: {:?}",
        start.elapsed()
    );
}
