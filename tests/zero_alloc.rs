//! Zero-allocation steady state, proven by a counting global allocator.
//!
//! The stepped engine recycles every per-period buffer: hop-path vectors and
//! per-event scratch in the worlds, tree buffers through `TreeCache` /
//! `FloodScratch`, the resolve's `nodes_in_area` scratch on `SteppedSim`,
//! pre-reserved query logs, and a calendar queue whose wheel never shrinks.
//! This test steps a steady workload (see `mobiquery_repro::steady`) with a
//! counting `#[global_allocator]` installed and asserts the warm loop's
//! heap-allocation delta is exactly zero per period boundary — not "small",
//! zero. Any new allocation on the hot path fails CI by name.

// The counting allocator must implement `GlobalAlloc`, which is an unsafe
// trait; this integration test is its own crate root, so the allow is scoped
// to exactly this file.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation (fresh allocs
/// and growing reallocs — the events a zero-alloc steady state must not
/// have; deallocations are free to happen and are not counted).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the only addition is a relaxed counter increment,
// which cannot affect allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_stepped_period_allocates_exactly_zero() {
    const PERIODS: u64 = 24;
    let mut sim = mobiquery_repro::steady::warmed_sim(PERIODS, 4, 11);

    // Measure every remaining boundary except the last two: the final
    // boundary is resolve-only (a different shape from the steady state) and
    // stepping it leaves nothing to verify after.
    let mut measured = 0u64;
    while sim.next_boundary() + 2 <= sim.max_k() {
        let before = allocations();
        sim.step_period().expect("steady boundaries step cleanly");
        let delta = allocations() - before;
        measured += 1;
        assert_eq!(
            delta,
            0,
            "boundary {} allocated {delta} times in the warm steady state",
            sim.next_boundary() - 1
        );
    }
    assert!(
        measured >= 10,
        "too few boundaries measured ({measured}) for a meaningful steady-state claim"
    );

    // The run still finishes and resolves every period — the measured loop
    // was doing real protocol work, not an idle spin.
    sim.run_to_end().expect("tail boundaries step cleanly");
    let out = sim.finish();
    assert_eq!(out.users, 4);
    for log in &out.logs {
        assert_eq!(log.len() as u64, PERIODS);
    }
}
