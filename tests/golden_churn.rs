//! Golden-snapshot gate for the churn target: `repro --quick --scale 2000
//! --churn-rate 0.05 --format json churn` must keep producing byte-identical
//! output.
//!
//! This pins the whole churn stack — the seed-derived death/join schedule,
//! the slot-recycling node store, the priority election and the incremental
//! backbone repair — against a committed snapshot. Every trial internally
//! verifies each batch against a full re-election (2000 nodes is far below
//! the per-batch verification cap) and asserts the final backbone equals a
//! from-scratch election, so these bytes also certify that repair ≡
//! re-election held for the pinned schedule.
//!
//! To update the snapshot after a *deliberate* behaviour change:
//!
//! ```text
//! cargo run --release --bin repro -- --quick --scale 2000 \
//!     --churn-rate 0.05 --format json \
//!     --out tests/golden/churn_quick.json churn
//! ```

use std::process::Command;

const GOLDEN: &str = include_str!("golden/churn_quick.json");
const ARGS: [&str; 7] = [
    "--quick",
    "--scale",
    "2000",
    "--churn-rate",
    "0.05",
    "--format",
    "json",
];

#[test]
fn repro_quick_churn_json_matches_golden_snapshot() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(ARGS)
        .arg("churn")
        .output()
        .expect("repro binary runs");
    assert!(
        output.status.success(),
        "repro exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let got = String::from_utf8(output.stdout).expect("repro emits UTF-8 JSON");
    if got != GOLDEN {
        let line = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| got.lines().count().min(GOLDEN.lines().count()) + 1);
        panic!(
            "churn quick JSON diverged from tests/golden/churn_quick.json at line {line}.\n\
             The churn schedule and repaired backbone are pure functions of the seed; if \
             this change is deliberate, regenerate the snapshot (see this test's module \
             docs)."
        );
    }
}

#[test]
fn repro_quick_churn_is_jobs_invariant() {
    let run = |jobs: &str| {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(ARGS)
            .args(["--jobs", jobs, "churn"])
            .output()
            .expect("repro binary runs");
        assert!(output.status.success());
        output.stdout
    };
    assert_eq!(run("1"), run("3"), "--jobs must never change churn results");
}
