//! Smoke test: the unmodified paper-default scenario round-trips through the
//! full simulation for every prefetching scheme.
//!
//! This is deliberately the rawest possible use of the public API — exactly
//! what the README quickstart shows — so a regression in `Scenario`
//! validation, substrate assembly, or any scheme's event loop fails loudly
//! even if the tuned end-to-end assertions in `end_to_end.rs` are skipped.

use mobiquery_repro::geom::{Point, Rect};
use mobiquery_repro::mobiquery::config::{Scenario, Scheme};
use mobiquery_repro::mobiquery::sim::Simulation;
use mobiquery_repro::power::ccp::{elect_backbone, CcpConfig};
use mobiquery_repro::sim::SimRng;

#[test]
fn non_finite_durations_are_config_errors_not_panics() {
    for bad in [f64::NAN, f64::INFINITY] {
        let s = Scenario::paper_default().with_duration_secs(bad);
        assert!(
            Simulation::new(s).is_err(),
            "duration {bad} must be rejected by validation"
        );
    }
}

#[test]
fn backbone_membership_matches_pinned_snapshot() {
    // The CCP election is a pure function of (deployment, config, seed); the
    // coverage-raster rewrite (and any future election speedup) must keep it
    // byte-identical, so the exact membership for one fixed seed is pinned
    // here. If this fails, election behaviour changed — that is never a
    // legitimate side effect of performance work.
    let mut rng = SimRng::seed_from_u64(20250729);
    let positions: Vec<Point> = (0..60)
        .map(|_| Point::new(rng.gen_range_f64(0.0, 200.0), rng.gen_range_f64(0.0, 200.0)))
        .collect();
    let roles = elect_backbone(
        &positions,
        Rect::square(200.0),
        &CcpConfig::paper_default(),
        &mut SimRng::seed_from_u64(7),
    );
    let backbone: Vec<usize> = roles
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_backbone())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(backbone, [0, 10, 17, 22, 24, 25, 32, 46, 49, 50, 51, 59]);
}

#[test]
fn paper_default_round_trips_through_every_scheme() {
    for scheme in [Scheme::JustInTime, Scheme::Greedy, Scheme::None] {
        let scenario = Scenario::paper_default().with_scheme(scheme);
        let out = Simulation::new(scenario)
            .unwrap_or_else(|e| panic!("{scheme}: paper-default scenario must validate: {e}"))
            .run();
        assert!(
            !out.query_log.is_empty(),
            "{scheme}: a full paper-default run must score at least one query"
        );
        for record in out.query_log.records() {
            let fidelity = record.fidelity();
            assert!(
                (0.0..=1.0).contains(&fidelity),
                "{scheme}: fidelity {fidelity} out of range"
            );
        }
    }
}
