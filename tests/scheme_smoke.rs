//! Smoke test: the unmodified paper-default scenario round-trips through the
//! full simulation for every prefetching scheme.
//!
//! This is deliberately the rawest possible use of the public API — exactly
//! what the README quickstart shows — so a regression in `Scenario`
//! validation, substrate assembly, or any scheme's event loop fails loudly
//! even if the tuned end-to-end assertions in `end_to_end.rs` are skipped.

use mobiquery_repro::mobiquery::config::{Scenario, Scheme};
use mobiquery_repro::mobiquery::sim::Simulation;

#[test]
fn non_finite_durations_are_config_errors_not_panics() {
    for bad in [f64::NAN, f64::INFINITY] {
        let s = Scenario::paper_default().with_duration_secs(bad);
        assert!(
            Simulation::new(s).is_err(),
            "duration {bad} must be rejected by validation"
        );
    }
}

#[test]
fn paper_default_round_trips_through_every_scheme() {
    for scheme in [Scheme::JustInTime, Scheme::Greedy, Scheme::None] {
        let scenario = Scenario::paper_default().with_scheme(scheme);
        let out = Simulation::new(scenario)
            .unwrap_or_else(|e| panic!("{scheme}: paper-default scenario must validate: {e}"))
            .run();
        assert!(
            !out.query_log.is_empty(),
            "{scheme}: a full paper-default run must score at least one query"
        );
        for record in out.query_log.records() {
            let fidelity = record.fidelity();
            assert!(
                (0.0..=1.0).contains(&fidelity),
                "{scheme}: fidelity {fidelity} out of range"
            );
        }
    }
}
