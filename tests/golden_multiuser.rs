//! Golden-snapshot gate for the multi-user target: `repro --quick --format
//! json multiuser` must keep producing byte-identical output.
//!
//! This pins the whole multiplexing stack — fleet generation, staggered
//! lifetimes, the quantised pickup lattice, the shared tree cache and the
//! per-query scoring streams — against a committed snapshot, exactly as
//! `golden_fig4.rs` pins the single-user path. Every sweep trial internally
//! cross-checks the shared cache against the naive one-tree-per-user
//! reference, so these bytes also certify that equivalence held.
//!
//! To update the snapshot after a *deliberate* behaviour change:
//!
//! ```text
//! cargo run --release --bin repro -- --quick --format json \
//!     --out tests/golden/multiuser_quick.json multiuser
//! ```

use std::process::Command;

const GOLDEN: &str = include_str!("golden/multiuser_quick.json");

#[test]
fn repro_quick_multiuser_json_matches_golden_snapshot() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--format", "json", "multiuser"])
        .output()
        .expect("repro binary runs");
    assert!(
        output.status.success(),
        "repro exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let got = String::from_utf8(output.stdout).expect("repro emits UTF-8 JSON");
    if got != GOLDEN {
        let line = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| got.lines().count().min(GOLDEN.lines().count()) + 1);
        panic!(
            "multiuser quick JSON diverged from tests/golden/multiuser_quick.json at line \
             {line}.\nTree sharing must not change per-user results; if this change is \
             deliberate, regenerate the snapshot (see this test's module docs)."
        );
    }
}

#[test]
fn repro_quick_multiuser_is_jobs_invariant() {
    let run = |jobs: &str| {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["--quick", "--format", "json", "--jobs", jobs, "multiuser"])
            .output()
            .expect("repro binary runs");
        assert!(output.status.success());
        output.stdout
    };
    assert_eq!(run("1"), run("3"), "--jobs must never change results");
}
