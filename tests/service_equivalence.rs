//! Reference equivalence: the live service vs the batch engine.
//!
//! The service admits queries at runtime through the stepped engine; the
//! batch [`MultiSimulation`] runs a static [`QuerySet`] to completion. The
//! two must be the *same* computation: replaying the schedule a load run
//! realized as a static query set yields bit-identical per-user logs. This
//! is the contract that keeps every existing shared-vs-naive proof relevant
//! for the service path — and it pins the service's determinism (same seed,
//! same bytes) the CI smoke relies on.

use mobiquery_repro::mobiquery::config::{Scenario, Scheme};
use mobiquery_repro::mobiquery::sim::{MultiSimulation, TreeSharing};
use mobiquery_repro::service::load::{arrival_schedule, run_load};

fn scenario(seed: u64) -> Scenario {
    Scenario::paper_default()
        .with_node_count(90)
        .with_region_side(300.0)
        .with_scheme(Scheme::JustInTime)
        .with_seed(seed)
}

/// Replays a load run's realized schedule as a static `QuerySet` and
/// compares per-user logs byte for byte, for both sharing modes.
#[test]
fn load_schedule_replayed_as_static_query_set_is_log_identical() {
    for sharing in [TreeSharing::Shared, TreeSharing::Naive] {
        let qps = 2.0;
        let duration = 20u64;
        let outcome = run_load(scenario(42), qps, duration, sharing, 2, None).unwrap();
        assert!(outcome.report.submitted > 0, "load must admit queries");

        // The service overrode the scenario duration to the load horizon;
        // the replay must pin the same horizon.
        let period_s = scenario(42).query.period.as_secs_f64();
        let replay_scenario = scenario(42).with_duration_secs(duration as f64 * period_s);
        let replay =
            MultiSimulation::with_query_set(replay_scenario, outcome.query_set.clone(), sharing)
                .unwrap()
                .run();

        assert_eq!(
            outcome.output.logs, replay.logs,
            "{sharing:?}: live service logs != static replay logs"
        );
        assert_eq!(outcome.output, replay, "{sharing:?}: full outputs differ");
    }
}

/// The shared-vs-naive proof carries over to service runs: same logs, fewer
/// trees.
#[test]
fn service_load_shared_equals_naive_per_user() {
    let shared = run_load(scenario(7), 3.0, 16, TreeSharing::Shared, 1, None).unwrap();
    let naive = run_load(scenario(7), 3.0, 16, TreeSharing::Naive, 1, None).unwrap();
    assert_eq!(shared.output.logs, naive.output.logs);
    assert_eq!(
        shared.report.mean_success_ratio,
        naive.report.mean_success_ratio
    );
    assert_eq!(shared.report.latency_periods, naive.report.latency_periods);
    assert!(shared.report.trees_built <= naive.report.trees_built);
    assert_eq!(naive.report.trees_built, naive.report.installs);
}

/// The arrival schedule and the full report are stable for a fixed seed and
/// differ across seeds (the schedule really is seed-derived).
#[test]
fn load_is_seed_stable_and_seed_sensitive() {
    let period_s = scenario(0).query.period.as_secs_f64();
    assert_eq!(
        arrival_schedule(42, 4.0, 40, period_s),
        arrival_schedule(42, 4.0, 40, period_s)
    );
    assert_ne!(
        arrival_schedule(42, 4.0, 40, period_s),
        arrival_schedule(1, 4.0, 40, period_s)
    );

    let a = run_load(scenario(5), 2.0, 12, TreeSharing::Shared, 1, None).unwrap();
    let b = run_load(scenario(5), 2.0, 12, TreeSharing::Shared, 3, None).unwrap();
    assert_eq!(
        a.report.to_json().to_pretty_string(),
        b.report.to_json().to_pretty_string(),
        "same seed, same bytes"
    );
    let c = run_load(scenario(6), 2.0, 12, TreeSharing::Shared, 1, None).unwrap();
    assert_ne!(
        a.report, c.report,
        "different deployment seed, different run"
    );
}
