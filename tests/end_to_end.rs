//! End-to-end integration tests spanning the whole workspace: run the full
//! protocol simulation on moderately sized scenarios and assert the paper's
//! qualitative results.

use mobiquery_repro::mobility::ProfileSource;
use mobiquery_repro::mobiquery::analysis;
use mobiquery_repro::mobiquery::config::{Scenario, Scheme};
use mobiquery_repro::mobiquery::sim::Simulation;

/// A mid-sized scenario: large enough for the qualitative effects to show,
/// small enough to keep the test suite quick in debug builds.
fn scenario(scheme: Scheme, sleep_s: f64, seed: u64) -> Scenario {
    Scenario::paper_default()
        .with_node_count(120)
        .with_region_side(350.0)
        .with_duration_secs(120.0)
        .with_sleep_period_secs(sleep_s)
        .with_scheme(scheme)
        .with_seed(seed)
}

#[test]
fn every_scheme_scores_every_period() {
    for scheme in [Scheme::JustInTime, Scheme::Greedy, Scheme::None] {
        let out = Simulation::new(scenario(scheme, 9.0, 1)).unwrap().run();
        assert_eq!(out.query_log.len(), 60, "{scheme}: one record per period");
        for record in out.query_log.records() {
            let fidelity = record.fidelity();
            assert!((0.0..=1.0).contains(&fidelity));
        }
    }
}

#[test]
fn paper_ordering_jit_beats_greedy_beats_np() {
    // The headline comparison of Figure 4 at a long sleep period.
    let jit = Simulation::new(scenario(Scheme::JustInTime, 15.0, 3))
        .unwrap()
        .run();
    let gp = Simulation::new(scenario(Scheme::Greedy, 15.0, 3))
        .unwrap()
        .run();
    let np = Simulation::new(scenario(Scheme::None, 15.0, 3))
        .unwrap()
        .run();
    assert!(
        jit.mean_fidelity >= gp.mean_fidelity - 0.02,
        "JIT fidelity ({:.3}) should be at least greedy's ({:.3})",
        jit.mean_fidelity,
        gp.mean_fidelity
    );
    assert!(
        gp.mean_fidelity > np.mean_fidelity + 0.1,
        "greedy fidelity ({:.3}) should clearly beat NP ({:.3})",
        gp.mean_fidelity,
        np.mean_fidelity
    );
    assert!(jit.success_ratio > np.success_ratio + 0.3);
}

#[test]
fn prefetching_is_what_rescues_low_duty_cycles() {
    // NP degrades sharply as the sleep period grows; JIT barely moves.
    let jit_short = Simulation::new(scenario(Scheme::JustInTime, 3.0, 5))
        .unwrap()
        .run();
    let jit_long = Simulation::new(scenario(Scheme::JustInTime, 15.0, 5))
        .unwrap()
        .run();
    let np_short = Simulation::new(scenario(Scheme::None, 3.0, 5))
        .unwrap()
        .run();
    let np_long = Simulation::new(scenario(Scheme::None, 15.0, 5))
        .unwrap()
        .run();
    assert!(np_long.mean_fidelity < np_short.mean_fidelity - 0.1);
    assert!(jit_long.mean_fidelity > 0.9);
    assert!(jit_long.mean_fidelity - np_long.mean_fidelity > 0.4);
    assert!(jit_short.success_ratio > np_short.success_ratio);
}

#[test]
fn jit_storage_respects_equation_12_and_greedy_does_not() {
    let jit = Simulation::new(scenario(Scheme::JustInTime, 9.0, 7))
        .unwrap()
        .run();
    let gp = Simulation::new(scenario(Scheme::Greedy, 9.0, 7))
        .unwrap()
        .run();
    let params = scenario(Scheme::JustInTime, 9.0, 7).analysis_params();
    let bound = analysis::prefetch_length_jit(&params) as usize;
    assert!(
        jit.max_prefetch_length <= bound + 1,
        "JIT prefetch length {} must respect the Eq. 12 bound {}",
        jit.max_prefetch_length,
        bound
    );
    assert!(
        gp.max_prefetch_length > 3 * bound,
        "greedy prefetch length {} should far exceed the JIT bound {}",
        gp.max_prefetch_length,
        bound
    );
}

#[test]
fn greedy_prefetching_causes_more_channel_losses() {
    let jit = Simulation::new(scenario(Scheme::JustInTime, 15.0, 9))
        .unwrap()
        .run();
    let gp = Simulation::new(scenario(Scheme::Greedy, 15.0, 9))
        .unwrap()
        .run();
    assert!(
        gp.loss_rate() > jit.loss_rate(),
        "greedy loss rate ({:.3}) should exceed JIT's ({:.3})",
        gp.loss_rate(),
        jit.loss_rate()
    );
}

#[test]
fn warmup_after_late_profiles_matches_the_bound_direction() {
    // Later profiles (smaller Ta) -> lower success ratio, as in Figure 6.
    let mut last = f64::NEG_INFINITY;
    for advance in [-8.0, 0.0, 12.0] {
        let s = scenario(Scheme::JustInTime, 9.0, 11)
            .with_motion_change_interval(40.0)
            .with_planner_advance(advance);
        let out = Simulation::new(s).unwrap().run();
        assert!(
            out.success_ratio >= last - 0.05,
            "success ratio should not fall as Ta grows (Ta={advance}: {} < {})",
            out.success_ratio,
            last
        );
        last = out.success_ratio;
    }
}

#[test]
fn location_errors_cost_a_little_fidelity_but_not_much() {
    let exact = scenario(Scheme::JustInTime, 9.0, 13)
        .with_motion_change_interval(70.0)
        .with_predictor(8.0, 0.0);
    let noisy = scenario(Scheme::JustInTime, 9.0, 13)
        .with_motion_change_interval(70.0)
        .with_predictor(8.0, 10.0);
    let exact_out = Simulation::new(exact).unwrap().run();
    let noisy_out = Simulation::new(noisy).unwrap().run();
    assert!(noisy_out.mean_fidelity <= exact_out.mean_fidelity + 0.02);
    // Even with 10 m errors the service keeps working (Figure 7's message).
    assert!(noisy_out.mean_fidelity > 0.6);
}

#[test]
fn energy_overhead_of_the_query_service_is_small() {
    // Figure 8: MobiQuery adds well under 0.05 W per sleeping node, and power
    // falls as the sleep period grows.
    let short = Simulation::new(scenario(Scheme::JustInTime, 3.0, 15))
        .unwrap()
        .run();
    let long = Simulation::new(scenario(Scheme::JustInTime, 15.0, 15))
        .unwrap()
        .run();
    for out in [&short, &long] {
        assert!(out.query_power_overhead_w() < 0.05);
        assert!(out.mean_sleeping_power_w >= out.baseline_sleeping_power_w - 1e-9);
    }
    assert!(long.mean_sleeping_power_w < short.mean_sleeping_power_w);
}

#[test]
fn runs_are_reproducible_across_full_stack() {
    let a = Simulation::new(scenario(Scheme::Greedy, 9.0, 21))
        .unwrap()
        .run();
    let b = Simulation::new(scenario(Scheme::Greedy, 9.0, 21))
        .unwrap()
        .run();
    assert_eq!(a.query_log, b.query_log);
    assert_eq!(a.frames_sent, b.frames_sent);
    assert_eq!(a.trees_built, b.trees_built);
}

#[test]
fn oracle_planner_and_predictor_sources_all_work_end_to_end() {
    for source in [
        ProfileSource::Oracle,
        ProfileSource::Planner { advance_secs: 6.0 },
        ProfileSource::Predictor {
            sampling_period_secs: 8.0,
            gps: mobiquery_repro::mobility::GpsModel::standard(),
        },
    ] {
        let s = scenario(Scheme::JustInTime, 9.0, 23)
            .with_motion_change_interval(40.0)
            .with_profile_source(source);
        let out = Simulation::new(s).unwrap().run();
        assert!(out.trees_built > 0);
        assert!(
            out.mean_fidelity > 0.5,
            "source {source:?} fidelity too low"
        );
    }
}
