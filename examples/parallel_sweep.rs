//! Parallel sweep: build a custom `TrialPlan` and fan it out across every
//! core, exactly as the figure modules do internally.
//!
//! The sweep asks a deployment question the paper doesn't plot directly —
//! how does the success ratio change with the *density* of the deployment? —
//! and runs all (node count × replicate) trials through the work-stealing
//! pool. Per-trial seeds are derived from the plan coordinates, so rerunning
//! with any number of jobs prints identical numbers.
//!
//! ```text
//! cargo run --release --example parallel_sweep
//! ```

use mobiquery_repro::experiments::runner::TrialPlan;
use mobiquery_repro::experiments::ExperimentConfig;
use mobiquery_repro::metrics::Table;
use mobiquery_repro::sim::pool;

fn main() {
    let jobs = pool::available_jobs();
    let config = ExperimentConfig {
        runs: 2,
        ..ExperimentConfig::quick()
    }
    .with_jobs(jobs);

    let node_counts = [60, 90, 120];
    let mut plan = TrialPlan::new();
    for &nodes in &node_counts {
        plan.push_point(&config, config.base_scenario().with_node_count(nodes));
    }
    println!(
        "running {} trials ({} points x {} replicates) on {jobs} worker(s)...",
        plan.trial_count(),
        plan.point_count(),
        config.runs
    );

    let summaries = plan.run_summaries(config.jobs, |out| out.success_ratio);

    let mut table = Table::with_columns(
        "Success ratio vs deployment density (MQ-JIT, quick scenario)",
        &["nodes", "success ratio", "ci95"],
    );
    for (&nodes, summary) in node_counts.iter().zip(&summaries) {
        table.push_row(vec![
            nodes.to_string(),
            format!("{:.4}", summary.mean()),
            format!("{:.4}", summary.ci95()),
        ]);
    }
    println!("{table}");
}
