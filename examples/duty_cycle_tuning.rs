//! Duty-cycle tuning: how long can nodes sleep before the query service
//! degrades, and what does each choice cost in energy?
//!
//! This sweeps the sleep period for all three schemes and prints success
//! ratio and per-sleeping-node power side by side — the trade-off a deployer
//! of MobiQuery would actually tune (Figures 4 and 8 combined).
//!
//! ```text
//! cargo run --release --example duty_cycle_tuning
//! ```

use mobiquery_repro::metrics::Table;
use mobiquery_repro::mobiquery::config::{Scenario, Scheme};
use mobiquery_repro::mobiquery::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sleeps = [3.0, 6.0, 9.0, 15.0];
    let mut columns = vec!["scheme".to_string()];
    columns.extend(sleeps.iter().map(|s| format!("sleep={s}s")));
    let mut success = Table::new("Success ratio vs sleep period", columns.clone());
    let mut power = Table::new("Power per sleeping node (W) vs sleep period", columns);

    for scheme in [Scheme::JustInTime, Scheme::Greedy, Scheme::None] {
        let mut success_row = Vec::new();
        let mut power_row = Vec::new();
        for &sleep in &sleeps {
            let scenario = Scenario::paper_default()
                .with_node_count(120)
                .with_region_side(350.0)
                .with_duration_secs(150.0)
                .with_sleep_period_secs(sleep)
                .with_scheme(scheme)
                .with_seed(3);
            let out = Simulation::new(scenario)?.run();
            success_row.push(out.success_ratio);
            power_row.push(out.mean_sleeping_power_w);
        }
        success.push_labeled_row(scheme.label(), &success_row);
        power.push_labeled_row(scheme.label(), &power_row);
    }

    println!("{success}");
    println!("{power}");
    println!("Just-in-time prefetching keeps the service usable even at the lowest duty");
    println!("cycles, so the deployer can pick the sleep period purely on energy grounds.");
    Ok(())
}
