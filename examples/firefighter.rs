//! Firefighter scenario: the motivating application from the paper's
//! introduction. A firefighter walks through an instrumented area and asks
//! for a periodic update of the maximum temperature within his surroundings;
//! the example compares just-in-time prefetching against the No-Prefetching
//! baseline and shows why prefetching is what keeps the temperature map fresh
//! under a 0.7 % duty cycle.
//!
//! ```text
//! cargo run --release --example firefighter
//! ```

use mobiquery_repro::mobiquery::config::{Scenario, Scheme};
use mobiquery_repro::mobiquery::query::AggregateKind;
use mobiquery_repro::mobiquery::sim::Simulation;

fn scenario(scheme: Scheme) -> Scenario {
    let mut s = Scenario::paper_default()
        .with_node_count(150)
        .with_region_side(400.0)
        .with_duration_secs(200.0)
        // Firefighters walk; the paper's walking range is 3-5 m/s.
        .with_speed_range(3.0, 5.0)
        // A very low duty cycle: 100 ms awake every 15 s.
        .with_sleep_period_secs(15.0)
        .with_scheme(scheme)
        .with_seed(7);
    s.query.data_type = "temperature".to_string();
    s.query.aggregate = AggregateKind::Max;
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Firefighter: periodic max-temperature query around a moving user");
    println!("(150 nodes, 15 s sleep period, 2 s query period, 1 s freshness)\n");
    for scheme in [Scheme::JustInTime, Scheme::None] {
        let out = Simulation::new(scenario(scheme))?.run();
        println!("{}:", scheme.label());
        println!(
            "  success ratio (fidelity >= 95 %): {:.1} %",
            out.success_ratio * 100.0
        );
        println!(
            "  mean fidelity:                    {:.1} %",
            out.mean_fidelity * 100.0
        );
        println!(
            "  power per sleeping node:          {:.3} W (+{:.3} W over CCP)",
            out.mean_sleeping_power_w,
            out.query_power_overhead_w()
        );
        // How many of the firefighter's map updates would have been stale or
        // partial without prefetching?
        let unusable = out
            .query_log
            .records()
            .iter()
            .filter(|r| !r.succeeded(0.95))
            .count();
        println!(
            "  unusable temperature-map updates: {unusable} of {}\n",
            out.query_log.len()
        );
    }
    println!("Just-in-time prefetching keeps virtually every update complete; without");
    println!("prefetching most updates miss the sensors that were asleep when the query");
    println!("arrived, exactly the failure mode the paper's introduction describes.");
    Ok(())
}
