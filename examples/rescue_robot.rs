//! Search-and-rescue robot scenario: the paper's second motivating
//! application. A robot plans its own motion, so exact motion profiles are
//! available *before* it moves (positive advance time); this example sweeps
//! the advance time to show how early plans eliminate the warm-up interval
//! (Section 5.3 / Figure 6) and compares against a robot whose plans arrive
//! late.
//!
//! ```text
//! cargo run --release --example rescue_robot
//! ```

use mobiquery_repro::mobiquery::analysis;
use mobiquery_repro::mobiquery::config::{Scenario, Scheme};
use mobiquery_repro::mobiquery::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Search-and-rescue robot: motion-planner profiles with varying advance time");
    println!("(robot replans every 70 s; sleep period 9 s)\n");
    println!(
        "{:>12}  {:>13}  {:>22}",
        "Ta (s)", "success ratio", "Eq.16 warm-up bound (s)"
    );

    for advance in [-8.0, -3.0, 0.0, 6.0, 12.0] {
        let scenario = Scenario::paper_default()
            .with_node_count(150)
            .with_region_side(400.0)
            .with_duration_secs(210.0)
            .with_sleep_period_secs(9.0)
            .with_speed_range(3.0, 5.0)
            .with_motion_change_interval(70.0)
            .with_planner_advance(advance)
            .with_scheme(Scheme::JustInTime)
            .with_seed(11);
        let bound = analysis::warmup_interval_approx_s(&scenario.analysis_params(), advance);
        let out = Simulation::new(scenario)?.run();
        println!(
            "{advance:>12}  {:>12.1} %  {bound:>22.1}",
            out.success_ratio * 100.0
        );
    }

    println!("\nThe earlier the planner publishes its path (larger Ta), the shorter the");
    println!("warm-up after each replanning and the higher the fraction of usable query");
    println!("results — the robot can trust its surrounding terrain/survivor map again");
    println!("within a bounded, predictable time after every turn.");
    Ok(())
}
