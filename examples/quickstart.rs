//! Quickstart: run one MobiQuery simulation with the paper's default
//! settings (scaled down so this example finishes in a second or two) and
//! print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mobiquery_repro::mobiquery::config::{Scenario, Scheme};
use mobiquery_repro::mobiquery::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The evaluation scenario of Section 6.1, shrunk to 100 nodes / 120 s so
    // the quickstart runs quickly. Drop the `with_*` calls for the full
    // paper-scale run (200 nodes, 450 m field, 400 s).
    let scenario = Scenario::paper_default()
        .with_node_count(100)
        .with_region_side(350.0)
        .with_duration_secs(120.0)
        .with_sleep_period_secs(9.0)
        .with_scheme(Scheme::JustInTime)
        .with_seed(2026);

    let output = Simulation::new(scenario)?.run();

    println!("MobiQuery quickstart (just-in-time prefetching)");
    println!("  queries issued:          {}", output.query_log.len());
    println!(
        "  success ratio:           {:.1} %",
        output.success_ratio * 100.0
    );
    println!(
        "  mean data fidelity:      {:.1} %",
        output.mean_fidelity * 100.0
    );
    println!(
        "  backbone nodes (CCP):    {}/{}",
        output.backbone_count, output.node_count
    );
    println!("  trees built:             {}", output.trees_built);
    println!("  max trees ahead of user: {}", output.max_prefetch_length);
    println!(
        "  power per sleeping node: {:.3} W (CCP alone: {:.3} W)",
        output.mean_sleeping_power_w, output.baseline_sleeping_power_w
    );
    println!(
        "  channel loss rate:       {:.1} %",
        output.loss_rate() * 100.0
    );
    Ok(())
}
