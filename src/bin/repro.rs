//! `repro` — regenerate the MobiQuery paper's figures and analytical tables.
//!
//! ```text
//! repro [options] <fig4|fig5|fig6|fig7|fig8|analysis|all>
//! ```
//!
//! Full mode uses the paper's settings (200 nodes, 450 m field, 400–500 s
//! runs); `--quick` runs a scaled-down variant that preserves the qualitative
//! comparisons and finishes in seconds. Trials fan out across worker threads
//! (`--jobs`); per-trial seeds are derived from the plan coordinates, so the
//! output is byte-identical whatever the job count — CI diffs `--jobs 1`
//! against `--jobs 4` to enforce exactly that.

// The bench document's `steady_allocs_per_period` needs a counting global
// allocator, and `GlobalAlloc` is an unsafe trait; this binary is its own
// crate root, so the allow is scoped to exactly this file.
#![allow(unsafe_code)]

use mobiquery::config::Scheme;
use mobiquery::sim::{FaultConfig, TreeSharing};
use mobiquery_experiments::runner::trial_seed;
use mobiquery_experiments::{
    analysis_tables, churn, eventq, fig4, fig5, fig6, fig7, fig8, multiuser, resilience, scale,
    ExperimentConfig,
};
use mobiquery_service::load::run_load;
use mobiquery_service::serve::run_serve;
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wsn_metrics::JsonValue;
use wsn_sim::pool;

const USAGE: &str = "usage: repro [options] <fig4|fig5|fig6|fig7|fig8|analysis|multiuser|all>
       repro [options] --churn-rate R churn
       repro [options] --fault-loss R [--fault-burst L] resilience
       repro serve --periods N [service options]
       repro load --qps Q --duration N [service options]

Regenerates the MobiQuery paper's evaluation figures as tables/series, runs
the node-churn sweep (`churn`), the fault-injection resilience sweep
(`resilience`), or the long-lived query service (`serve`/`load`, see
`repro serve --help`).

Options:
  --quick            use the scaled-down scenario (fast, same qualitative shape)
  --runs N           topologies averaged per data point (default 3 full / 1 quick)
  --jobs N           worker threads for the trial fan-out (default: all cores);
                     results are byte-identical for every N
  --users N          largest fleet of the multiuser sweep (default 8 quick /
                     64 full); the sweep ladders up to N in powers of two, the
                     bench multiuser ladder is capped at N, and every trial
                     cross-checks shared flood trees against the naive
                     one-tree-per-user reference
  --churn-rate R     fraction of alive nodes killed (and replaced by joins) at
                     every period boundary, 0 < R < 1; required by the `churn`
                     target. Every trial repairs the backbone incrementally
                     and asserts the result is identical to a full priority
                     re-election; deployments up to 200000 nodes additionally
                     cross-check every single batch
  --fault-loss R     stationary per-node link-loss probability, 0 <= R < 1;
                     required by the `resilience` target, which sweeps the
                     ladder R/4, R/2, R with protocol recovery on and off on
                     identical seeded fault schedules
  --fault-burst L    mean bad-state dwell of the Gilbert-Elliott loss chain,
                     in query periods (L >= 1, default 4)
  --format FMT       output format: text (default) or json
  --out PATH         write the output to PATH instead of stdout
  --bench PATH       time every requested target serial (--jobs 1) vs parallel,
                     verify both give identical results, and write the timings
                     as JSON to PATH (the BENCH_repro.json trajectory format);
                     not combinable with --out/--format
  --scale N1,N2,...  with --bench: also sweep deployment sizes (e.g.
                     1000,2000,5000,10000,20000 at constant density), timing a
                     full run of both schemes plus an indexed-vs-linear
                     nearest-backbone micro-comparison per size, recorded in
                     the bench document's \"scale\" section; the largest size
                     also hosts the shared-vs-naive multi-user tree sweep in
                     the \"multiuser\" section and the incremental-repair
                     \"churn\" section. With the `churn` target: the deployment
                     sizes to churn (default 20000, quick 5000). With the
                     `resilience` target: the deployment sizes to fault
                     (default 10000, quick 2000)
  -h, --help         print this help and exit";

const SERVICE_USAGE: &str = "usage: repro serve --periods N [service options]
       repro load --qps Q --duration N [service options]

Runs the long-lived query service on one deployment.

`serve` submits a single resident query and streams its per-period results;
`load` drives the service with a deterministic open-loop arrival schedule
(exponential inter-arrivals, seed-derived) and reports per-query success and
p50/p99 first-result latency in periods. Both emit deterministic JSON: bytes
are identical for every `--jobs N` and stable for a fixed seed.

Service options:
  --periods N        (serve) periods to serve, at the scenario's query period
  --qps Q            (load) offered load, queries per second (> 0)
  --duration N       (load) service horizon in periods
  --nodes N          deployment size, scaled at constant density (default:
                     the quick/full base scenario, e.g. --nodes 1000)
  --naive            one tree per query instead of shared flood trees
  --quick            use the quick base scenario and seed
  --fault-loss R     serve/load under a seeded fault schedule with stationary
                     per-node link loss R, 0 <= R < 1 (0 = no faults); the
                     report gains nonzero retry/deadline-miss/degraded counts
  --fault-burst L    mean bad-state dwell of the loss chain in periods
                     (L >= 1, default 4); needs --fault-loss
  --no-recovery      disarm install retries and tree repair under faults
                     (the degradation baseline); needs --fault-loss
  --jobs N           shard each boundary's query resolution across N pool
                     workers inside the engine; output is byte-identical for
                     every N (CI diffs --jobs 1 against --jobs 4)
  --out PATH         write the JSON to PATH instead of stdout
  -h, --help         print this help and exit";

const ALL_TARGETS: [&str; 7] = [
    "analysis",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "multiuser",
];

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

/// Parameters of the `churn` target: the deployment sizes to churn and the
/// per-boundary death/join rate.
struct ChurnSpec {
    scales: Vec<usize>,
    rate: f64,
}

/// Parameters of the `resilience` target: the deployment sizes to fault and
/// the fault profile whose loss tops the swept ladder.
struct FaultSpec {
    scales: Vec<usize>,
    config: FaultConfig,
}

/// Churn rates of the `--bench` churn section: low enough that incremental
/// repair must beat full re-election, plus heavier rates that trace where
/// the advantage erodes. Fixed so the committed trajectory stays comparable
/// across bench invocations.
const BENCH_CHURN_RATES: [f64; 3] = [0.001, 0.01, 0.05];

/// Fleet size of the bench churn section (small and fixed: the section
/// measures repair, not the multi-user economics the multiuser section owns).
const BENCH_CHURN_USERS: usize = 4;

/// Loss ladder of the `--bench` resilience section. Fixed so the committed
/// trajectory stays comparable across bench invocations; `check_bench.py`
/// requires recovery-on to beat recovery-off at every one of these rates.
const BENCH_FAULT_LOSSES: [f64; 4] = [0.05, 0.1, 0.2, 0.4];

/// Deployment size of the bench resilience section — fixed and independent
/// of `--scale`, like the reference service load, so the committed
/// degradation curve stays comparable across bench invocations.
const BENCH_FAULT_NODES: usize = 1000;

/// Fleet size of the bench resilience section.
const BENCH_FAULT_USERS: usize = 4;

/// Counts heap allocations so the bench document can prove the stepped
/// engine's warm loop is allocation-free (the `steady_allocs_per_period`
/// field, asserted `== 0` by `scripts/check_bench.py`). Counting is a single
/// relaxed atomic increment over the system allocator — noise-level overhead
/// for every other mode of the binary.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the only addition is a relaxed counter increment,
// which cannot affect allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations per warm period boundary of the steady-state probe
/// ([`mobiquery_repro::steady`]): steps every measurable warm boundary and
/// returns the *maximum* per-boundary allocation count — the number the
/// committed trajectory pins at exactly zero.
fn steady_allocs_per_period() -> u64 {
    let mut sim = mobiquery_repro::steady::warmed_sim(24, 4, 11);
    let mut worst = 0u64;
    while sim.next_boundary() + 2 <= sim.max_k() {
        let before = ALLOCS.load(Ordering::Relaxed);
        sim.step_period()
            .expect("the steady probe steps cleanly by construction");
        worst = worst.max(ALLOCS.load(Ordering::Relaxed) - before);
    }
    sim.run_to_end()
        .expect("the steady probe steps cleanly by construction");
    let out = sim.finish();
    assert!(
        out.logs.iter().all(|log| log.len() == 24),
        "the steady probe must resolve every period"
    );
    worst
}

fn bad_usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn bad_service_usage() -> ExitCode {
    eprintln!("{SERVICE_USAGE}");
    ExitCode::FAILURE
}

/// The `repro serve` / `repro load` subcommands.
fn service_main(kind: &str, mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut periods: Option<u64> = None;
    let mut qps: Option<f64> = None;
    let mut duration: Option<u64> = None;
    let mut nodes: Option<usize> = None;
    let mut sharing = TreeSharing::Shared;
    let mut quick = false;
    let mut jobs: usize = 1;
    let mut out_path: Option<String> = None;
    let mut fault_loss: Option<f64> = None;
    let mut fault_burst: Option<f64> = None;
    let mut no_recovery = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--periods" if kind == "serve" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => periods = Some(n),
                _ => return bad_service_usage(),
            },
            "--qps" if kind == "load" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(q) if q.is_finite() && q > 0.0 => qps = Some(q),
                _ => return bad_service_usage(),
            },
            "--duration" if kind == "load" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => duration = Some(n),
                _ => return bad_service_usage(),
            },
            "--nodes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => nodes = Some(n),
                _ => return bad_service_usage(),
            },
            "--naive" => sharing = TreeSharing::Naive,
            "--quick" => quick = true,
            "--fault-loss" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r.is_finite() && (0.0..1.0).contains(&r) => fault_loss = Some(r),
                _ => return bad_service_usage(),
            },
            "--fault-burst" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(l) if l.is_finite() && l >= 1.0 => fault_burst = Some(l),
                _ => return bad_service_usage(),
            },
            "--no-recovery" => no_recovery = true,
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return bad_service_usage(),
            },
            "--out" => match args.next() {
                Some(path) => out_path = Some(path),
                None => return bad_service_usage(),
            },
            "--help" | "-h" => {
                println!("{SERVICE_USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("repro {kind}: unexpected argument {other}\n");
                return bad_service_usage();
            }
        }
    }

    if (fault_burst.is_some() || no_recovery) && fault_loss.is_none() {
        eprintln!("repro {kind}: --fault-burst/--no-recovery need --fault-loss\n");
        return bad_service_usage();
    }
    let fault = fault_loss.map(|loss| {
        let mut config = FaultConfig::new(loss).with_recovery(!no_recovery);
        if let Some(burst) = fault_burst {
            config = config.with_burst(burst);
        }
        config
    });

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    };
    let scenario = match nodes {
        Some(n) => scale::scale_scenario(n, Scheme::JustInTime, config.base_seed),
        None => config.base_scenario(),
    };
    let body = match kind {
        "serve" => {
            let Some(periods) = periods else {
                eprintln!("repro serve: --periods is required\n");
                return bad_service_usage();
            };
            match run_serve(scenario, periods, sharing, jobs, fault) {
                Ok(report) => report.to_json(),
                Err(e) => {
                    eprintln!("repro serve: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            let (Some(qps), Some(duration)) = (qps, duration) else {
                eprintln!("repro load: --qps and --duration are required\n");
                return bad_service_usage();
            };
            match run_load(scenario, qps, duration, sharing, jobs, fault) {
                Ok(outcome) => outcome.report.to_json(),
                Err(e) => {
                    eprintln!("repro load: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let doc = JsonValue::object()
        .with("schema", "mobiquery-repro/service/v1")
        .with("mode", if quick { "quick" } else { "full" })
        .with("base_seed", config.base_seed)
        .with(kind, body);
    emit(&doc.to_pretty_string(), out_path.as_deref())
}

/// Renders one target as display text.
fn target_text(
    name: &str,
    config: &ExperimentConfig,
    churn_spec: Option<&ChurnSpec>,
    fault_spec: Option<&FaultSpec>,
) -> Option<String> {
    let out = match name {
        "churn" => {
            let spec = churn_spec?;
            format!("{}\n", churn::run(config, &spec.scales, spec.rate))
        }
        "resilience" => {
            let spec = fault_spec?;
            format!("{}\n", resilience::run(config, &spec.scales, spec.config))
        }
        "fig4" => format!("{}\n", fig4::run(config)),
        "fig5" => {
            let out = fig5::run(config);
            format!(
                "{}\n{}\nsteady-state mean fidelity: MQ-JIT {:.3}, MQ-GP {:.3}\n",
                out.jit,
                out.greedy,
                out.jit_steady_state_mean(10),
                out.greedy_steady_state_mean(10)
            )
        }
        "fig6" => format!("{}\n", fig6::run(config)),
        "fig7" => format!("{}\n", fig7::run(config)),
        "fig8" => format!("{}\n", fig8::run(config)),
        "multiuser" => format!("{}\n", multiuser::run(config)),
        "analysis" => {
            let mut s = String::new();
            for table in analysis_tables::run_parallel(config.jobs) {
                s.push_str(&format!("{table}\n"));
            }
            s
        }
        _ => return None,
    };
    Some(out)
}

/// Renders one target as a JSON value.
fn target_json(
    name: &str,
    config: &ExperimentConfig,
    churn_spec: Option<&ChurnSpec>,
    fault_spec: Option<&FaultSpec>,
) -> Option<JsonValue> {
    let out = match name {
        "churn" => {
            let spec = churn_spec?;
            churn::run_json(config, &spec.scales, spec.rate)
        }
        "resilience" => {
            let spec = fault_spec?;
            resilience::run_json(config, &spec.scales, spec.config)
        }
        "fig4" => fig4::run_json(config),
        "fig5" => fig5::run_json(config),
        "fig6" => fig6::run_json(config),
        "fig7" => fig7::run_json(config),
        "fig8" => fig8::run_json(config),
        "multiuser" => multiuser::run_json(config),
        "analysis" => analysis_tables::run_json(config.jobs),
        _ => return None,
    };
    Some(out)
}

/// The `--format json` document for a list of targets. Deliberately excludes
/// the job count and any timing: the bytes must be identical for every
/// `--jobs N`.
fn results_json(
    targets: &[String],
    config: &ExperimentConfig,
    churn_spec: Option<&ChurnSpec>,
    fault_spec: Option<&FaultSpec>,
) -> Option<JsonValue> {
    let mut results = JsonValue::object();
    for target in targets {
        results = results.with(
            target.as_str(),
            target_json(target, config, churn_spec, fault_spec)?,
        );
    }
    Some(
        JsonValue::object()
            .with("schema", "mobiquery-repro/results/v1")
            .with("mode", if config.quick { "quick" } else { "full" })
            .with("runs", config.runs)
            .with("base_seed", config.base_seed)
            .with("results", results),
    )
}

/// The `--bench` document: per-target wall-clock, serial vs parallel, plus a
/// determinism cross-check that both job counts produced identical results,
/// and (when `--scale` is given) the deployment-size sweep.
fn bench_json(
    targets: &[String],
    config: &ExperimentConfig,
    scales: &[usize],
    churn_spec: Option<&ChurnSpec>,
    fault_spec: Option<&FaultSpec>,
) -> Option<JsonValue> {
    let mut figures = Vec::new();
    for target in targets {
        let serial_config = config.with_jobs(1);
        let start = Instant::now();
        let serial = target_json(target, &serial_config, churn_spec, fault_spec)?;
        let serial_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let parallel = target_json(target, config, churn_spec, fault_spec)?;
        let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            serial, parallel,
            "{target}: --jobs 1 and --jobs {} disagree",
            config.jobs
        );
        eprintln!(
            "bench {target}: serial {serial_ms:.0} ms, parallel {parallel_ms:.0} ms \
             ({:.2}x, {} jobs)",
            serial_ms / parallel_ms.max(1e-9),
            config.jobs
        );
        figures.push(
            JsonValue::object()
                .with("name", target.as_str())
                .with("serial_ms", round_ms(serial_ms))
                .with("parallel_ms", round_ms(parallel_ms))
                .with("speedup", round_ms(serial_ms / parallel_ms.max(1e-9))),
        );
    }
    let scale = if scales.is_empty() {
        JsonValue::Array(Vec::new())
    } else {
        scale::run(scales, config.base_seed)
    };
    // The shared-vs-naive tree sweep rides on the largest requested scale:
    // that is where the one-tree-per-user baseline hurts most and where the
    // committed trajectory must show trees_built(shared) < trees_built(naive).
    let multiuser = match scales.iter().max() {
        None => JsonValue::Array(Vec::new()),
        Some(&nodes) => {
            // `--users` is the documented fleet ceiling: drop the ladder's
            // fixed rungs above it instead of silently simulating a fleet
            // the user asked not to pay for.
            let mut ladder: Vec<usize> = [1, 10, 100, config.users]
                .into_iter()
                .filter(|&u| u >= 1 && u <= config.users)
                .collect();
            ladder.sort_unstable();
            ladder.dedup();
            let base_seed = config.base_seed;
            multiuser::bench_sweep(
                |point| {
                    scale::scale_scenario(
                        nodes,
                        mobiquery::config::Scheme::JustInTime,
                        trial_seed(base_seed, point as usize, 0),
                    )
                },
                &ladder,
            )
        }
    };
    // The incremental-repair section rides on the largest requested scale
    // too: that is where full re-election hurts most and where the committed
    // trajectory must show mean_repair_ms ≪ full_ccp_ms at low rates.
    let churn_section = match scales.iter().max() {
        None => JsonValue::Array(Vec::new()),
        Some(&nodes) => churn::bench_sweep(
            nodes,
            &BENCH_CHURN_RATES,
            BENCH_CHURN_USERS,
            config.base_seed,
        ),
    };
    // The scheduler micro-comparison and the zero-alloc proof are
    // scale-independent fixtures, sized down in quick mode only to keep the
    // smoke fast; the committed (full) trajectory uses the fixed sizes.
    let event_queue = eventq::bench_compare(
        if config.quick { 20_000 } else { 200_000 },
        config.base_seed,
    );
    let steady_allocs = steady_allocs_per_period();
    eprintln!("steady state: {steady_allocs} allocations per warm period");
    // The fixed reference load of the bench trajectory: 4 queries/s for 40
    // periods against a 1000-node deployment, through the stepped service
    // engine. Scale-independent of --scale so the committed numbers stay
    // comparable across bench invocations.
    let service = {
        let scenario = scale::scale_scenario(1000, Scheme::JustInTime, config.base_seed);
        run_load(scenario, 4.0, 40, TreeSharing::Shared, 1, None)
            .expect("the reference service load must run")
            .report
            .to_json()
    };
    // The resilience degradation curve: a fixed 1000-node deployment under
    // the fixed loss ladder, recovery on vs off on identical schedules.
    // `check_bench.py` holds recovery-on to strictly higher mean delivery at
    // every nonzero loss — the whole point of the retry/repair machinery.
    let resilience_section = resilience::bench_sweep(
        BENCH_FAULT_NODES,
        &BENCH_FAULT_LOSSES,
        BENCH_FAULT_USERS,
        config.base_seed,
    );
    Some(
        JsonValue::object()
            .with("schema", "mobiquery-repro/bench/v8")
            .with("mode", if config.quick { "quick" } else { "full" })
            .with("runs", config.runs)
            .with("users", config.users)
            // Per-figure speedup numbers are only interpretable relative to
            // the host: on a 1-core container the parallel path is pure
            // overhead and speedup < 1 is expected.
            .with("host_cores", pool::available_jobs())
            .with("parallel_jobs", config.jobs)
            .with("figures", figures)
            .with("event_queue", event_queue)
            .with("steady_allocs_per_period", steady_allocs)
            .with("scale", scale)
            .with("multiuser", multiuser)
            .with("churn", churn_section)
            .with("service", service)
            .with("resilience", resilience_section),
    )
}

fn round_ms(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn emit(content: &str, out_path: Option<&str>) -> ExitCode {
    match out_path {
        None => {
            print!("{content}");
            ExitCode::SUCCESS
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("repro: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut runs: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut users: Option<usize> = None;
    let mut format: Option<Format> = None;
    let mut out_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut scales: Vec<usize> = Vec::new();
    let mut churn_rate: Option<f64> = None;
    let mut fault_loss: Option<f64> = None;
    let mut fault_burst: Option<f64> = None;
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    // `serve` / `load` are subcommands with their own option set.
    if let Some(kind) = args.peek().filter(|a| a == &"serve" || a == &"load") {
        let kind = kind.clone();
        args.next();
        return service_main(&kind, args);
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--runs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => runs = Some(n),
                None => return bad_usage(),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => return bad_usage(),
            },
            "--users" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => users = Some(n),
                _ => return bad_usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Some(Format::Text),
                Some("json") => format = Some(Format::Json),
                _ => return bad_usage(),
            },
            "--out" => match args.next() {
                Some(path) => out_path = Some(path),
                None => return bad_usage(),
            },
            "--bench" => match args.next() {
                Some(path) => bench_path = Some(path),
                None => return bad_usage(),
            },
            "--churn-rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r.is_finite() && r > 0.0 && r < 1.0 => churn_rate = Some(r),
                _ => return bad_usage(),
            },
            "--fault-loss" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r.is_finite() && (0.0..1.0).contains(&r) => fault_loss = Some(r),
                _ => return bad_usage(),
            },
            "--fault-burst" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(l) if l.is_finite() && l >= 1.0 => fault_burst = Some(l),
                _ => return bad_usage(),
            },
            "--scale" => {
                let parsed: Option<Vec<usize>> = args
                    .next()
                    .map(|list| {
                        list.split(',')
                            .map(|n| n.trim().parse::<usize>().ok().filter(|&n| n > 0))
                            .collect()
                    })
                    .unwrap_or(None);
                match parsed {
                    Some(list) if !list.is_empty() => scales = list,
                    _ => return bad_usage(),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("repro: unknown option {other}\n");
                return bad_usage();
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        return bad_usage();
    }

    let mut config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    };
    if let Some(n) = runs {
        config.runs = n.max(1);
    }
    config = config.with_jobs(jobs.unwrap_or_else(pool::available_jobs));
    if let Some(n) = users {
        config = config.with_users(n);
    }

    // `all` deliberately excludes `churn` and `resilience`: the figures
    // reproduce the paper's static evaluation; churn and fault injection are
    // explicit opt-ins with their own required rate parameters.
    let expanded: Vec<String> = if targets.iter().any(|t| t == "all") {
        ALL_TARGETS.iter().map(|s| s.to_string()).collect()
    } else {
        targets
    };
    if let Some(bad) = expanded.iter().find(|t| {
        !ALL_TARGETS.contains(&t.as_str()) && t.as_str() != "churn" && t.as_str() != "resilience"
    }) {
        eprintln!("repro: unknown target {bad}\n");
        return bad_usage();
    }
    let churn_requested = expanded.iter().any(|t| t == "churn");
    if churn_requested && churn_rate.is_none() {
        eprintln!("repro: the churn target requires --churn-rate\n");
        return bad_usage();
    }
    let resilience_requested = expanded.iter().any(|t| t == "resilience");
    if resilience_requested && fault_loss.is_none() {
        eprintln!("repro: the resilience target requires --fault-loss\n");
        return bad_usage();
    }
    if fault_burst.is_some() && fault_loss.is_none() {
        eprintln!("repro: --fault-burst needs --fault-loss\n");
        return bad_usage();
    }
    let churn_spec = churn_rate.map(|rate| ChurnSpec {
        scales: if scales.is_empty() {
            vec![if quick { 5_000 } else { 20_000 }]
        } else {
            scales.clone()
        },
        rate,
    });
    let fault_spec = fault_loss.map(|loss| {
        let mut config = FaultConfig::new(loss);
        if let Some(burst) = fault_burst {
            config = config.with_burst(burst);
        }
        FaultSpec {
            scales: if scales.is_empty() {
                vec![if quick { 2_000 } else { 10_000 }]
            } else {
                scales.clone()
            },
            config,
        }
    });

    if let Some(path) = bench_path {
        // --bench is its own output mode: it writes the timing document to
        // its PATH and nothing else, so combining it with --out/--format
        // would silently drop those — reject instead.
        if out_path.is_some() || format.is_some() {
            eprintln!("repro: --bench cannot be combined with --out or --format\n");
            return bad_usage();
        }
        let Some(doc) = bench_json(
            &expanded,
            &config,
            &scales,
            churn_spec.as_ref(),
            fault_spec.as_ref(),
        ) else {
            return bad_usage();
        };
        return emit(&doc.to_pretty_string(), Some(&path));
    }
    if !scales.is_empty() && !churn_requested && !resilience_requested {
        eprintln!(
            "repro: --scale requires --bench, the churn target or the resilience target \
             (the sweep lands in the bench document)\n"
        );
        return bad_usage();
    }

    let content = match format.unwrap_or(Format::Text) {
        Format::Json => {
            match results_json(&expanded, &config, churn_spec.as_ref(), fault_spec.as_ref()) {
                Some(doc) => doc.to_pretty_string(),
                None => return bad_usage(),
            }
        }
        Format::Text => {
            let mut s = String::new();
            for target in &expanded {
                match target_text(target, &config, churn_spec.as_ref(), fault_spec.as_ref()) {
                    Some(text) => s.push_str(&text),
                    None => return bad_usage(),
                }
            }
            s
        }
    };
    emit(&content, out_path.as_deref())
}
