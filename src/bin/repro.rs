//! `repro` — regenerate the MobiQuery paper's figures and analytical tables.
//!
//! ```text
//! repro [--quick] [--runs N] <fig4|fig5|fig6|fig7|fig8|analysis|all>
//! ```
//!
//! Full mode uses the paper's settings (200 nodes, 450 m field, 400–500 s
//! runs) and takes minutes per figure; `--quick` runs a scaled-down variant
//! that preserves the qualitative comparisons and finishes in seconds.

use mobiquery_experiments::{analysis_tables, fig4, fig5, fig6, fig7, fig8, ExperimentConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--quick] [--runs N] <fig4|fig5|fig6|fig7|fig8|analysis|all>\n\
         \n\
         Regenerates the MobiQuery paper's evaluation figures as text tables/series.\n\
         --quick   use the scaled-down scenario (fast, same qualitative shape)\n\
         --runs N  number of topologies averaged per data point (default 3 full / 1 quick)"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut runs: Option<u64> = None;
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--runs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => runs = Some(n),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => return usage(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        return usage();
    }

    let mut config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    };
    if let Some(n) = runs {
        config.runs = n.max(1);
    }

    let run_target = |name: &str| -> bool {
        match name {
            "fig4" => println!("{}", fig4::run(&config)),
            "fig5" => {
                let out = fig5::run(&config);
                println!("{}", out.jit);
                println!("{}", out.greedy);
                println!(
                    "steady-state mean fidelity: MQ-JIT {:.3}, MQ-GP {:.3}",
                    out.jit_steady_state_mean(10),
                    out.greedy_steady_state_mean(10)
                );
            }
            "fig6" => println!("{}", fig6::run(&config)),
            "fig7" => println!("{}", fig7::run(&config)),
            "fig8" => println!("{}", fig8::run(&config)),
            "analysis" => {
                for table in analysis_tables::run() {
                    println!("{table}");
                }
            }
            _ => return false,
        }
        true
    };

    let expanded: Vec<String> = if targets.iter().any(|t| t == "all") {
        ["analysis", "fig4", "fig5", "fig6", "fig7", "fig8"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        targets
    };

    for target in &expanded {
        if !run_target(target) {
            eprintln!("unknown target: {target}");
            return usage();
        }
    }
    ExitCode::SUCCESS
}
