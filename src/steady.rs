//! Steady-state fixture for the zero-allocation proof.
//!
//! The stepped engine's warm loop is designed to allocate nothing: hop-path
//! and scratch vectors are pooled, tree buffers are recycled through the
//! cache, logs are pre-reserved at admission, and the calendar queue never
//! shrinks its wheel. Proving that needs a run whose *workload* is also
//! steady: this module builds one — full-window users on a deployment whose
//! query radius equals the region side, so every install snaps to the single
//! quantized-lattice cell and no new `TreeKey` (hence no fresh flood tree or
//! cost memo entry) can appear after the first boundary.
//!
//! Two call sites drive it with a counting `#[global_allocator]` of their
//! own (global allocators are per-binary): the `zero_alloc` integration test,
//! which asserts the warm per-boundary delta is exactly zero, and the `repro`
//! binary, which records the same number as `steady_allocs_per_period` in
//! the bench document.

use mobiquery::config::{Scenario, Scheme};
use mobiquery::sim::{QuerySet, SteppedSim, TreeSharing, UserQuery};
use wsn_mobility::fleet_member;

/// Boundaries stepped before measuring. The first boundary builds the one
/// shared tree and every pool; a few more let hash maps and the calendar
/// wheel reach their high-water marks.
pub const WARM_BOUNDARIES: u64 = 8;

/// The probe scenario: small deployment, query radius = region side.
pub fn scenario(periods: u64, seed: u64) -> Scenario {
    let side = 300.0;
    let mut scenario = Scenario::paper_default()
        .with_node_count(80)
        .with_region_side(side)
        .with_scheme(Scheme::JustInTime)
        .with_seed(seed);
    // One lattice cell for the whole region: installs can never discover a
    // new tree key mid-run, which is what pins the steady state.
    scenario.query.radius_m = side;
    let period_s = scenario.query.period.as_secs_f64();
    scenario.with_duration_secs(periods as f64 * period_s)
}

/// A stepped sim of `users` full-window users over [`scenario`], warmed
/// through [`WARM_BOUNDARIES`] so every buffer is at capacity. The caller
/// steps the remaining boundaries and watches its allocator counter.
pub fn warmed_sim(periods: u64, users: usize, seed: u64) -> SteppedSim {
    let scenario = scenario(periods, seed);
    let max_k = scenario.query.result_count();
    let fleet: Vec<UserQuery> = (0..users)
        .map(|index| {
            let m = fleet_member(
                &scenario.motion,
                scenario.profile_source,
                index,
                scenario.seed,
            );
            UserQuery {
                user: index,
                seed: m.seed,
                motion: m.motion,
                profiles: m.profiles,
                first_k: 1,
                last_k: max_k,
            }
        })
        .collect();
    let set = QuerySet::from_users(fleet, max_k).expect("full windows are valid");
    let mut sim =
        SteppedSim::new(scenario, set, TreeSharing::Shared).expect("the probe scenario is valid");
    assert!(
        sim.max_k() > WARM_BOUNDARIES + 2,
        "probe run too short to have a steady state"
    );
    for _ in 0..WARM_BOUNDARIES {
        sim.step_period().expect("warm-up boundaries step cleanly");
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_runs_to_completion_and_resolves_every_period() {
        let mut sim = warmed_sim(16, 3, 11);
        sim.run_to_end().unwrap();
        let out = sim.finish();
        assert_eq!(out.users, 3);
        for log in &out.logs {
            assert_eq!(log.len() as u64, 16);
        }
    }
}
