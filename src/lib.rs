//! # mobiquery-repro
//!
//! Facade crate for the MobiQuery reproduction workspace. It re-exports every
//! sub-crate under one roof so examples, integration tests and downstream
//! users can depend on a single crate:
//!
//! * [`mobiquery`] — the protocol itself (query model, prefetching schemes,
//!   Section 5 analysis, the full protocol simulation).
//! * [`service`] — the long-lived query service (stepped engine, in-process
//!   client API, open-loop load generator behind `repro serve`/`load`).
//! * [`experiments`] — the per-figure experiment harness.
//! * [`sim`] / [`net`] / [`power`] / [`mobility`] / [`geom`] / [`metrics`] —
//!   the substrates (discrete-event engine, radio/MAC/PSM, CCP/energy,
//!   motion/GPS/profiles, geometry, metrics).
//!
//! ```
//! use mobiquery_repro::mobiquery::config::{Scenario, Scheme};
//! use mobiquery_repro::mobiquery::sim::Simulation;
//!
//! let scenario = Scenario::paper_default()
//!     .with_node_count(60)
//!     .with_region_side(250.0)
//!     .with_duration_secs(30.0)
//!     .with_scheme(Scheme::JustInTime);
//! let out = Simulation::new(scenario)?.run();
//! assert!(out.query_log.len() > 0);
//! # Ok::<(), mobiquery_repro::mobiquery::error::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mobiquery;
pub use mobiquery_experiments as experiments;
pub mod steady;
pub use mobiquery_service as service;
pub use wsn_geom as geom;
pub use wsn_metrics as metrics;
pub use wsn_mobility as mobility;
pub use wsn_net as net;
pub use wsn_power as power;
pub use wsn_sim as sim;
