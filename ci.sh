#!/usr/bin/env bash
# Full CI gate for the MobiQuery reproduction workspace. Every check here is
# required; run it locally before pushing. Takes a few minutes cold.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*" >&2
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --workspace

# The bench-schema gate itself is unit-tested: every assertion in
# scripts/check_bench.py must fire in both directions.
run python3 -m unittest discover -s scripts

# Tier-1 verify: release build + the facade's test suite (integration, doc).
run cargo build --release
run cargo test -q

# Every other member's unit/property/doc tests (the facade just ran).
run cargo test -q --workspace --exclude mobiquery-repro

# Benches must keep compiling (clippy lints them, but only --no-run proves
# the harness links). The raster-vs-reference election bench is named
# explicitly so a manifest slip can't silently drop it from the suite.
run cargo bench --no-run -q
run cargo bench --no-run -q -p mobiquery-bench --bench ccp_election
run cargo bench --no-run -q -p mobiquery-bench --bench tree_sharing
run cargo bench --no-run -q -p mobiquery-bench --bench event_queue

# The examples and the CLI must stay runnable, not just compilable.
for ex in quickstart firefighter rescue_robot duty_cycle_tuning parallel_sweep; do
    run cargo run --release -q --example "$ex" >/dev/null
done
run cargo run --release -q --bin repro -- --quick fig4 >/dev/null
run cargo run --release -q --bin repro -- --help >/dev/null

# Determinism gate: the cross-trial fan-out must not change results — the
# JSON output has to be byte-identical whatever the worker count.
run cargo run --release -q --bin repro -- --quick --format json --jobs 1 \
    --out target/repro-jobs1.json fig4
run cargo run --release -q --bin repro -- --quick --format json --jobs 4 \
    --out target/repro-jobs4.json fig4
run cmp target/repro-jobs1.json target/repro-jobs4.json

# Same gate for the multi-user multiplexing path at a 64-user fleet: every
# trial already cross-checks shared trees against the naive one-tree-per-user
# reference, and the emitted bytes must not depend on the worker count.
run cargo run --release -q --bin repro -- --quick --users 64 --format json \
    --jobs 1 --out target/repro-mu-jobs1.json multiuser
run cargo run --release -q --bin repro -- --quick --users 64 --format json \
    --jobs 4 --out target/repro-mu-jobs4.json multiuser
run cmp target/repro-mu-jobs1.json target/repro-mu-jobs4.json

# Churn gate: a 20k-node deployment losing (and regaining) 5% of its nodes
# at every period boundary, repaired incrementally. The run itself proves
# repair ≡ re-election twice over — the engine cross-checks EVERY batch
# against a full priority election (nodes ≤ 200000 always verify) and the
# experiment asserts the final backbone equals a from-scratch election —
# and the cmp proves the deterministic output is byte-identical whatever
# the worker count.
run cargo run --release -q --bin repro -- --quick --scale 20000 \
    --churn-rate 0.05 --format json --jobs 1 --out target/churn-jobs1.json churn
run cargo run --release -q --bin repro -- --quick --scale 20000 \
    --churn-rate 0.05 --format json --jobs 4 --out target/churn-jobs4.json churn
run cmp target/churn-jobs1.json target/churn-jobs4.json

# Chaos gate: the fault schedule (bursty loss, crashes) and every recovery
# decision (retries, backoff, tree rebuilds) must be pure functions of the
# seed — the faulted sweep's JSON is byte-identical whatever the worker
# count, and tests/golden/resilience_quick.json pins the same bytes against
# the committed snapshot.
run cargo run --release -q --bin repro -- --quick --scale 2000 \
    --fault-loss 0.2 --format json --jobs 1 --out target/resilience-jobs1.json resilience
run cargo run --release -q --bin repro -- --quick --scale 2000 \
    --fault-loss 0.2 --format json --jobs 4 --out target/resilience-jobs4.json resilience
run cmp target/resilience-jobs1.json target/resilience-jobs4.json
run cmp target/resilience-jobs1.json tests/golden/resilience_quick.json

# Service smoke: the long-lived query path must share the same determinism
# contract as the batch runs — a fixed seed yields byte-identical JSON
# whatever the worker count. --jobs N now shards each boundary's query
# resolution across N pool workers *inside* the stepped engine, so the
# jobs-1-vs-4 cmp is a real equivalence proof of the sharded hot path,
# not just an argv-shape check.
run cargo run --release -q --bin repro -- serve --periods 8 --quick \
    --jobs 1 --out target/serve-jobs1.json
run cargo run --release -q --bin repro -- serve --periods 8 --quick \
    --jobs 4 --out target/serve-jobs4.json
run cmp target/serve-jobs1.json target/serve-jobs4.json
run cargo run --release -q --bin repro -- load --qps 4 --duration 40 \
    --nodes 1000 --jobs 1 --out target/load-jobs1.json
run cargo run --release -q --bin repro -- load --qps 4 --duration 40 \
    --nodes 1000 --jobs 4 --out target/load-jobs4.json
run cmp target/load-jobs1.json target/load-jobs4.json

# Bench trajectory: quick-mode per-figure wall clock (serial vs parallel)
# plus a small --scale smoke sweep (the committed snapshot carries the full
# 1k-20k sweep). Writes under target/ so a green run leaves the tree clean;
# copy it over the committed snapshot when a PR deliberately updates the
# perf trajectory:
#   cargo run --release -q --bin repro -- --quick --users 250 \
#       --bench BENCH_repro.json --scale 1000,2000,5000,10000,20000,100000 all
run cargo run --release -q --bin repro -- --quick --users 100 \
    --bench target/BENCH_repro.json --scale 1000,2000 all

# bench/v8 sanity: schema, host metadata, per-phase setup breakdown, the
# raster-election regression bound, the event-loop section (calendar-vs-
# heap hold model, events/sec throughput, steady_allocs_per_period == 0,
# and on the committed full sweep the multiuser serial hot loop and 20k
# run beating the bench/v6 snapshot), the multi-user tree economy (shared
# cache strictly beating one-tree-per-user at 100+ user fleets), the churn
# section (incremental repair beating full re-election at scale under
# light churn), the service load section and the resilience ladder
# (recovery-on strictly beating recovery-off on mean delivery at every
# nonzero loss), enforced by the script shared with the hosted workflow —
# on both the fresh run and the committed snapshot. The markdown renderer
# the workflow feeds $GITHUB_STEP_SUMMARY with must keep accepting both
# documents too.
run python3 scripts/check_bench.py target/BENCH_repro.json
run python3 scripts/check_bench.py BENCH_repro.json
run python3 scripts/bench_summary.py "fresh quick run" target/BENCH_repro.json >/dev/null
run python3 scripts/bench_summary.py "committed snapshot" BENCH_repro.json >/dev/null

echo "==> CI green"
