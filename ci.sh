#!/usr/bin/env bash
# Full CI gate for the MobiQuery reproduction workspace. Every check here is
# required; run it locally before pushing. Takes a few minutes cold.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*" >&2
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --workspace

# Tier-1 verify: release build + the facade's test suite (integration, doc).
run cargo build --release
run cargo test -q

# Every other member's unit/property/doc tests (the facade just ran).
run cargo test -q --workspace --exclude mobiquery-repro

# The four examples and the CLI must stay runnable, not just compilable.
for ex in quickstart firefighter rescue_robot duty_cycle_tuning; do
    run cargo run --release -q --example "$ex" >/dev/null
done
run cargo run --release -q --bin repro -- --quick fig4 >/dev/null

echo "==> CI green"
