#!/usr/bin/env python3
"""Sanity-check a mobiquery-repro/bench/v3 document.

Shared by ci.sh and .github/workflows/ci.yml so the schema contract and the
pre-raster baseline figures live in exactly one place. Asserts that the
document carries the host metadata and the per-phase setup breakdown, and
that the coverage-raster election keeps `ccp_ms` at or below the *whole*
pre-raster setup figure committed for the same deployment size (bench/v2
values; generous by an order of magnitude on a quiet machine, so this only
fires on a real regression).
"""

import json
import sys

# Whole-setup wall-clock (ms) committed in the last bench/v2 snapshot, i.e.
# before the coverage raster, per deployment size (max of jit/np).
OLD_WHOLE_SETUP_MS = {
    1000: 19.05,
    2000: 38.0,
    5000: 100.97,
    10000: 182.3,
    20000: 389.54,
}


def main(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "mobiquery-repro/bench/v3", doc["schema"]
    assert doc.get("host_cores", 0) >= 1, "host_cores missing from bench header"
    for entry in doc["scale"]:
        nodes = entry["nodes"]
        for scheme in ("jit", "np"):
            setup = entry[scheme]["setup"]
            for field in ("neighbor_ms", "ccp_ms", "plan_ms"):
                assert field in setup, f"{nodes}/{scheme}: missing setup.{field}"
            bound = OLD_WHOLE_SETUP_MS.get(nodes)
            if bound is not None:
                assert setup["ccp_ms"] <= bound, (
                    f"{nodes}/{scheme}: ccp_ms {setup['ccp_ms']} exceeds the "
                    f"pre-raster whole-setup figure {bound} ms"
                )
    print("bench/v3 setup breakdown OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_repro.json")
