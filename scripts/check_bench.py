#!/usr/bin/env python3
"""Sanity-check a mobiquery-repro/bench/v8 document.

Shared by ci.sh and .github/workflows/ci.yml so the schema contract and the
committed baseline figures live in exactly one place. Asserts:

* header metadata (schema, host cores, the --users fleet ceiling);
* the per-phase setup breakdown of every scale entry, with the
  coverage-raster election's `ccp_ms` bounded by the *whole* pre-raster
  setup figure committed for the same deployment size (bench/v2 values;
  generous by an order of magnitude on a quiet machine, so this only fires
  on a real regression);
* the multi-user section: per-entry fleet/tree/success fields, the naive
  baseline building one tree per install, and — when the --users ceiling
  admits fleets of 100+ users — the shared cache building strictly fewer
  trees than the naive one-tree-per-user reference (smaller ceilings
  legitimately truncate the ladder, so the assertion is conditional);
* the service section (v5): the fixed reference load served by the
  stepped engine, with success ratios in [0, 1] and p50 <= p99 <= max
  latency;
* the churn section (v6): per-rate incremental-repair entries with
  every batch verified against a full re-election at verifiable scales,
  and — at large deployments under light churn, where repair is the whole
  point — a mean per-batch repair cost at least REPAIR_ADVANTAGE times
  below one full election;
* the event-loop section (v7): the calendar-queue-vs-heap hold
  model with both timings positive, `steady_allocs_per_period` exactly
  zero (the counting-allocator figure the zero_alloc test enforces), the
  `events_per_sec` throughput fields, and — when a document carries the
  full committed sweep (250-user fleet / 20k-node entry) — the multiuser
  serial hot loop and the 20k run no slower than the last bench/v6
  snapshot's committed values;
* the resilience section (new in v8): the fault-injection ladder run
  with recovery on and off over the identical seeded schedule, paired
  per loss rate, with recovery-off paying zero retries, recovery-on
  actually retrying at every nonzero loss, and — the reason the section
  exists — recovery-on retaining *strictly* higher mean delivery than
  recovery-off at every nonzero loss rate.

Unit-tested by scripts/test_check_bench.py (python3 -m unittest, run in the
CI lint job).
"""

import json
import sys

# Whole-setup wall-clock (ms) committed in the last bench/v2 snapshot, i.e.
# before the coverage raster, per deployment size (max of jit/np).
OLD_WHOLE_SETUP_MS = {
    1000: 19.05,
    2000: 38.0,
    5000: 100.97,
    10000: 182.3,
    20000: 389.54,
}

# The repair-vs-full-election bar: at REPAIR_ADVANTAGE_MIN_NODES nodes and
# a per-boundary rate of at most REPAIR_ADVANTAGE_MAX_RATE, the mean
# incremental repair must cost at least REPAIR_ADVANTAGE times less than
# one full re-election. Heavier churn legitimately erodes the advantage
# (more of the field goes dirty), so the bar only applies to light churn.
REPAIR_ADVANTAGE = 4.0
REPAIR_ADVANTAGE_MIN_NODES = 50_000
REPAIR_ADVANTAGE_MAX_RATE = 0.002

# Deployments at or below this size verify EVERY batch in-engine (mirrors
# VERIFY_MAX_NODES in crates/experiments/src/churn.rs).
VERIFY_MAX_NODES = 200_000

# Event-loop trajectory: the last bench/v6 snapshot's committed values for
# the multiuser serial hot loop (250-user fleet, shared cache) and the
# 20k-node single-user run. A v7 document carrying those entries must beat
# them — the event-loop PR's whole point. Only the committed snapshot
# carries them (the fresh CI smoke run sweeps a smaller grid), so these
# bounds compare one committed artifact against another, not a live run
# against a fixed wall clock.
V6_MULTIUSER_250_SHARED_MS = 859.1
V6_SCALE_20K_RUN_MS = 4.84

CHURN_FIELDS = (
    "nodes",
    "rate",
    "batches",
    "deaths",
    "evaluated",
    "promoted",
    "demoted",
    "backbone_count",
    "backbone_digest",
    "per_batch_verified",
    "repair_ms",
    "mean_repair_ms",
    "apply_ms",
    "full_ccp_ms",
)

RESILIENCE_FIELDS = (
    "nodes",
    "loss",
    "recovery",
    "retries",
    "install_failures",
    "retries_per_delivered",
    "mean_outage_periods",
    "mean_success_ratio",
    "mean_fidelity",
    "mean_delivery_ratio",
)

MULTIUSER_FIELDS = (
    "users",
    "installs",
    "trees_built_shared",
    "trees_built_naive",
    "sharing_ratio",
    "mean_success_ratio",
    "min_success_ratio",
    "mean_fidelity",
    "node_wake_seconds_shared",
    "node_wake_seconds_naive",
)


def check_scale(doc):
    for entry in doc["scale"]:
        nodes = entry["nodes"]
        for scheme in ("jit", "np"):
            run = entry[scheme]
            setup = run["setup"]
            for field in ("neighbor_ms", "ccp_ms", "plan_ms"):
                assert field in setup, f"{nodes}/{scheme}: missing setup.{field}"
            bound = OLD_WHOLE_SETUP_MS.get(nodes)
            if bound is not None:
                assert setup["ccp_ms"] <= bound, (
                    f"{nodes}/{scheme}: ccp_ms {setup['ccp_ms']} exceeds the "
                    f"pre-raster whole-setup figure {bound} ms"
                )
            assert run.get("events_per_sec", 0) > 0, (
                f"{nodes}/{scheme}: events_per_sec missing or non-positive"
            )
            if nodes == 20_000:
                assert run["run_ms"] < V6_SCALE_20K_RUN_MS, (
                    f"{nodes}/{scheme}: run_ms {run['run_ms']} regressed past "
                    f"the committed bench/v6 value {V6_SCALE_20K_RUN_MS} ms"
                )


def check_multiuser(doc):
    entries = doc["multiuser"]
    if doc["scale"]:
        assert entries, "a --scale bench must carry the multiuser sweep"
    for entry in entries:
        users = entry.get("users", 0)
        for field in MULTIUSER_FIELDS:
            assert field in entry, f"multiuser/{users}: missing {field}"
        assert entry["trees_built_naive"] == entry["installs"], (
            f"multiuser/{users}: the naive reference must build one tree per "
            f"install, got {entry['trees_built_naive']} for {entry['installs']}"
        )
        assert (
            entry["trees_built_shared"] <= entry["trees_built_naive"]
        ), f"multiuser/{users}: shared cache built MORE trees than naive"
        assert 0.0 <= entry["min_success_ratio"] <= entry["mean_success_ratio"] <= 1.0
        assert entry.get("events_per_sec", 0) > 0, (
            f"multiuser/{users}: events_per_sec missing or non-positive"
        )
        if users >= 250:
            assert entry["shared_ms"] < V6_MULTIUSER_250_SHARED_MS, (
                f"multiuser/{users}: serial hot loop {entry['shared_ms']} ms "
                f"regressed past the committed bench/v6 value "
                f"{V6_MULTIUSER_250_SHARED_MS} ms"
            )
    # The 100+-fleet sharing assertion only applies when the --users ceiling
    # allows such a fleet in the ladder at all (`--bench --users 8` now
    # honestly simulates at most 8 users).
    if entries and doc.get("users", 0) >= 100:
        big = [e for e in entries if e["users"] >= 100]
        assert big, "multiuser sweep must include a fleet of 100+ users"
        for entry in big:
            assert entry["trees_built_shared"] < entry["trees_built_naive"], (
                f"multiuser/{entry['users']}: at 100+ users the shared cache "
                f"must build strictly fewer trees than one-per-user "
                f"({entry['trees_built_shared']} vs {entry['trees_built_naive']})"
            )


def check_churn(doc):
    entries = doc["churn"]
    if doc["scale"]:
        assert entries, "a --scale bench must carry the churn sweep"
    for entry in entries:
        nodes = entry.get("nodes", 0)
        rate = entry.get("rate", 0.0)
        label = f"churn/{nodes}@{rate}"
        for field in CHURN_FIELDS:
            assert field in entry, f"{label}: missing {field}"
        assert entry["batches"] >= 1, f"{label}: a churn run must have batches"
        assert entry["deaths"] >= 1, f"{label}: the schedule must actually churn"
        assert entry["backbone_count"] >= 1, f"{label}: repaired backbone is empty"
        assert len(entry["backbone_digest"]) == 16, f"{label}: malformed digest"
        if nodes <= VERIFY_MAX_NODES:
            assert entry["per_batch_verified"], (
                f"{label}: every batch must be verified against a full "
                f"re-election at verifiable scales"
            )
        assert entry["mean_repair_ms"] >= 0.0, f"{label}: negative repair time"
        assert entry["full_ccp_ms"] > 0.0, f"{label}: full election not timed"
        if nodes >= REPAIR_ADVANTAGE_MIN_NODES and rate <= REPAIR_ADVANTAGE_MAX_RATE:
            assert (
                entry["mean_repair_ms"] * REPAIR_ADVANTAGE < entry["full_ccp_ms"]
            ), (
                f"{label}: incremental repair ({entry['mean_repair_ms']} ms/batch) "
                f"is not at least {REPAIR_ADVANTAGE}x cheaper than full "
                f"re-election ({entry['full_ccp_ms']} ms)"
            )


def check_service(doc):
    service = doc["service"]
    for field in (
        "qps",
        "duration_periods",
        "sharing",
        "submitted",
        "rejected",
        "starved",
        "mean_success_ratio",
        "min_success_ratio",
        "latency",
        "installs",
        "trees_built",
        "sharing_ratio",
    ):
        assert field in service, f"service: missing {field}"
    assert service["submitted"] >= 1, "the reference load admitted no query"
    assert (
        0.0 <= service["min_success_ratio"] <= service["mean_success_ratio"] <= 1.0
    ), "service success ratios out of [0, 1]"
    latency = service["latency"]
    assert latency["count"] + service["starved"] == service["submitted"], (
        "every admitted query must be served or starved"
    )
    if latency["count"] > 0:
        p50, p99 = latency["p50_periods"], latency["p99_periods"]
        assert 0.0 <= p50 <= p99 <= latency["max_periods"], (
            f"service latency percentiles disordered: p50 {p50}, p99 {p99}"
        )
    assert service["trees_built"] <= service["installs"]


def check_event_loop(doc):
    entries = doc.get("event_queue")
    assert entries, "the event_queue hold-model comparison is missing"
    for entry in entries:
        hold = entry.get("hold", 0)
        label = f"event_queue/hold={hold}"
        assert hold >= 1, f"{label}: malformed hold size"
        assert entry.get("events", 0) >= 1, f"{label}: no events driven"
        # The traces are equality-asserted in-process before timing, so the
        # document only needs both timings to exist and be sane.
        assert entry.get("calendar_ns_per_op", 0) > 0, (
            f"{label}: calendar timing missing or non-positive"
        )
        assert entry.get("heap_ns_per_op", 0) > 0, (
            f"{label}: heap reference timing missing or non-positive"
        )
    allocs = doc.get("steady_allocs_per_period")
    assert allocs == 0, (
        f"steady state allocated {allocs} times per period; the warm loop "
        f"must allocate exactly zero"
    )


def check_resilience(doc):
    entries = doc.get("resilience")
    assert entries, "the resilience ladder is missing"
    pairs = {}
    for entry in entries:
        loss = entry.get("loss", -1.0)
        label = f"resilience/loss={loss}:{'on' if entry.get('recovery') else 'off'}"
        for field in RESILIENCE_FIELDS:
            assert field in entry, f"{label}: missing {field}"
        assert 0.0 <= loss < 1.0, f"{label}: loss rate out of [0, 1)"
        assert 0.0 <= entry["mean_delivery_ratio"] <= 1.0, (
            f"{label}: mean_delivery_ratio out of [0, 1]"
        )
        assert 0.0 <= entry["mean_success_ratio"] <= 1.0, (
            f"{label}: mean_success_ratio out of [0, 1]"
        )
        if not entry["recovery"]:
            assert entry["retries"] == 0, (
                f"{label}: recovery-off must never retransmit, "
                f"got {entry['retries']} retries"
            )
        key = (entry["nodes"], loss)
        arm = pairs.setdefault(key, {})
        assert entry["recovery"] not in arm, f"{label}: duplicate arm"
        arm[entry["recovery"]] = entry
    for (nodes, loss), arm in sorted(pairs.items()):
        label = f"resilience/{nodes}@{loss}"
        assert set(arm) == {True, False}, (
            f"{label}: every loss rate needs a recovery-on AND a recovery-off "
            f"arm over the identical fault schedule"
        )
        if loss > 0.0:
            on, off = arm[True], arm[False]
            assert on["retries"] > 0, (
                f"{label}: recovery-on never retried under nonzero loss — "
                f"the retry path did not run"
            )
            assert on["mean_delivery_ratio"] > off["mean_delivery_ratio"], (
                f"{label}: recovery-on must retain strictly higher mean query "
                f"delivery than recovery-off ({on['mean_delivery_ratio']} vs "
                f"{off['mean_delivery_ratio']})"
            )


def check_doc(doc):
    assert doc["schema"] == "mobiquery-repro/bench/v8", doc["schema"]
    assert doc.get("host_cores", 0) >= 1, "host_cores missing from bench header"
    assert doc.get("users", 0) >= 1, "users missing from bench header"
    check_event_loop(doc)
    check_scale(doc)
    check_multiuser(doc)
    check_churn(doc)
    check_service(doc)
    check_resilience(doc)


def main(path):
    with open(path) as f:
        doc = json.load(f)
    check_doc(doc)
    print(
        "bench/v8 setup breakdown + event loop + multiuser tree economy + "
        "churn repair + service load + resilience recovery dominance OK"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_repro.json")
