#!/usr/bin/env python3
"""Unit tests for check_bench.py, the bench/v8 schema gate.

Run from the repository root (the CI lint job does exactly this):

    python3 -m unittest discover -s scripts

Each test builds a minimal valid document and mutates one thing, so every
assertion in the checker is exercised in both directions.
"""

import copy
import unittest

import check_bench


def valid_doc():
    """The smallest document every check in check_bench.py accepts."""
    return {
        "schema": "mobiquery-repro/bench/v8",
        "host_cores": 4,
        "users": 8,
        "event_queue": [
            {
                "hold": 64,
                "events": 20000,
                "calendar_ns_per_op": 12.0,
                "heap_ns_per_op": 22.0,
                "speedup": 1.83,
            }
        ],
        "steady_allocs_per_period": 0,
        "scale": [
            {
                "nodes": 1000,
                "jit": {
                    "setup": {"neighbor_ms": 1.0, "ccp_ms": 2.0, "plan_ms": 0.1},
                    "run_ms": 2.0,
                    "events_per_sec": 2.5e6,
                },
                "np": {
                    "setup": {"neighbor_ms": 1.0, "ccp_ms": 2.0, "plan_ms": 0.1},
                    "run_ms": 2.0,
                    "events_per_sec": 2.5e6,
                },
            }
        ],
        "multiuser": [
            {
                "users": 4,
                "installs": 40,
                "trees_built_shared": 30,
                "trees_built_naive": 40,
                "sharing_ratio": 0.75,
                "mean_success_ratio": 0.9,
                "min_success_ratio": 0.8,
                "mean_fidelity": 0.95,
                "node_wake_seconds_shared": 10.0,
                "node_wake_seconds_naive": 12.0,
                "shared_ms": 100.0,
                "events_per_sec": 5000.0,
            }
        ],
        "churn": [
            {
                "nodes": 1000,
                "rate": 0.01,
                "batches": 29,
                "deaths": 290,
                "evaluated": 5000,
                "promoted": 200,
                "demoted": 150,
                "backbone_count": 260,
                "backbone_digest": "f79285a53efd2296",
                "per_batch_verified": True,
                "repair_ms": 29.0,
                "mean_repair_ms": 1.0,
                "apply_ms": 10.0,
                "full_ccp_ms": 20.0,
            }
        ],
        "resilience": [
            {
                "nodes": 1000,
                "loss": 0.1,
                "recovery": True,
                "retries": 20,
                "install_failures": 5,
                "retries_per_delivered": 0.2,
                "mean_outage_periods": 1.5,
                "mean_success_ratio": 0.01,
                "mean_fidelity": 0.35,
                "mean_delivery_ratio": 0.95,
                "elapsed_ms": 4.0,
            },
            {
                "nodes": 1000,
                "loss": 0.1,
                "recovery": False,
                "retries": 0,
                "install_failures": 9,
                "retries_per_delivered": 0,
                "mean_outage_periods": 1.5,
                "mean_success_ratio": 0.01,
                "mean_fidelity": 0.34,
                "mean_delivery_ratio": 0.90,
                "elapsed_ms": 4.0,
            },
        ],
        "service": {
            "qps": 4.0,
            "duration_periods": 40,
            "sharing": "shared",
            "submitted": 100,
            "rejected": 0,
            "starved": 5,
            "mean_success_ratio": 0.9,
            "min_success_ratio": 0.7,
            "latency": {
                "count": 95,
                "p50_periods": 1.0,
                "p99_periods": 3.0,
                "max_periods": 5.0,
            },
            "installs": 200,
            "trees_built": 150,
            "sharing_ratio": 0.75,
        },
    }


class CheckDocTest(unittest.TestCase):
    def mutated(self, mutate):
        doc = copy.deepcopy(valid_doc())
        mutate(doc)
        return doc

    def assert_rejected(self, mutate, fragment=""):
        with self.assertRaises(AssertionError) as ctx:
            check_bench.check_doc(self.mutated(mutate))
        if fragment:
            self.assertIn(fragment, str(ctx.exception))

    def test_valid_document_passes(self):
        check_bench.check_doc(valid_doc())

    def test_wrong_schema_rejected(self):
        self.assert_rejected(
            lambda d: d.update(schema="mobiquery-repro/bench/v7"), "v7"
        )

    def test_missing_header_fields_rejected(self):
        self.assert_rejected(lambda d: d.pop("host_cores"), "host_cores")
        self.assert_rejected(lambda d: d.update(users=0), "users")


class CheckEventLoopTest(CheckDocTest):
    def test_missing_event_queue_section_rejected(self):
        self.assert_rejected(lambda d: d.pop("event_queue"), "event_queue")
        self.assert_rejected(lambda d: d.update(event_queue=[]), "event_queue")

    def test_missing_scheduler_timings_rejected(self):
        self.assert_rejected(
            lambda d: d["event_queue"][0].pop("calendar_ns_per_op"), "calendar"
        )
        self.assert_rejected(
            lambda d: d["event_queue"][0].update(heap_ns_per_op=0.0), "heap"
        )

    def test_nonzero_steady_allocations_rejected(self):
        # The whole point of the zero-alloc PR: "small" is not zero.
        self.assert_rejected(
            lambda d: d.update(steady_allocs_per_period=1), "allocated 1"
        )
        self.assert_rejected(
            lambda d: d.pop("steady_allocs_per_period"), "allocated"
        )


class CheckScaleTest(CheckDocTest):
    def test_missing_events_per_sec_rejected(self):
        self.assert_rejected(
            lambda d: d["scale"][0]["jit"].pop("events_per_sec"), "events_per_sec"
        )
        self.assert_rejected(
            lambda d: d["multiuser"][0].update(events_per_sec=0.0),
            "events_per_sec",
        )

    def test_20k_run_regression_rejected(self):
        # A committed sweep carrying the 20k entry must beat the bench/v6
        # run_ms; other sizes carry no event-loop bound.
        self.assert_rejected(
            lambda d: (
                d["scale"][0].update(nodes=20000),
                d["scale"][0]["jit"].update(run_ms=6.0),
            ),
            "regressed past the committed bench/v6",
        )
        ok = self.mutated(
            lambda d: (
                d["scale"][0].update(nodes=20000),
                d["scale"][0]["jit"].update(run_ms=4.0),
                d["scale"][0]["np"].update(run_ms=4.5),
            )
        )
        check_bench.check_doc(ok)

    def test_multiuser_serial_regression_rejected(self):
        # shared_ms 100.0 at 4 users is unbounded; at 250+ it races the
        # committed bench/v6 serial hot loop.
        self.assert_rejected(
            lambda d: d["multiuser"][0].update(
                users=250,
                installs=2500,
                trees_built_naive=2500,
                trees_built_shared=249,
                shared_ms=2000.0,
            ),
            "regressed past the committed bench/v6",
        )
        ok = self.mutated(
            lambda d: d["multiuser"][0].update(
                users=250,
                installs=2500,
                trees_built_naive=2500,
                trees_built_shared=249,
                shared_ms=700.0,
            )
        )
        check_bench.check_doc(ok)

    def test_missing_setup_phase_rejected(self):
        self.assert_rejected(
            lambda d: d["scale"][0]["jit"]["setup"].pop("ccp_ms"), "ccp_ms"
        )

    def test_ccp_regression_rejected(self):
        # 1000 nodes has a committed pre-raster bound of 19.05 ms.
        self.assert_rejected(
            lambda d: d["scale"][0]["jit"]["setup"].update(ccp_ms=1000.0),
            "exceeds the",
        )

    def test_unknown_scale_has_no_bound(self):
        doc = self.mutated(
            lambda d: (
                d["scale"][0].update(nodes=123456),
                d["scale"][0]["jit"]["setup"].update(ccp_ms=1e6),
            )
        )
        check_bench.check_doc(doc)


class CheckMultiuserTest(CheckDocTest):
    def test_scale_bench_requires_multiuser_sweep(self):
        self.assert_rejected(lambda d: d.update(multiuser=[]), "multiuser")

    def test_naive_tree_count_must_equal_installs(self):
        self.assert_rejected(
            lambda d: d["multiuser"][0].update(trees_built_naive=39),
            "one tree per install",
        )

    def test_shared_may_not_exceed_naive(self):
        self.assert_rejected(
            lambda d: d["multiuser"][0].update(trees_built_shared=41),
            "MORE trees",
        )

    def test_big_fleet_must_share(self):
        def grow(d):
            d["users"] = 128
            d["multiuser"][0].update(
                users=128, trees_built_shared=40, trees_built_naive=40
            )

        self.assert_rejected(grow, "strictly fewer")


class CheckChurnTest(CheckDocTest):
    def test_scale_bench_requires_churn_sweep(self):
        self.assert_rejected(lambda d: d.update(churn=[]), "churn")

    def test_missing_field_rejected(self):
        self.assert_rejected(
            lambda d: d["churn"][0].pop("backbone_digest"), "backbone_digest"
        )

    def test_unverified_batches_rejected_at_verifiable_scale(self):
        self.assert_rejected(
            lambda d: d["churn"][0].update(per_batch_verified=False), "verified"
        )

    def test_unverified_batches_allowed_above_the_cap(self):
        doc = self.mutated(
            lambda d: d["churn"][0].update(
                nodes=1_000_000, per_batch_verified=False
            )
        )
        check_bench.check_doc(doc)

    def test_repair_advantage_enforced_at_scale_under_light_churn(self):
        def slow_repair(d):
            d["churn"][0].update(
                nodes=100_000, rate=0.001, mean_repair_ms=10.0, full_ccp_ms=20.0
            )

        self.assert_rejected(slow_repair, "cheaper than full")

    def test_repair_advantage_waived_under_heavy_churn(self):
        doc = self.mutated(
            lambda d: d["churn"][0].update(
                nodes=100_000, rate=0.05, mean_repair_ms=10.0, full_ccp_ms=20.0
            )
        )
        check_bench.check_doc(doc)

    def test_empty_backbone_rejected(self):
        self.assert_rejected(
            lambda d: d["churn"][0].update(backbone_count=0), "backbone"
        )

    def test_malformed_digest_rejected(self):
        self.assert_rejected(
            lambda d: d["churn"][0].update(backbone_digest="abc"), "digest"
        )


class CheckResilienceTest(CheckDocTest):
    def test_missing_section_rejected(self):
        self.assert_rejected(lambda d: d.pop("resilience"), "resilience")
        self.assert_rejected(lambda d: d.update(resilience=[]), "resilience")

    def test_missing_field_rejected(self):
        self.assert_rejected(
            lambda d: d["resilience"][0].pop("mean_delivery_ratio"),
            "mean_delivery_ratio",
        )

    def test_unpaired_arm_rejected(self):
        # Dropping the recovery-off arm leaves no baseline to dominate.
        self.assert_rejected(lambda d: d["resilience"].pop(1), "recovery-off")

    def test_duplicate_arm_rejected(self):
        self.assert_rejected(
            lambda d: d["resilience"][1].update(recovery=True), "duplicate arm"
        )

    def test_recovery_off_may_not_retry(self):
        self.assert_rejected(
            lambda d: d["resilience"][1].update(retries=3), "never retransmit"
        )

    def test_idle_retry_path_rejected(self):
        self.assert_rejected(
            lambda d: d["resilience"][0].update(retries=0), "retry path"
        )

    def test_recovery_must_strictly_beat_the_baseline(self):
        # The headline gate: equal delivery is a failure, not a tie.
        self.assert_rejected(
            lambda d: d["resilience"][0].update(mean_delivery_ratio=0.90),
            "strictly higher",
        )
        self.assert_rejected(
            lambda d: d["resilience"][0].update(mean_delivery_ratio=0.85),
            "strictly higher",
        )

    def test_zero_loss_pair_carries_no_dominance_bar(self):
        # A rate-0 pair is legal (it proves inertness) and recovery buys
        # nothing there, so the strict bar only applies to nonzero rungs.
        def zero_loss(d):
            for entry in d["resilience"]:
                entry.update(loss=0.0, retries=0, mean_delivery_ratio=1.0)

        check_bench.check_doc(self.mutated(zero_loss))

    def test_out_of_range_ratios_rejected(self):
        self.assert_rejected(
            lambda d: d["resilience"][0].update(mean_delivery_ratio=1.2),
            "out of [0, 1]",
        )
        self.assert_rejected(
            lambda d: d["resilience"][0].update(loss=1.0), "out of [0, 1)"
        )


class CheckServiceTest(CheckDocTest):
    def test_served_plus_starved_must_cover_submitted(self):
        self.assert_rejected(
            lambda d: d["service"].update(starved=0), "served or starved"
        )

    def test_disordered_percentiles_rejected(self):
        self.assert_rejected(
            lambda d: d["service"]["latency"].update(p50_periods=4.0),
            "percentiles disordered",
        )

    def test_trees_bounded_by_installs(self):
        self.assert_rejected(lambda d: d["service"].update(trees_built=201))


if __name__ == "__main__":
    unittest.main()
