#!/usr/bin/env python3
"""Render a mobiquery-repro/bench/v8 document as GitHub-flavored markdown.

Used by .github/workflows/ci.yml to append both the fresh bench run and the
committed BENCH_repro.json trajectory to $GITHUB_STEP_SUMMARY:

    python3 scripts/bench_summary.py "fresh run" bench.json >> "$GITHUB_STEP_SUMMARY"

Pure formatting — the schema assertions live in check_bench.py. Sections the
document does not carry (e.g. an empty scale sweep in the smoke bench) are
skipped rather than rendered empty.
"""

import json
import sys


def table(headers, rows):
    """A GitHub markdown table; returns "" when there are no rows."""
    if not rows:
        return ""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    return "\n".join(lines) + "\n"


def section(title, body):
    return f"### {title}\n\n{body}\n" if body else ""


def figures_table(doc):
    rows = [
        [f["name"], f["serial_ms"], f["parallel_ms"], f["speedup"]]
        for f in doc.get("figures", [])
    ]
    return table(["target", "serial ms", "parallel ms", "speedup"], rows)


def event_queue_table(doc):
    rows = [
        [
            e["hold"],
            e["events"],
            e["calendar_ns_per_op"],
            e["heap_ns_per_op"],
            e["speedup"],
        ]
        for e in doc.get("event_queue", [])
    ]
    body = table(
        ["hold", "events", "calendar ns/op", "heap ns/op", "speedup"], rows
    )
    if body and "steady_allocs_per_period" in doc:
        body += (
            f"\nSteady-state heap allocations per period: "
            f"**{doc['steady_allocs_per_period']}**\n"
        )
    return body


def scale_table(doc):
    rows = []
    for e in doc.get("scale", []):
        jit, np = e["jit"], e["np"]
        rows.append(
            [
                e["nodes"],
                jit["setup_ms"],
                jit["setup"]["ccp_ms"],
                jit["run_ms"],
                f"{jit.get('events_per_sec', 0) / 1e6:.2f}M",
                np["run_ms"],
                e["nearest_backbone"]["speedup"],
            ]
        )
    return table(
        [
            "nodes",
            "jit setup ms",
            "ccp ms",
            "jit run ms",
            "events/s",
            "np run ms",
            "grid speedup",
        ],
        rows,
    )


def multiuser_table(doc):
    rows = [
        [
            e["users"],
            e["trees_built_shared"],
            e["trees_built_naive"],
            e["sharing_ratio"],
            f"{e['mean_success_ratio']:.3f}",
            e.get("shared_ms", "-"),
            e.get("events_per_sec", "-"),
        ]
        for e in doc.get("multiuser", [])
    ]
    return table(
        [
            "users",
            "trees shared",
            "trees naive",
            "sharing ratio",
            "mean success",
            "serial ms",
            "resolves/s",
        ],
        rows,
    )


def churn_table(doc):
    rows = [
        [
            e["nodes"],
            e["rate"],
            e["batches"],
            e["deaths"],
            e["mean_repair_ms"],
            e["full_ccp_ms"],
            e["speedup_vs_full"],
            "yes" if e["per_batch_verified"] else "final-only",
        ]
        for e in doc.get("churn", [])
    ]
    return table(
        [
            "nodes",
            "rate",
            "batches",
            "deaths",
            "repair ms/batch",
            "full election ms",
            "speedup",
            "verified",
        ],
        rows,
    )


def service_table(doc):
    s = doc.get("service")
    if not s:
        return ""
    latency = s["latency"]
    rows = [
        [
            s["qps"],
            s["duration_periods"],
            s["submitted"],
            s["starved"],
            s.get("deadline_misses", "-"),
            s.get("retries", "-"),
            s.get("degraded", "-"),
            f"{s['mean_success_ratio']:.3f}",
            latency.get("p50_periods", "-"),
            latency.get("p99_periods", "-"),
        ]
    ]
    return table(
        [
            "qps",
            "periods",
            "submitted",
            "starved",
            "misses",
            "retries",
            "degraded",
            "mean success",
            "p50",
            "p99",
        ],
        rows,
    )


def resilience_table(doc):
    rows = [
        [
            e["nodes"],
            e["loss"],
            "on" if e["recovery"] else "off",
            e["retries"],
            e["install_failures"],
            e["retries_per_delivered"],
            e["mean_outage_periods"],
            f"{e['mean_delivery_ratio']:.3f}",
            f"{e['mean_fidelity']:.3f}",
        ]
        for e in doc.get("resilience", [])
    ]
    return table(
        [
            "nodes",
            "loss",
            "recovery",
            "retries",
            "failures",
            "retries/delivered",
            "outage periods",
            "mean delivery",
            "mean fidelity",
        ],
        rows,
    )


def render(title, doc):
    out = [
        f"## Bench: {title}\n",
        f"`{doc.get('schema', '?')}` — mode {doc.get('mode', '?')}, "
        f"{doc.get('host_cores', '?')} host cores, "
        f"{doc.get('parallel_jobs', '?')} parallel jobs\n",
        section("Per-target serial vs parallel", figures_table(doc)),
        section("Event loop: calendar queue vs heap", event_queue_table(doc)),
        section("Scale sweep", scale_table(doc)),
        section("Multi-user tree economy", multiuser_table(doc)),
        section("Churn: incremental repair vs full re-election", churn_table(doc)),
        section("Reference service load", service_table(doc)),
        section("Resilience: recovery on vs off under faults", resilience_table(doc)),
    ]
    return "\n".join(part for part in out if part)


def main(argv):
    if len(argv) != 3:
        print(
            "usage: bench_summary.py <title> <bench.json>",
            file=sys.stderr,
        )
        return 2
    with open(argv[2]) as f:
        doc = json.load(f)
    print(render(argv[1], doc))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
