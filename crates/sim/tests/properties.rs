//! Property-based tests for the discrete-event engine.

use proptest::prelude::*;
use wsn_sim::{Duration, Engine, EventQueue, HeapEventQueue, SimRng, SimTime, World};

/// A world that records the times of every event it sees.
#[derive(Debug, Default)]
struct Recorder {
    times: Vec<SimTime>,
    payloads: Vec<u32>,
}

impl World for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, event: u32, _queue: &mut EventQueue<u32>) {
        self.times.push(now);
        self.payloads.push(event);
    }
}

proptest! {
    /// No matter the scheduling order, events are delivered in non-decreasing
    /// time order and none are lost.
    #[test]
    fn events_delivered_in_order_and_none_lost(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine = Engine::new(Recorder::default());
        for (i, &t) in times.iter().enumerate() {
            engine.queue_mut().schedule_at(SimTime::from_micros(t), i as u32);
        }
        engine.run_to_completion();
        let seen = &engine.world().times;
        prop_assert_eq!(seen.len(), times.len());
        for pair in seen.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        // Every payload delivered exactly once.
        let mut payloads = engine.world().payloads.clone();
        payloads.sort_unstable();
        prop_assert_eq!(payloads, (0..times.len() as u32).collect::<Vec<_>>());
    }

    /// Events scheduled for the same instant are delivered FIFO.
    #[test]
    fn simultaneous_events_are_fifo(n in 1usize..100) {
        let mut engine = Engine::new(Recorder::default());
        let t = SimTime::from_secs(1);
        for i in 0..n {
            engine.queue_mut().schedule_at(t, i as u32);
        }
        engine.run_to_completion();
        prop_assert_eq!(&engine.world().payloads, &(0..n as u32).collect::<Vec<_>>());
    }

    /// Running to a horizon never processes events scheduled after it, and a
    /// later run picks them all up.
    #[test]
    fn horizon_split_processes_everything(
        times in proptest::collection::vec(0u64..1_000_000, 1..100),
        horizon in 0u64..1_000_000,
    ) {
        let mut engine = Engine::new(Recorder::default());
        for (i, &t) in times.iter().enumerate() {
            engine.queue_mut().schedule_at(SimTime::from_micros(t), i as u32);
        }
        engine.run_until(SimTime::from_micros(horizon));
        let before = engine.world().times.len();
        for &t in &engine.world().times {
            prop_assert!(t <= SimTime::from_micros(horizon));
        }
        engine.run_to_completion();
        prop_assert_eq!(engine.world().times.len(), times.len());
        prop_assert!(engine.world().times.len() >= before);
    }

    /// The calendar queue pops in exactly the order of the retired
    /// `BinaryHeap` reference across random interleavings of schedules and
    /// pops — including heavy ties (FIFO stability), far-future outliers
    /// (more than a wheel revolution ahead) and past times that clamp to now.
    #[test]
    fn calendar_queue_matches_heap_reference(ops in proptest::collection::vec(any::<u64>(), 1..400)) {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        for (i, &op) in ops.iter().enumerate() {
            match op % 5 {
                // Dense band: lots of collisions within a few wheel days.
                0 | 1 => {
                    let t = SimTime::from_micros((op >> 3) % 100_000);
                    cal.schedule_at(t, i as u64);
                    heap.schedule_at(t, i as u64);
                }
                // Exact tie at a fixed instant: FIFO order must hold.
                2 => {
                    let t = SimTime::from_secs(7);
                    cal.schedule_at(t, i as u64);
                    heap.schedule_at(t, i as u64);
                }
                // Far future: beyond one revolution of the initial wheel.
                3 => {
                    let t = SimTime::from_secs(1_000 + (op >> 3) % 1_000_000_000);
                    cal.schedule_at(t, i as u64);
                    heap.schedule_at(t, i as u64);
                }
                // Pop: both queues must agree on the event and the clock.
                _ => {
                    match (cal.pop(), heap.pop()) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            prop_assert_eq!((a.time, a.seq, a.event), (b.time, b.seq, b.event));
                        }
                        (a, b) => prop_assert!(false, "queues diverged: {:?} vs {:?}", a, b),
                    }
                    prop_assert_eq!(cal.now(), heap.now());
                }
            }
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
            prop_assert_eq!(cal.len(), heap.len());
        }
        // Drain both: the tails must be identical too.
        loop {
            match (cal.pop(), heap.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    prop_assert_eq!((a.time, a.seq, a.event), (b.time, b.seq, b.event));
                }
                (a, b) => prop_assert!(false, "queues diverged while draining: {:?} vs {:?}", a, b),
            }
        }
        prop_assert_eq!(cal.scheduled_total(), heap.scheduled_total());
    }

    /// The RNG produces identical streams for identical seeds and stays in range.
    #[test]
    fn rng_reproducible_and_in_range(seed in any::<u64>(), lo in -1000.0f64..0.0, span in 0.001f64..1000.0) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = a.gen_range_f64(lo, lo + span);
            let y = b.gen_range_f64(lo, lo + span);
            prop_assert_eq!(x, y);
            prop_assert!(x >= lo && x < lo + span);
        }
    }

    /// Durations converted through seconds round-trip within a microsecond.
    #[test]
    fn duration_roundtrip(secs in 0.0f64..100_000.0) {
        let d = Duration::from_secs_f64(secs);
        prop_assert!((d.as_secs_f64() - secs).abs() < 1e-5);
    }
}
