//! A scoped work-stealing thread pool for embarrassingly parallel jobs.
//!
//! The simulation engine itself is deliberately single-threaded (see the
//! crate docs): determinism inside one run is worth more than parallelism.
//! Scaling therefore happens *across* runs — every figure sweep is a bag of
//! independent trials — and this module provides the fan-out: [`run_indexed`]
//! executes a batch of independent tasks on up to `jobs` worker threads and
//! returns the results **in input order**, so callers observe identical
//! output no matter how many workers ran or how work was interleaved.
//!
//! The pool is built on [`std::thread::scope`] only (the workspace builds
//! offline, so no external executor crates). Each worker owns a deque seeded
//! round-robin with tasks; it pops work from the front of its own deque and,
//! when empty, steals from the back of a sibling's. Results carry their input
//! index and are sorted once at the end, which is what makes the output
//! deterministic by construction rather than by scheduling luck.
//!
//! ```
//! use wsn_sim::pool;
//!
//! let squares = pool::run_indexed(4, (0u64..100).collect(), |_, n| n * n);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares, pool::run_indexed(1, (0u64..100).collect(), |_, n| n * n));
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

/// The number of worker threads to use when the caller does not specify one:
/// the hardware's available parallelism, or 1 if that cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over every item on up to `jobs` worker threads and returns the
/// results in input order.
///
/// `f` receives each item's input index alongside the item. `jobs` is clamped
/// to `1..=items.len()`; with one job (or zero/one items) everything runs
/// inline on the calling thread, which keeps the `--jobs 1` path free of any
/// threading machinery while producing the same results as the parallel path.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated once every
/// worker has been joined, courtesy of [`std::thread::scope`]).
pub fn run_indexed<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Deal tasks round-robin so every worker starts with a spread of early
    // and late items (sweeps often order trials from cheap to expensive).
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> = {
        let mut dealt: Vec<VecDeque<(usize, T)>> = (0..jobs).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            dealt[i % jobs].push_back((i, item));
        }
        dealt.into_iter().map(Mutex::new).collect()
    };
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let queues = &queues;
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    // Own deque first (front), then steal from a sibling's
                    // back. No task is ever re-queued, so once every deque
                    // reads empty the worker can retire. The own-queue pop
                    // must be a standalone statement: its MutexGuard lives to
                    // the end of the statement, and holding it while locking
                    // siblings would form a lock cycle (two idle workers each
                    // holding their own empty queue, waiting on the other's).
                    let own = queues[w].lock().unwrap().pop_front();
                    let task = own.or_else(|| {
                        (1..jobs)
                            .find_map(|off| queues[(w + off) % jobs].lock().unwrap().pop_back())
                    });
                    match task {
                        Some((i, item)) => local.push((i, f(i, item))),
                        None => break,
                    }
                }
                results.lock().unwrap().append(&mut local);
            });
        }
    });

    let mut collected = results.into_inner().unwrap();
    debug_assert_eq!(collected.len(), n, "every task must produce one result");
    collected.sort_unstable_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let out = run_indexed(4, (0..64).collect::<Vec<i32>>(), |i, x| {
            assert_eq!(i as i32, x);
            x * 10
        });
        assert_eq!(out, (0..64).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |_, x: u64| {
            // Uneven per-item cost so stealing actually kicks in.
            (0..(x % 7) * 1000).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let serial = run_indexed(1, (0..200).collect(), work);
        let parallel = run_indexed(8, (0..200).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(run_indexed(4, Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(run_indexed(0, vec![5], |_, x| x + 1), vec![6]);
        assert_eq!(run_indexed(16, vec![1, 2], |_, x| x), vec![1, 2]);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }
}
