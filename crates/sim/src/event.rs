//! The pending-event queue.
//!
//! Two implementations share one contract (pop order is the total order
//! `(time, seq)`, i.e. time order with FIFO tie-breaking):
//!
//! - [`EventQueue`] — a calendar queue (timing wheel), the textbook
//!   discrete-event scheduler: O(1) amortized insert/pop over bucketed
//!   time bands, and **allocation-free in steady state** (buckets retain
//!   their capacity, the bucket array only ever grows).
//! - [`HeapEventQueue`] — the original `BinaryHeap` scheduler, kept as the
//!   equality-asserted reference (property tests and the `event_queue`
//!   criterion bench drive both and assert identical pop sequences).
//!
//! Because both orders are the same total order, swapping the calendar queue
//! in changes no simulation output — golden fixtures stay byte-identical.

use crate::time::{Duration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for execution, as stored in the queues.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone sequence number used to break ties deterministically
    /// (FIFO among events scheduled for the same instant).
    pub seq: u64,
    /// The event payload handed to the [`World`](crate::World).
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Initial width of one calendar "day", as a power-of-two shift of
/// microseconds: 2^14 µs ≈ 16.4 ms. Every growth re-estimates the shift from
/// the pending-event spread (see [`EventQueue::grow`]), the calendar queue's
/// classic width adaptation.
const INITIAL_SHIFT: u32 = 14;

/// Initial bucket count (power of two, required by the mask arithmetic).
const INITIAL_BUCKETS: usize = 16;

/// Grow the bucket array when the queue holds more than this many events per
/// bucket on average. Growth doubles the array, so the amortized cost per
/// insert is O(1) and a bounded steady-state population never grows again.
const MAX_LOAD: usize = 4;

/// A priority queue of future events, ordered by time then insertion order,
/// implemented as a calendar queue (timing wheel).
///
/// The queue tracks the current simulation time: events may only be scheduled
/// at or after "now", which catches causality bugs in protocol code early.
/// That same invariant is what lets `pop` start its bucket scan at the day
/// containing "now" with no separate cursor state.
///
/// ```
/// use wsn_sim::{Duration, EventQueue, SimTime};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_in(Duration::from_secs(2), "later");
/// q.schedule_at(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().event, "sooner");
/// assert_eq!(q.pop().unwrap().event, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// `buckets[day & mask]` holds every pending event of that day (events
    /// whole revolutions apart share a bucket and are told apart by their
    /// timestamps). Buckets are unsorted; selection is by `(time, seq)`
    /// comparison, so `swap_remove` is safe and no per-pop sort is needed.
    buckets: Vec<Vec<ScheduledEvent<E>>>,
    /// Events scheduled beyond the wheel's horizon (one full revolution from
    /// now). Far-future outliers would otherwise pollute every bucket scan
    /// and stretch the width estimate; parking them in a side-heap keeps the
    /// wheel dense. They pop straight from the heap when their time comes —
    /// both structures honour the same `(time, seq)` total order, so the
    /// overall pop order is the min of the two fronts. Like the buckets, the
    /// heap keeps its capacity: no steady-state allocation.
    overflow: BinaryHeap<ScheduledEvent<E>>,
    /// Pending event count across wheel and overflow.
    len: usize,
    /// Pending events in the wheel alone (`find_next` early-outs on zero).
    wheel_len: usize,
    /// Location of the minimum *wheel* event: `(time, seq, bucket, slot)`.
    /// `Some` iff `wheel_len > 0`; maintained eagerly so `peek_time` is O(1)
    /// and each event is scanned for exactly once, on the pop that removes
    /// its predecessor. The true front is the min of this and the overflow
    /// heap's peek.
    next: Option<(SimTime, u64, usize, usize)>,
    /// Current day width as a power-of-two shift of microseconds
    /// (`day = micros >> shift`); re-estimated at every growth.
    shift: u32,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            len: 0,
            wheel_len: 0,
            next: None,
            shift: INITIAL_SHIFT,
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// The current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// Times in the past are clamped to "now": protocol code frequently
    /// computes ideal send instants (e.g. the just-in-time prefetch bound)
    /// that have already passed, in which case the action happens immediately.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.len += 1;
        if self.wheel_len + 1 > self.buckets.len() * MAX_LOAD {
            self.grow();
        }
        if time.as_micros() >= self.horizon() {
            self.overflow.push(ScheduledEvent { time, seq, event });
            return;
        }
        let bucket = self.bucket_of(time);
        self.buckets[bucket].push(ScheduledEvent { time, seq, event });
        self.wheel_len += 1;
        // A fresh event can only displace the cached minimum, never move it:
        // pushes append and nothing else shifts, so cached slots stay valid.
        let slot = self.buckets[bucket].len() - 1;
        match self.next {
            Some((t, s, _, _)) if (t, s) <= (time, seq) => {}
            _ => self.next = Some((time, seq, bucket, slot)),
        }
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Time of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let wheel = self.next.map(|(t, s, ..)| (t, s));
        let far = self.overflow.peek().map(|ev| (ev.time, ev.seq));
        match (wheel, far) {
            (Some(a), Some(b)) => Some(a.min(b).0),
            (Some(a), None) => Some(a.0),
            (None, Some(b)) => Some(b.0),
            (None, None) => None,
        }
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let take_overflow = match (self.next, self.overflow.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some((t, s, _, _)), Some(far)) => (far.time, far.seq) < (t, s),
        };
        self.len -= 1;
        if take_overflow {
            // The wheel's cached minimum is untouched: no slot moved.
            let event = self.overflow.pop().expect("peeked above");
            debug_assert!(event.time >= self.now, "event queue time went backwards");
            self.now = event.time;
            return Some(event);
        }
        let (time, _seq, bucket, slot) = self.next.expect("checked above");
        debug_assert!(time >= self.now, "event queue time went backwards");
        let event = self.buckets[bucket].swap_remove(slot);
        self.wheel_len -= 1;
        self.now = time;
        self.next = self.find_next();
        Some(event)
    }

    /// Removes all pending events without changing the clock. Buckets and the
    /// overflow heap keep their capacity, so refilling after a clear
    /// allocates nothing.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.len = 0;
        self.wheel_len = 0;
        self.next = None;
    }

    fn bucket_of(&self, time: SimTime) -> usize {
        let day = time.as_micros() >> self.shift;
        (day & (self.buckets.len() as u64 - 1)) as usize
    }

    /// First instant beyond the wheel: one full revolution from the day
    /// containing "now". Events at or past it go to the overflow heap.
    fn horizon(&self) -> u64 {
        ((self.now.as_micros() >> self.shift) + self.buckets.len() as u64) << self.shift
    }

    /// Doubles the bucket array, re-estimates the day width and
    /// redistributes every pending event. The array never shrinks: a
    /// steady-state population sized once stays allocation-free forever
    /// after (growth is the only allocating path, and the only one that
    /// changes the width).
    fn grow(&mut self) {
        let new_count = self.buckets.len() * 2;
        // Width estimation: choose the power-of-two day width that puts the
        // 75th-percentile pending event inside one wheel revolution. A dense
        // band then spreads across the whole array (each pop scans a few
        // events), while far-future outliers — which would wreck a max-based
        // estimate by stretching the width until everything near now shares
        // one day — stay outside the revolution and simply wrap.
        let now = self.now.as_micros();
        let mut deltas: Vec<u64> = self
            .buckets
            .iter()
            .flatten()
            .map(|ev| ev.time.as_micros() - now)
            .collect();
        if !deltas.is_empty() {
            let at = deltas.len() * 3 / 4;
            let (_, q75, _) = deltas.select_nth_unstable(at);
            let width = (q75.saturating_mul(2) / new_count as u64).max(1);
            self.shift = width.ilog2();
        }
        let new_buckets: Vec<Vec<ScheduledEvent<E>>> = (0..new_count).map(|_| Vec::new()).collect();
        let mask = new_count as u64 - 1;
        let horizon = ((now >> self.shift) + new_count as u64) << self.shift;
        let old = std::mem::replace(&mut self.buckets, new_buckets);
        for bucket in old {
            for ev in bucket {
                // The tighter width may push events past the new horizon —
                // they move to the overflow heap rather than wrapping.
                if ev.time.as_micros() >= horizon {
                    self.overflow.push(ev);
                    self.wheel_len -= 1;
                    continue;
                }
                let day = ev.time.as_micros() >> self.shift;
                self.buckets[(day & mask) as usize].push(ev);
            }
        }
        // Slots moved; re-locate the cached minimum (its identity is stable,
        // redistribution changes positions only).
        self.next = self.find_next();
    }

    /// Locates the minimum `(time, seq)` pending event.
    ///
    /// Walks calendar days starting at the day containing `now` (every
    /// pending event is at or after `now`, so earlier days are provably
    /// empty). The first day holding an event holds the minimum. One full
    /// revolution visits every bucket exactly once, so if no event lies
    /// within a revolution the walk has already seen the global minimum and
    /// returns it directly — far-future outliers cost one O(n) sweep, not an
    /// unbounded spin around the wheel.
    fn find_next(&self) -> Option<(SimTime, u64, usize, usize)> {
        if self.wheel_len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        let mask = nbuckets as u64 - 1;
        let start_day = self.now.as_micros() >> self.shift;
        let mut global: Option<(SimTime, u64, usize, usize)> = None;
        for offset in 0..nbuckets as u64 {
            let day = start_day + offset;
            let bucket = (day & mask) as usize;
            let events = &self.buckets[bucket];
            if events.is_empty() {
                continue;
            }
            // Every pending event is >= now, so an event in this bucket with
            // time below the day's end boundary is *of* this day (an earlier
            // day mapping to the same bucket would lie a whole revolution
            // before `start_day`). One precomputed bound replaces a per-event
            // shift-and-compare.
            let day_end = (day + 1) << self.shift;
            let mut same_day: Option<(SimTime, u64, usize)> = None;
            for (slot, ev) in events.iter().enumerate() {
                if ev.time.as_micros() < day_end {
                    if same_day.map_or(true, |(t, s, _)| (ev.time, ev.seq) < (t, s)) {
                        same_day = Some((ev.time, ev.seq, slot));
                    }
                } else if global.map_or(true, |(t, s, _, _)| (ev.time, ev.seq) < (t, s)) {
                    global = Some((ev.time, ev.seq, bucket, slot));
                }
            }
            if let Some((time, seq, slot)) = same_day {
                return Some((time, seq, bucket, slot));
            }
        }
        global
    }
}

/// The original `BinaryHeap` scheduler, kept as the equality-asserted
/// reference for the calendar-queue [`EventQueue`]. Same API, same pop order
/// (`(time, seq)` total order); O(log n) insert/pop and it allocates as the
/// heap grows.
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// The current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `event` at absolute time `time` (past times clamp to now).
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Time of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let next = self.heap.pop()?;
        debug_assert!(next.time >= self.now, "event queue time went backwards");
        self.now = next.time;
        Some(next)
    }

    /// Removes all pending events without changing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3);
        q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop();
        // Scheduling in the past is clamped to the current time rather than
        // violating causality.
        q.schedule_at(SimTime::from_secs(1), "late");
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_secs(10));
        assert_eq!(e.event, "late");
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        q.schedule_in(Duration::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule_at(SimTime::from_secs(i), i);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.scheduled_total(), 5);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 5);
        // A cleared wheel keeps working (and keeps its bucket capacity).
        q.schedule_at(SimTime::from_secs(9), 9);
        assert_eq!(q.pop().unwrap().event, 9);
    }

    #[test]
    fn growth_preserves_order_and_pending_events() {
        // Push far past the initial capacity so the wheel doubles several
        // times mid-stream, then check nothing was lost or reordered.
        let mut q = EventQueue::new();
        let mut expect: Vec<u64> = Vec::new();
        for i in 0..1000u64 {
            let t = (i * 7919) % 4096; // deterministic scatter, many ties
            q.schedule_at(SimTime::from_millis(t), t);
            expect.push(t);
        }
        expect.sort(); // stable: equal times keep insertion order
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn far_future_events_pop_after_a_sparse_gap() {
        // Events separated by much more than one wheel revolution exercise
        // the global-minimum fallback in find_next.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1_000_000), "far");
        q.schedule_at(SimTime::from_secs(1), "near");
        q.schedule_at(SimTime::from_secs(500_000_000), "farther");
        assert_eq!(q.pop().unwrap().event, "near");
        assert_eq!(q.pop().unwrap().event, "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(500_000_000)));
        assert_eq!(q.pop().unwrap().event, "farther");
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_matches_heap_reference() {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..200 {
            for _ in 0..(step() % 8) {
                let t = SimTime::from_micros(step() % 50_000_000);
                cal.schedule_at(t, round);
                heap.schedule_at(t, round);
            }
            assert_eq!(cal.peek_time(), heap.peek_time());
            for _ in 0..(step() % 6) {
                let (a, b) = (cal.pop(), heap.pop());
                match (a, b) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!((a.time, a.seq, a.event), (b.time, b.seq, b.event));
                    }
                    other => panic!("queues diverged: {other:?}"),
                }
                assert_eq!(cal.now(), heap.now());
                assert_eq!(cal.len(), heap.len());
            }
        }
        while let Some(a) = cal.pop() {
            let b = heap.pop().expect("heap ended early");
            assert_eq!((a.time, a.seq, a.event), (b.time, b.seq, b.event));
        }
        assert!(heap.pop().is_none());
    }
}
