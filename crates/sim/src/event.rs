//! The pending-event queue.

use crate::time::{Duration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for execution, as stored in the [`EventQueue`].
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone sequence number used to break ties deterministically
    /// (FIFO among events scheduled for the same instant).
    pub seq: u64,
    /// The event payload handed to the [`World`](crate::World).
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of future events, ordered by time then insertion order.
///
/// The queue tracks the current simulation time: events may only be scheduled
/// at or after "now", which catches causality bugs in protocol code early.
///
/// ```
/// use wsn_sim::{Duration, EventQueue, SimTime};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_in(Duration::from_secs(2), "later");
/// q.schedule_at(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().event, "sooner");
/// assert_eq!(q.pop().unwrap().event, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// The current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// Times in the past are clamped to "now": protocol code frequently
    /// computes ideal send instants (e.g. the just-in-time prefetch bound)
    /// that have already passed, in which case the action happens immediately.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Time of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let next = self.heap.pop()?;
        debug_assert!(next.time >= self.now, "event queue time went backwards");
        self.now = next.time;
        Some(next)
    }

    /// Removes all pending events without changing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3);
        q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop();
        // Scheduling in the past is clamped to the current time rather than
        // violating causality.
        q.schedule_at(SimTime::from_secs(1), "late");
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_secs(10));
        assert_eq!(e.event, "late");
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        q.schedule_in(Duration::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule_at(SimTime::from_secs(i), i);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.scheduled_total(), 5);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 5);
    }
}
