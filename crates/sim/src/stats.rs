//! Summary statistics used when aggregating experiment runs.
//!
//! The paper reports means over 3–5 runs with 95 % confidence intervals;
//! [`Summary`] computes exactly that (using the normal approximation, which is
//! what ns-2 post-processing scripts conventionally do for a handful of runs).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Accumulates samples and reports mean, standard deviation and a 95 %
/// confidence half-interval.
///
/// ```
/// use wsn_sim::stats::Summary;
///
/// let s: Summary = [0.9, 0.95, 1.0].into_iter().collect();
/// assert!((s.mean() - 0.95).abs() < 1e-12);
/// assert!(s.ci95() > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

/// z-value for a two-sided 95 % interval under the normal approximation.
const Z_95: f64 = 1.959964;

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.sum_sq += value * value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples added.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample variance (unbiased, 0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
        var.max(0.0) // guard against tiny negative values from cancellation
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of a 95 % confidence interval around the mean
    /// (normal approximation; 0 with fewer than two samples).
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        Z_95 * self.std_dev() / (self.count as f64).sqrt()
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, min={:.4}, max={:.4})",
            self.mean(),
            self.ci95(),
            self.count,
            self.min(),
            self.max()
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 4.571428...
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s: Summary = [0.5].into_iter().collect();
        assert_eq!(s.mean(), 0.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn identical_samples_have_zero_ci() {
        let s: Summary = std::iter::repeat(3.3).take(10).collect();
        assert!((s.mean() - 3.3).abs() < 1e-12);
        assert!(s.ci95() < 1e-9);
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let small: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let big: Summary = [1.0, 2.0, 3.0].iter().cycle().take(300).copied().collect();
        assert!(big.ci95() < small.ci95());
    }

    #[test]
    fn merge_matches_combined() {
        let mut a: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let b: Summary = [4.0, 5.0].into_iter().collect();
        let combined: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        a.merge(&b);
        assert!((a.mean() - combined.mean()).abs() < 1e-12);
        assert!((a.variance() - combined.variance()).abs() < 1e-9);
        assert_eq!(a.count(), 5);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 5);
    }

    #[test]
    fn extend_and_display() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        assert_eq!(s.count(), 2);
        assert!(!format!("{s}").is_empty());
    }
}
