//! Simulation time and durations.
//!
//! Time is stored as an integer number of microseconds since the start of the
//! simulation. Integer time keeps event ordering exact (no floating-point
//! drift when adding many periods together), while microsecond resolution is
//! far finer than anything the protocol needs (packet transmission times are
//! hundreds of microseconds).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub(crate) const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant in simulated time (microseconds since simulation start).
///
/// `SimTime` is totally ordered and cheap to copy; use [`Duration`] for
/// differences between instants.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far away"
    /// sentinel for deadlines that are never reached.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a whole number of microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from a whole number of milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from a whole number of seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// Negative values are clamped to zero: the simulation clock never runs
    /// before its origin. This comes up when analytical formulas such as the
    /// prefetch forwarding bound (Eq. 10 of the paper) produce a send time in
    /// the past — the protocol then sends "as soon as possible", i.e. now.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            SimTime::ZERO
        } else {
            SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
        }
    }

    /// This instant as a whole number of microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed from `earlier` to `self`, saturating at zero when
    /// `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_micros()))
    }

    /// Subtracts a duration, saturating at [`SimTime::ZERO`].
    pub fn saturating_sub(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(d.as_micros()))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.as_micros())
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_micros(self.0 - rhs.0)
    }
}

/// A span of simulated time (non-negative, microsecond resolution).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// The largest representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, clamping negative or
    /// non-finite inputs to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            Duration::ZERO
        } else {
            Duration((secs * MICROS_PER_SEC as f64).round() as u64)
        }
    }

    /// This duration as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns `true` for the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two durations.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(12.345678);
        assert!((t.as_secs_f64() - 12.345678).abs() < 1e-6);
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(1500).as_micros(), 1_500_000);
        assert_eq!(Duration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-5.0), SimTime::ZERO);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(b - a, Duration::from_secs(1));
        assert_eq!(a + Duration::from_secs(1), b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_secs(4));
        assert_eq!(a.saturating_sub(Duration::from_secs(10)), SimTime::ZERO);
        assert_eq!(
            SimTime::MAX.saturating_add(Duration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            Duration::from_secs(1).saturating_sub(Duration::from_secs(2)),
            Duration::ZERO
        );
    }

    #[test]
    fn duration_multiplication() {
        assert_eq!(Duration::from_secs(2) * 3, Duration::from_secs(6));
        assert_eq!(
            Duration::from_secs(2).saturating_mul(u64::MAX),
            Duration::MAX
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
        assert_eq!(format!("{}", Duration::from_millis(250)), "0.250000s");
    }
}
