//! # wsn-sim
//!
//! A small, deterministic discrete-event simulation (DES) engine used as the
//! substrate for the MobiQuery reproduction.
//!
//! The paper evaluates MobiQuery in ns-2; this crate provides the equivalent
//! machinery we need from such a simulator:
//!
//! * a virtual clock with microsecond resolution ([`SimTime`], [`Duration`]),
//! * a pending-event queue with deterministic tie-breaking ([`EventQueue`]),
//! * a generic engine driving a user-supplied [`World`] ([`Engine`]),
//! * a seedable, fast pseudo-random number generator ([`SimRng`]) so that
//!   every experiment is exactly reproducible from its seed,
//! * light-weight summary statistics ([`stats`]).
//!
//! The engine is intentionally single-threaded: wireless protocol simulations
//! of this scale (hundreds of nodes, hundreds of simulated seconds) are
//! dominated by event ordering rather than raw compute, and determinism is
//! worth far more than parallelism for reproducing published figures.
//! Parallelism happens one level up instead: independent runs fan out across
//! worker threads through the [`pool`] module, which preserves input order so
//! results are identical whatever the worker count.
//!
//! ```
//! use wsn_sim::{Duration, Engine, EventQueue, SimTime, World};
//!
//! struct Counter { fired: u32 }
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Tick { Once, Repeat(u32) }
//!
//! impl World for Counter {
//!     type Event = Tick;
//!     fn handle(&mut self, _now: SimTime, event: Tick, queue: &mut EventQueue<Tick>) {
//!         self.fired += 1;
//!         if let Tick::Repeat(n) = event {
//!             if n > 0 {
//!                 queue.schedule_in(Duration::from_secs_f64(1.0), Tick::Repeat(n - 1));
//!             }
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.queue_mut().schedule_at(SimTime::ZERO, Tick::Once);
//! engine.queue_mut().schedule_at(SimTime::ZERO, Tick::Repeat(3));
//! engine.run_until(SimTime::from_secs_f64(10.0));
//! assert_eq!(engine.world().fired, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod event;
pub mod pool;
mod rng;
pub mod stats;
mod time;

pub use engine::{Engine, RunOutcome, World};
pub use event::{EventQueue, HeapEventQueue, ScheduledEvent};
pub use rng::{mix_seed, SimRng};
pub use time::{Duration, SimTime};
