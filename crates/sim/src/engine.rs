//! The simulation engine: repeatedly pops the next event and hands it to the
//! world together with the queue so the world can schedule follow-up events.

use crate::event::EventQueue;
use crate::time::SimTime;

/// The behaviour under simulation.
///
/// A `World` owns all simulated state (nodes, channel, user, protocol state)
/// and reacts to events by mutating that state and scheduling further events
/// on the queue it is handed.
pub trait World {
    /// The event type driving this world.
    type Event;

    /// Handles a single event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Why a call to [`Engine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue was exhausted before the horizon was reached.
    QueueExhausted,
    /// The time horizon was reached; later events remain pending.
    HorizonReached,
    /// The configured event budget was exhausted (safety valve against
    /// accidental event storms in protocol code).
    EventBudgetExhausted,
}

/// A discrete-event simulation engine driving a [`World`].
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug)]
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    processed: u64,
    event_budget: u64,
}

impl<W: World> Engine<W> {
    /// Default maximum number of events processed per engine (100 million),
    /// a generous safety valve against runaway event storms.
    pub const DEFAULT_EVENT_BUDGET: u64 = 100_000_000;

    /// Creates an engine around `world` with an empty event queue.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            processed: 0,
            event_budget: Self::DEFAULT_EVENT_BUDGET,
        }
    }

    /// Sets the maximum total number of events this engine will process.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. to inspect or adjust state between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Immutable access to the event queue.
    pub fn queue(&self) -> &EventQueue<W::Event> {
        &self.queue
    }

    /// Mutable access to the event queue (used to seed initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Runs until the queue is empty, the event budget is exhausted, or the
    /// next event would fire strictly after `horizon`.
    ///
    /// Events scheduled exactly at `horizon` are processed.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.processed >= self.event_budget {
                return RunOutcome::EventBudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::QueueExhausted,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    // Unwrap is fine: peek just succeeded and we hold &mut self.
                    let scheduled = self.queue.pop().expect("peeked event vanished");
                    self.processed += 1;
                    self.world
                        .handle(scheduled.time, scheduled.event, &mut self.queue);
                }
            }
        }
    }

    /// Runs until the queue is exhausted (or the event budget is hit).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Processes exactly one pending event, if any. Returns `true` when an
    /// event was processed. Useful for lock-step debugging and tests.
    pub fn step(&mut self) -> bool {
        if self.processed >= self.event_budget {
            return false;
        }
        match self.queue.pop() {
            None => false,
            Some(scheduled) => {
                self.processed += 1;
                self.world
                    .handle(scheduled.time, scheduled.event, &mut self.queue);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[derive(Debug, Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    #[derive(Debug, Clone)]
    enum Ev {
        Mark(u32),
        Chain(u32),
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Mark(id) => self.seen.push((now, id)),
                Ev::Chain(n) => {
                    self.seen.push((now, n));
                    if n > 0 {
                        queue.schedule_in(Duration::from_secs(1), Ev::Chain(n - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn processes_events_in_order() {
        let mut engine = Engine::new(Recorder::default());
        engine
            .queue_mut()
            .schedule_at(SimTime::from_secs(2), Ev::Mark(2));
        engine
            .queue_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        let outcome = engine.run_to_completion();
        assert_eq!(outcome, RunOutcome::QueueExhausted);
        assert_eq!(
            engine.world().seen,
            vec![(SimTime::from_secs(1), 1), (SimTime::from_secs(2), 2)]
        );
    }

    #[test]
    fn horizon_stops_before_later_events() {
        let mut engine = Engine::new(Recorder::default());
        engine
            .queue_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        engine
            .queue_mut()
            .schedule_at(SimTime::from_secs(5), Ev::Mark(5));
        let outcome = engine.run_until(SimTime::from_secs(3));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(engine.world().seen.len(), 1);
        assert_eq!(engine.queue().len(), 1);
        // Events exactly at the horizon are processed.
        let outcome = engine.run_until(SimTime::from_secs(5));
        assert_eq!(outcome, RunOutcome::QueueExhausted);
        assert_eq!(engine.world().seen.len(), 2);
    }

    #[test]
    fn chained_events_cascade() {
        let mut engine = Engine::new(Recorder::default());
        engine.queue_mut().schedule_at(SimTime::ZERO, Ev::Chain(4));
        engine.run_to_completion();
        assert_eq!(engine.world().seen.len(), 5);
        assert_eq!(engine.now(), SimTime::from_secs(4));
        assert_eq!(engine.events_processed(), 5);
    }

    #[test]
    fn event_budget_is_a_safety_valve() {
        let mut engine = Engine::new(Recorder::default()).with_event_budget(3);
        engine
            .queue_mut()
            .schedule_at(SimTime::ZERO, Ev::Chain(100));
        let outcome = engine.run_to_completion();
        assert_eq!(outcome, RunOutcome::EventBudgetExhausted);
        assert_eq!(engine.events_processed(), 3);
    }

    #[test]
    fn step_processes_one_event() {
        let mut engine = Engine::new(Recorder::default());
        engine.queue_mut().schedule_at(SimTime::ZERO, Ev::Mark(1));
        engine.queue_mut().schedule_at(SimTime::ZERO, Ev::Mark(2));
        assert!(engine.step());
        assert_eq!(engine.world().seen.len(), 1);
        assert!(engine.step());
        assert!(!engine.step());
    }

    #[test]
    fn into_world_returns_final_state() {
        let mut engine = Engine::new(Recorder::default());
        engine.queue_mut().schedule_at(SimTime::ZERO, Ev::Mark(9));
        engine.run_to_completion();
        let world = engine.into_world();
        assert_eq!(world.seen, vec![(SimTime::ZERO, 9)]);
    }
}
