//! A small, fast, seedable pseudo-random number generator.
//!
//! The simulator needs reproducible randomness: node placement, user motion,
//! GPS errors, MAC backoff and loss decisions must all be derived from a
//! single experiment seed so that every figure can be regenerated exactly.
//! We implement SplitMix64 (for seeding) feeding xoshiro256++, the same
//! construction used by many simulation frameworks; it is tiny, has excellent
//! statistical quality for this purpose, and avoids pulling `rand` into the
//! hot path of every crate (the `rand`/`proptest` crates are still used in
//! tests and benchmarks).

use serde::{Deserialize, Serialize};

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// ```
/// use wsn_sim::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let x = a.gen_range_f64(3.0, 5.0);
/// assert!((3.0..5.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a seed from a base seed and a sequence of coordinate words by
/// folding each word through a SplitMix64-style finalizer.
///
/// This is the one seed-derivation scheme of the whole workspace: the
/// experiment harness derives per-trial seeds from `(base, point, replicate)`
/// and the multi-user simulation derives per-user and per-query streams from
/// `(scenario seed, stream tag, user, k)`. The function is pure — the result
/// depends only on its inputs, never on call order — which is what keeps
/// serial and parallel execution bit-identical. Nearby coordinates (adjacent
/// users, adjacent replicates) still land on statistically independent
/// streams, unlike additive `base + i` schemes.
///
/// ```
/// use wsn_sim::mix_seed;
///
/// assert_eq!(mix_seed(42, &[1, 2]), mix_seed(42, &[1, 2]));
/// assert_ne!(mix_seed(42, &[1, 2]), mix_seed(42, &[2, 1]));
/// ```
pub fn mix_seed(base: u64, words: &[u64]) -> u64 {
    let mut z = base;
    for &word in words {
        z = z.wrapping_add(word).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Different seeds give statistically independent streams; the same seed
    /// always gives the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator, e.g. one per node or per run.
    ///
    /// Mixing a stream index into the seed path keeps child streams
    /// uncorrelated even for adjacent indices.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from_u64(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is not finite.
    pub fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low <= high,
            "invalid range [{low}, {high})"
        );
        low + self.gen_f64() * (high - low)
    }

    /// Uniform integer in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn gen_range_usize(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "invalid range [{low}, {high})");
        let span = (high - low) as u64;
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small ranges used here (node counts, backoff slots).
        low + ((self.next_u64() as u128 * span as u128) >> 64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Uniform angle in `[0, 2π)`.
    pub fn gen_angle(&mut self) -> f64 {
        self.gen_range_f64(0.0, std::f64::consts::TAU)
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for randomised protocol jitter. Returns 0 for non-positive means.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.gen_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.gen_range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range_f64(3.0, 5.0);
            assert!((3.0..5.0).contains(&x));
            let n = rng.gen_range_usize(10, 20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn gen_range_mean_is_roughly_central() {
        let mut rng = SimRng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range_f64(0.0, 10.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean} too far from 5");
    }

    #[test]
    #[should_panic]
    fn invalid_range_panics() {
        let mut rng = SimRng::seed_from_u64(6);
        let _ = rng.gen_range_f64(5.0, 3.0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::seed_from_u64(8);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn gen_exp_mean_close() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "exponential mean {mean} off");
        assert_eq!(rng.gen_exp(0.0), 0.0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::seed_from_u64(10);
        let mut parent2 = SimRng::seed_from_u64(10);
        let mut a = parent1.fork(0);
        let mut b = parent2.fork(0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SimRng::seed_from_u64(10).fork(1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn mix_seed_is_order_sensitive_and_collision_free_on_small_grids() {
        let mut seeds = Vec::new();
        for a in 0..8u64 {
            for b in 0..8u64 {
                seeds.push(mix_seed(42, &[a, b]));
            }
        }
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision on a small grid");
        // A longer word list keeps folding, it does not restart.
        assert_ne!(mix_seed(42, &[1]), mix_seed(42, &[1, 0]));
        assert_eq!(mix_seed(7, &[]), 7, "no words leaves the base untouched");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
