//! Property-based tests for the geometry primitives.

use proptest::prelude::*;
use wsn_geom::{Circle, Point, Rect, Segment, SpatialGrid, Vector};

fn finite_coord() -> impl Strategy<Value = f64> {
    -1.0e4..1.0e4
}

fn arb_point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_vector() -> impl Strategy<Value = Vector> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Vector::new(x, y))
}

proptest! {
    #[test]
    fn distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.distance_to(b);
        let bc = b.distance_to(c);
        let ac = a.distance_to(c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn distance_symmetry(a in arb_point(), b in arb_point()) {
        prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-9);
    }

    #[test]
    fn vector_add_commutes(a in arb_vector(), b in arb_vector()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn point_plus_minus_vector_round_trips(p in arb_point(), v in arb_vector()) {
        let q = (p + v) - v;
        prop_assert!((q.x - p.x).abs() < 1e-6);
        prop_assert!((q.y - p.y).abs() < 1e-6);
    }

    #[test]
    fn normalized_length_is_one_or_zero(v in arb_vector()) {
        let n = v.normalized();
        let len = n.length();
        prop_assert!(len < 1e-9 || (len - 1.0).abs() < 1e-9);
    }

    #[test]
    fn circle_contains_center(c in arb_point(), r in 0.0f64..500.0) {
        prop_assert!(Circle::new(c, r).contains(c));
    }

    #[test]
    fn circle_boundary_intersections_on_both(
        cx in -100.0f64..100.0, cy in -100.0f64..100.0,
        dx in -100.0f64..100.0, dy in -100.0f64..100.0,
        r1 in 1.0f64..100.0, r2 in 1.0f64..100.0,
    ) {
        let a = Circle::new(Point::new(cx, cy), r1);
        let b = Circle::new(Point::new(cx + dx, cy + dy), r2);
        if let Some((p, q)) = a.boundary_intersections(&b) {
            for pt in [p, q] {
                prop_assert!((a.center.distance_to(pt) - a.radius).abs() < 1e-6);
                prop_assert!((b.center.distance_to(pt) - b.radius).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn rect_reflect_always_inside(x in -2000.0f64..2000.0, y in -2000.0f64..2000.0) {
        let region = Rect::square(450.0);
        let (p, _, _) = region.reflect(Point::new(x, y));
        prop_assert!(region.contains(p));
    }

    #[test]
    fn rect_clamp_idempotent(x in -2000.0f64..2000.0, y in -2000.0f64..2000.0) {
        let region = Rect::square(450.0);
        let once = region.clamp(Point::new(x, y));
        let twice = region.clamp(once);
        prop_assert_eq!(once, twice);
        prop_assert!(region.contains(once));
    }

    #[test]
    fn segment_point_at_distance_consistent(a in arb_point(), b in arb_point(), t in 0.0f64..1.0) {
        let s = Segment::new(a, b);
        let len = s.length();
        prop_assume!(len > 1e-6);
        let via_t = s.point_at(t);
        let via_d = s.point_at_distance(t * len);
        prop_assert!(via_t.distance_to(via_d) < 1e-6);
    }

    #[test]
    fn segment_distance_to_endpoint_never_exceeds(a in arb_point(), b in arb_point(), p in arb_point()) {
        let s = Segment::new(a, b);
        let d = s.distance_to_point(p);
        prop_assert!(d <= a.distance_to(p) + 1e-9);
        prop_assert!(d <= b.distance_to(p) + 1e-9);
    }

    #[test]
    fn grid_range_query_matches_brute_force(
        pts in proptest::collection::vec((0.0f64..450.0, 0.0f64..450.0), 1..120),
        qx in 0.0f64..450.0,
        qy in 0.0f64..450.0,
        r in 1.0f64..200.0,
    ) {
        let mut grid = SpatialGrid::new(Rect::square(450.0), 50.0).unwrap();
        for (i, &(x, y)) in pts.iter().enumerate() {
            grid.insert(i, Point::new(x, y));
        }
        let center = Point::new(qx, qy);
        let mut got: Vec<usize> = grid.query_range(center, r).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| center.distance_to(Point::new(x, y)) <= r)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_nearest_matches_brute_force(
        pts in proptest::collection::vec((0.0f64..450.0, 0.0f64..450.0), 1..120),
        qx in -100.0f64..550.0,
        qy in -100.0f64..550.0,
    ) {
        let mut grid = SpatialGrid::new(Rect::square(450.0), 50.0).unwrap();
        for (i, &(x, y)) in pts.iter().enumerate() {
            grid.insert(i, Point::new(x, y));
        }
        let target = Point::new(qx, qy);
        let got = grid.nearest(target).map(|(id, _)| id);
        prop_assert_eq!(got, brute_force_nearest(&pts, target, |_| true));
    }

    #[test]
    fn grid_nearest_handles_exact_ties_deterministically(
        cells in proptest::collection::vec((0usize..16, 0usize..16), 1..80),
        qcx in 0usize..16,
        qcy in 0usize..16,
    ) {
        // Snapping every coordinate to a 30 m lattice makes duplicate
        // positions and exactly equidistant symmetric pairs common, so the
        // smallest-distance-then-smallest-id tie-break is actually exercised.
        let pts: Vec<(f64, f64)> = cells
            .iter()
            .map(|&(cx, cy)| (cx as f64 * 30.0, cy as f64 * 30.0))
            .collect();
        let mut grid = SpatialGrid::new(Rect::square(450.0), 50.0).unwrap();
        for (i, &(x, y)) in pts.iter().enumerate() {
            grid.insert(i, Point::new(x, y));
        }
        let target = Point::new(qcx as f64 * 30.0, qcy as f64 * 30.0);
        let got = grid.nearest(target).map(|(id, _)| id);
        prop_assert_eq!(got, brute_force_nearest(&pts, target, |_| true));
    }

    #[test]
    fn grid_nearest_filtered_matches_brute_force(
        cells in proptest::collection::vec((0usize..16, 0usize..16), 1..80),
        qcx in 0usize..16,
        qcy in 0usize..16,
        keep_mod in 1usize..5,
    ) {
        let pts: Vec<(f64, f64)> = cells
            .iter()
            .map(|&(cx, cy)| (cx as f64 * 30.0, cy as f64 * 30.0))
            .collect();
        let mut grid = SpatialGrid::new(Rect::square(450.0), 50.0).unwrap();
        for (i, &(x, y)) in pts.iter().enumerate() {
            grid.insert(i, Point::new(x, y));
        }
        let target = Point::new(qcx as f64 * 30.0, qcy as f64 * 30.0);
        let keep = |id: usize| id % keep_mod == 0;
        let got = grid.nearest_filtered(target, keep).map(|(id, _)| id);
        prop_assert_eq!(got, brute_force_nearest(&pts, target, keep));
    }
}

/// Reference implementation for the nearest queries: linear scan with the
/// grid's documented tie-break (smallest squared distance, then smallest id).
fn brute_force_nearest(
    pts: &[(f64, f64)],
    target: Point,
    mut keep: impl FnMut(usize) -> bool,
) -> Option<usize> {
    pts.iter()
        .enumerate()
        .filter(|(i, _)| keep(*i))
        .min_by(|(i, &(ax, ay)), (j, &(bx, by))| {
            let da = target.distance_sq_to(Point::new(ax, ay));
            let db = target.distance_sq_to(Point::new(bx, by));
            da.total_cmp(&db).then(i.cmp(j))
        })
        .map(|(i, _)| i)
}
