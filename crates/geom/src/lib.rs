//! # wsn-geom
//!
//! Two-dimensional geometry primitives used throughout the MobiQuery
//! reproduction: points, vectors, circles (query areas and radio ranges),
//! rectangles (deployment regions), line segments (user paths) and a uniform
//! spatial grid used for fast neighbour queries over sensor deployments.
//!
//! All quantities are in metres unless stated otherwise. The types are small
//! `Copy` value types implementing the common traits recommended by the Rust
//! API guidelines so that they compose well with the rest of the workspace.
//!
//! ```
//! use wsn_geom::{Point, Circle};
//!
//! let user = Point::new(100.0, 50.0);
//! let query_area = Circle::new(user, 150.0);
//! assert!(query_area.contains(Point::new(120.0, 60.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod grid;
mod lattice;
mod point;
mod rect;
mod segment;
mod vector;

pub use circle::Circle;
pub use grid::{GridError, SpatialGrid};
pub use lattice::{DenseRaster, Lattice};
pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;
pub use vector::Vector;

/// The epsilon added to squared-distance comparisons against a squared
/// radius, absorbing the rounding of one f64 multiply-add so that points
/// sitting exactly on a boundary (lattice samples at a disk edge, nodes at
/// exactly `radius` from a query centre) classify consistently everywhere.
///
/// Every range predicate in the workspace — [`Circle::contains`], the
/// [`SpatialGrid`] range queries and the coverage raster in `wsn-power` —
/// must compare through [`coverage_threshold`] so this value can never drift
/// between implementations (a drift of one ULP is enough to flip a lattice
/// point between "covered" and "uncovered" and desynchronise the incremental
/// backbone repair from the reference election).
pub const COVERAGE_EPSILON: f64 = 1e-9;

/// The comparison value of the shared coverage predicate:
/// `radius² + COVERAGE_EPSILON`, the exact right-hand side every range check
/// in the workspace compares a squared distance against.
#[inline]
pub fn coverage_threshold(radius: f64) -> f64 {
    radius * radius + COVERAGE_EPSILON
}

/// The shared coverage predicate: is `point` within `radius` of `center`,
/// boundary inclusive up to [`COVERAGE_EPSILON`]?
///
/// This is the single definition of "a node at `center` covers `point`"
/// used by [`Circle::contains`], the [`SpatialGrid`] range queries and the
/// CCP coverage machinery in `wsn-power`; all of them are bit-identical by
/// construction because they all evaluate exactly this expression.
///
/// ```
/// use wsn_geom::{covers, Point};
///
/// assert!(covers(Point::new(0.0, 0.0), 50.0, Point::new(30.0, 40.0)));
/// assert!(!covers(Point::new(0.0, 0.0), 50.0, Point::new(30.1, 40.0)));
/// ```
#[inline]
pub fn covers(center: Point, radius: f64, point: Point) -> bool {
    center.distance_sq_to(point) <= coverage_threshold(radius)
}

/// Convenience constant: metres per second corresponding to one mile per hour.
pub const MPH_TO_MPS: f64 = 0.44704;

/// Converts a speed in metres per second to miles per hour.
///
/// The paper quotes prefetch-message speeds and the contention threshold `v*`
/// in miles per hour, so the analysis module needs this conversion.
///
/// ```
/// let mph = wsn_geom::mps_to_mph(4.0);
/// assert!((mph - 8.9477).abs() < 1e-3);
/// ```
pub fn mps_to_mph(mps: f64) -> f64 {
    mps / MPH_TO_MPS
}

/// Converts a speed in miles per hour to metres per second.
///
/// ```
/// let mps = wsn_geom::mph_to_mps(469.0);
/// assert!((mps - 209.66).abs() < 0.1);
/// ```
pub fn mph_to_mps(mph: f64) -> f64 {
    mph * MPH_TO_MPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_predicate_agrees_with_circle_and_grid() {
        let center = Point::new(10.0, 20.0);
        let r = 50.0;
        let circle = Circle::new(center, r);
        let mut grid = SpatialGrid::new(Rect::square(200.0), r).unwrap();
        // Probe points straddling the boundary, including the exact radius.
        for (i, p) in [
            Point::new(60.0, 20.0),               // exactly r away
            Point::new(60.0 + 1e-7, 20.0),        // just outside
            Point::new(59.999_999, 20.0),         // just inside
            Point::new(10.0 + 30.0, 20.0 + 40.0), // 3-4-5 on the boundary
            Point::new(10.0, 70.000_001),
        ]
        .into_iter()
        .enumerate()
        {
            grid.insert(i, p);
            let by_fn = covers(center, r, p);
            assert_eq!(by_fn, circle.contains(p), "circle disagrees at {p}");
            let by_grid = grid.query_range(center, r).any(|id| id == i);
            assert_eq!(by_fn, by_grid, "grid disagrees at {p}");
            grid.remove(i);
        }
    }

    #[test]
    fn mph_round_trip() {
        for v in [0.0, 1.0, 4.0, 20.0, 469.0] {
            assert!((mph_to_mps(mps_to_mph(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn walking_speed_is_about_nine_mph() {
        // The paper's example: a human walking at 4 m/s.
        assert!((mps_to_mph(4.0) - 8.95).abs() < 0.01);
    }
}
