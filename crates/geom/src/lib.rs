//! # wsn-geom
//!
//! Two-dimensional geometry primitives used throughout the MobiQuery
//! reproduction: points, vectors, circles (query areas and radio ranges),
//! rectangles (deployment regions), line segments (user paths) and a uniform
//! spatial grid used for fast neighbour queries over sensor deployments.
//!
//! All quantities are in metres unless stated otherwise. The types are small
//! `Copy` value types implementing the common traits recommended by the Rust
//! API guidelines so that they compose well with the rest of the workspace.
//!
//! ```
//! use wsn_geom::{Point, Circle};
//!
//! let user = Point::new(100.0, 50.0);
//! let query_area = Circle::new(user, 150.0);
//! assert!(query_area.contains(Point::new(120.0, 60.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod grid;
mod lattice;
mod point;
mod rect;
mod segment;
mod vector;

pub use circle::Circle;
pub use grid::{GridError, SpatialGrid};
pub use lattice::{DenseRaster, Lattice};
pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;
pub use vector::Vector;

/// Convenience constant: metres per second corresponding to one mile per hour.
pub const MPH_TO_MPS: f64 = 0.44704;

/// Converts a speed in metres per second to miles per hour.
///
/// The paper quotes prefetch-message speeds and the contention threshold `v*`
/// in miles per hour, so the analysis module needs this conversion.
///
/// ```
/// let mph = wsn_geom::mps_to_mph(4.0);
/// assert!((mph - 8.9477).abs() < 1e-3);
/// ```
pub fn mps_to_mph(mps: f64) -> f64 {
    mps / MPH_TO_MPS
}

/// Converts a speed in miles per hour to metres per second.
///
/// ```
/// let mps = wsn_geom::mph_to_mps(469.0);
/// assert!((mps - 209.66).abs() < 0.1);
/// ```
pub fn mph_to_mps(mph: f64) -> f64 {
    mph * MPH_TO_MPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mph_round_trip() {
        for v in [0.0, 1.0, 4.0, 20.0, 469.0] {
            assert!((mph_to_mps(mps_to_mph(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn walking_speed_is_about_nine_mph() {
        // The paper's example: a human walking at 4 m/s.
        assert!((mps_to_mph(4.0) - 8.95).abs() < 0.01);
    }
}
