//! A dense sample-point lattice over a rectangular region, plus a dense
//! per-point value raster on top of it.
//!
//! The CCP coverage check evaluates predicates on a regular lattice of sample
//! points anchored at the deployment region's origin. [`Lattice`] is the
//! canonical definition of that point set: point `(ix, iy)` sits at
//! `origin + (ix · spacing, iy · spacing)`, computed by *index
//! multiplication*, never by accumulating `+= spacing` — so every consumer
//! (the incremental coverage raster and the reference per-point
//! implementation alike) evaluates bit-identical coordinates for the same
//! logical sample point, whatever order it visits them in.
//!
//! [`DenseRaster`] pairs a lattice with one value per sample point in a flat
//! `Vec`, which is what makes per-point counters O(1) to read and update.

use crate::{GridError, Point, Rect};

/// A regular lattice of sample points covering a rectangle.
///
/// Points are spaced `spacing` apart along both axes, with the point at
/// index `(0, 0)` on the rectangle's minimum corner; indices grow rightwards
/// and upwards. Every point with `origin + i · spacing ≤ max` along both
/// axes is part of the lattice (boundaries inclusive).
///
/// ```
/// use wsn_geom::{Lattice, Point, Rect};
///
/// let lat = Lattice::new(Rect::square(10.0), 5.0)?;
/// assert_eq!((lat.cols(), lat.rows()), (3, 3));
/// assert_eq!(lat.point(2, 1), Point::new(10.0, 5.0));
/// # Ok::<(), wsn_geom::GridError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lattice {
    region: Rect,
    spacing: f64,
    cols: usize,
    rows: usize,
}

impl Lattice {
    /// Creates the lattice covering `region` with the given point spacing.
    ///
    /// # Errors
    ///
    /// Returns [`GridError`] if `spacing` is not strictly positive and finite.
    pub fn new(region: Rect, spacing: f64) -> Result<Self, GridError> {
        if !(spacing.is_finite() && spacing > 0.0) {
            return Err(GridError::new(
                "lattice spacing must be positive and finite",
            ));
        }
        let cols = (region.width() / spacing).floor() as usize + 1;
        let rows = (region.height() / spacing).floor() as usize + 1;
        Ok(Lattice {
            region,
            spacing,
            cols,
            rows,
        })
    }

    /// The region this lattice samples.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Distance between adjacent sample points.
    pub fn spacing(&self) -> f64 {
        self.spacing
    }

    /// Number of sample points along the x axis.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of sample points along the y axis.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of sample points.
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// Returns `true` when the lattice has no sample points (never the case
    /// for a successfully constructed lattice, but part of the `len`/`is_empty`
    /// API-guideline pair).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinates of sample point `(ix, iy)`.
    ///
    /// Computed as `origin + index · spacing` in one multiplication per axis,
    /// the canonical (bit-reproducible) definition of the point set.
    pub fn point(&self, ix: usize, iy: usize) -> Point {
        Point::new(
            self.region.min_x + ix as f64 * self.spacing,
            self.region.min_y + iy as f64 * self.spacing,
        )
    }

    /// Flat index of sample point `(ix, iy)` (row-major).
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.cols && iy < self.rows);
        iy * self.cols + ix
    }

    /// Inclusive column-index range of sample points whose x coordinate lies
    /// in `[min_x, max_x]`, clipped to the lattice. `None` when the interval
    /// misses every column.
    pub fn col_range(&self, min_x: f64, max_x: f64) -> Option<(usize, usize)> {
        Self::axis_range(min_x, max_x, self.region.min_x, self.spacing, self.cols)
    }

    /// Inclusive row-index range of sample points whose y coordinate lies in
    /// `[min_y, max_y]`, clipped to the lattice. `None` when the interval
    /// misses every row.
    pub fn row_range(&self, min_y: f64, max_y: f64) -> Option<(usize, usize)> {
        Self::axis_range(min_y, max_y, self.region.min_y, self.spacing, self.rows)
    }

    fn axis_range(
        min_v: f64,
        max_v: f64,
        origin: f64,
        spacing: f64,
        count: usize,
    ) -> Option<(usize, usize)> {
        if max_v < min_v || max_v < origin {
            return None;
        }
        let lo = ((min_v - origin) / spacing).ceil().max(0.0) as usize;
        let hi_f = ((max_v - origin) / spacing).floor();
        if hi_f < 0.0 {
            return None;
        }
        let hi = (hi_f as usize).min(count - 1);
        if lo > hi {
            return None;
        }
        Some((lo, hi))
    }
}

/// One value per sample point of a [`Lattice`], stored densely.
///
/// ```
/// use wsn_geom::{DenseRaster, Lattice, Rect};
///
/// let lat = Lattice::new(Rect::square(10.0), 5.0)?;
/// let mut counts: DenseRaster<u32> = DenseRaster::new(lat);
/// *counts.get_mut(1, 2) += 1;
/// assert_eq!(counts.get(1, 2), 1);
/// assert_eq!(counts.get(0, 0), 0);
/// # Ok::<(), wsn_geom::GridError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DenseRaster<T> {
    lattice: Lattice,
    values: Vec<T>,
}

impl<T: Copy + Default> DenseRaster<T> {
    /// Creates a raster over `lattice` with every value defaulted.
    pub fn new(lattice: Lattice) -> Self {
        DenseRaster {
            lattice,
            values: vec![T::default(); lattice.len()],
        }
    }

    /// The underlying lattice geometry.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Value at sample point `(ix, iy)`.
    pub fn get(&self, ix: usize, iy: usize) -> T {
        self.values[self.lattice.index(ix, iy)]
    }

    /// Mutable value at sample point `(ix, iy)`.
    pub fn get_mut(&mut self, ix: usize, iy: usize) -> &mut T {
        let idx = self.lattice.index(ix, iy);
        &mut self.values[idx]
    }

    /// The whole row `iy` as a slice, columns `0..cols`.
    pub fn row(&self, iy: usize) -> &[T] {
        let start = self.lattice.index(0, iy);
        &self.values[start..start + self.lattice.cols()]
    }

    /// The whole row `iy` as a mutable slice.
    pub fn row_mut(&mut self, iy: usize) -> &mut [T] {
        let start = self.lattice.index(0, iy);
        let cols = self.lattice.cols();
        &mut self.values[start..start + cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_spacing_is_an_error() {
        assert!(Lattice::new(Rect::square(10.0), 0.0).is_err());
        assert!(Lattice::new(Rect::square(10.0), -1.0).is_err());
        assert!(Lattice::new(Rect::square(10.0), f64::NAN).is_err());
        assert!(Lattice::new(Rect::square(10.0), f64::INFINITY).is_err());
    }

    #[test]
    fn boundaries_are_inclusive() {
        let lat = Lattice::new(Rect::square(10.0), 5.0).unwrap();
        assert_eq!(lat.cols(), 3);
        assert_eq!(lat.rows(), 3);
        assert_eq!(lat.len(), 9);
        assert_eq!(lat.point(0, 0), Point::new(0.0, 0.0));
        assert_eq!(lat.point(2, 2), Point::new(10.0, 10.0));
    }

    #[test]
    fn spacing_wider_than_region_keeps_the_origin_point() {
        let lat = Lattice::new(Rect::square(3.0), 10.0).unwrap();
        assert_eq!((lat.cols(), lat.rows()), (1, 1));
        assert_eq!(lat.point(0, 0), Point::new(0.0, 0.0));
    }

    #[test]
    fn matches_the_legacy_accumulation_enumeration() {
        // The CCP reference used to enumerate sample points by `x += spacing`
        // from an aligned start; the lattice must produce the same set.
        let region = Rect::new(-3.0, 2.0, 47.0, 33.0);
        let spacing = 2.5;
        let lat = Lattice::new(region, spacing).unwrap();
        let mut legacy = Vec::new();
        let mut y = region.min_y;
        while y <= region.max_y {
            let mut x = region.min_x;
            while x <= region.max_x {
                legacy.push(Point::new(x, y));
                x += spacing;
            }
            y += spacing;
        }
        let mut ours = Vec::new();
        for iy in 0..lat.rows() {
            for ix in 0..lat.cols() {
                ours.push(lat.point(ix, iy));
            }
        }
        assert_eq!(ours, legacy);
    }

    #[test]
    fn col_range_clips_to_the_lattice() {
        let lat = Lattice::new(Rect::square(20.0), 5.0).unwrap(); // cols at 0,5,10,15,20
        assert_eq!(lat.col_range(-100.0, 100.0), Some((0, 4)));
        assert_eq!(lat.col_range(5.0, 15.0), Some((1, 3)));
        assert_eq!(lat.col_range(5.1, 14.9), Some((2, 2)));
        assert_eq!(lat.col_range(5.1, 9.9), None);
        assert_eq!(lat.col_range(-10.0, -1.0), None);
        assert_eq!(lat.col_range(21.0, 30.0), None);
        assert_eq!(lat.col_range(30.0, 21.0), None);
    }

    #[test]
    fn range_matches_the_legacy_aligned_while_loop() {
        // The reference's `align` + `while v <= max` idiom and `col_range`
        // must select the same columns for arbitrary real intervals.
        let region = Rect::square(100.0);
        let spacing = 2.5;
        let lat = Lattice::new(region, spacing).unwrap();
        let mut state: u64 = 99;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 120.0 - 10.0
        };
        for _ in 0..200 {
            let (a, b) = (next(), next());
            let (min_v, max_v) = if a <= b { (a, b) } else { (b, a) };
            let min_v = min_v.max(region.min_x);
            let max_v = max_v.min(region.max_x);
            let mut legacy = Vec::new();
            if min_v <= max_v {
                let start = region.min_x + ((min_v - region.min_x) / spacing).ceil() * spacing;
                let mut v = start;
                while v <= max_v {
                    legacy.push(v);
                    v += spacing;
                }
            }
            let ours: Vec<f64> = match lat.col_range(min_v, max_v) {
                None => Vec::new(),
                Some((lo, hi)) => (lo..=hi).map(|ix| lat.point(ix, 0).x).collect(),
            };
            assert_eq!(ours, legacy, "interval [{min_v}, {max_v}]");
        }
    }

    #[test]
    fn dense_raster_reads_and_writes_per_point() {
        let lat = Lattice::new(Rect::square(10.0), 5.0).unwrap();
        let mut r: DenseRaster<u32> = DenseRaster::new(lat);
        for iy in 0..lat.rows() {
            for ix in 0..lat.cols() {
                *r.get_mut(ix, iy) += (ix + iy) as u32;
            }
        }
        assert_eq!(r.get(2, 1), 3);
        assert_eq!(r.row(1), &[1, 2, 3]);
        r.row_mut(1)[0] = 9;
        assert_eq!(r.get(0, 1), 9);
    }
}
