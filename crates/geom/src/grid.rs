//! A uniform spatial hash grid for fast range queries over node positions.

use crate::{Circle, Point, Rect};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error returned when constructing a [`SpatialGrid`] with an invalid cell size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError {
    kind: &'static str,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spatial grid parameter: {}", self.kind)
    }
}

impl Error for GridError {}

/// A uniform grid (spatial hash) over a rectangular region that buckets
/// items by position.
///
/// The wireless channel model asks "which nodes are within communication
/// range of node *n*?" for every transmission; with 200 nodes a linear scan
/// would be acceptable, but the grid keeps the simulator comfortably fast for
/// the larger deployments exercised in the benchmarks (thousands of nodes).
///
/// Items are identified by a caller-chosen `usize` id (node index).
///
/// ```
/// use wsn_geom::{Point, Rect, SpatialGrid};
///
/// let mut grid = SpatialGrid::new(Rect::square(450.0), 105.0)?;
/// grid.insert(0, Point::new(10.0, 10.0));
/// grid.insert(1, Point::new(50.0, 10.0));
/// grid.insert(2, Point::new(400.0, 400.0));
/// let near: Vec<usize> = grid.query_range(Point::new(0.0, 0.0), 100.0).collect();
/// assert!(near.contains(&0) && near.contains(&1) && !near.contains(&2));
/// # Ok::<(), wsn_geom::GridError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    region: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<(usize, Point)>>,
    positions: HashMap<usize, Point>,
}

impl SpatialGrid {
    /// Creates an empty grid over `region` with square cells of side `cell_size`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError`] if `cell_size` is not strictly positive and finite.
    pub fn new(region: Rect, cell_size: f64) -> Result<Self, GridError> {
        if !(cell_size.is_finite() && cell_size > 0.0) {
            return Err(GridError {
                kind: "cell size must be positive and finite",
            });
        }
        let cols = (region.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (region.height() / cell_size).ceil().max(1.0) as usize;
        Ok(SpatialGrid {
            region,
            cell: cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            positions: HashMap::new(),
        })
    }

    /// Number of items stored in the grid.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when the grid holds no items.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The region this grid covers.
    pub fn region(&self) -> Rect {
        self.region
    }

    fn cell_index(&self, p: Point) -> usize {
        let clamped = self.region.clamp(p);
        let cx = (((clamped.x - self.region.min_x) / self.cell) as usize).min(self.cols - 1);
        let cy = (((clamped.y - self.region.min_y) / self.cell) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Inserts an item, or moves it if it is already present.
    pub fn insert(&mut self, id: usize, position: Point) {
        if self.positions.contains_key(&id) {
            self.remove(id);
        }
        let idx = self.cell_index(position);
        self.cells[idx].push((id, position));
        self.positions.insert(id, position);
    }

    /// Removes an item. Returns its last position if it was present.
    pub fn remove(&mut self, id: usize) -> Option<Point> {
        let pos = self.positions.remove(&id)?;
        let idx = self.cell_index(pos);
        self.cells[idx].retain(|(other, _)| *other != id);
        Some(pos)
    }

    /// Position of an item, if present.
    pub fn position(&self, id: usize) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    /// Iterator over the ids of all items within `radius` of `center`
    /// (inclusive of the boundary).
    pub fn query_range(&self, center: Point, radius: f64) -> impl Iterator<Item = usize> + '_ {
        self.query_range_with_pos(center, radius).map(|(id, _)| id)
    }

    /// Iterator over `(id, position)` of all items within `radius` of `center`.
    pub fn query_range_with_pos(
        &self,
        center: Point,
        radius: f64,
    ) -> impl Iterator<Item = (usize, Point)> + '_ {
        let r = radius.max(0.0);
        let min_cx = (((center.x - r - self.region.min_x) / self.cell)
            .floor()
            .max(0.0)) as usize;
        let max_cx = (((center.x + r - self.region.min_x) / self.cell)
            .floor()
            .max(0.0) as usize)
            .min(self.cols - 1);
        let min_cy = (((center.y - r - self.region.min_y) / self.cell)
            .floor()
            .max(0.0)) as usize;
        let max_cy = (((center.y + r - self.region.min_y) / self.cell)
            .floor()
            .max(0.0) as usize)
            .min(self.rows - 1);
        let min_cx = min_cx.min(self.cols - 1);
        let min_cy = min_cy.min(self.rows - 1);
        let r_sq = r * r;
        (min_cy..=max_cy)
            .flat_map(move |cy| (min_cx..=max_cx).map(move |cx| cy * self.cols + cx))
            .flat_map(move |idx| self.cells[idx].iter().copied())
            .filter(move |(_, p)| center.distance_sq_to(*p) <= r_sq + 1e-9)
    }

    /// Iterator over the ids of all items inside the given circle.
    pub fn query_circle(&self, circle: Circle) -> impl Iterator<Item = usize> + '_ {
        self.query_range(circle.center, circle.radius)
    }

    /// Id and position of the item nearest to `target`, if any.
    pub fn nearest(&self, target: Point) -> Option<(usize, Point)> {
        // Simple approach: expand the search radius until something is found,
        // falling back to a full scan. The grid is small enough that the full
        // scan fallback is cheap and keeps the logic obviously correct.
        let mut best: Option<(usize, Point)> = None;
        let mut best_d = f64::INFINITY;
        for (&id, &pos) in &self.positions {
            let d = target.distance_sq_to(pos);
            if d < best_d {
                best_d = d;
                best = Some((id, pos));
            }
        }
        best
    }

    /// Iterator over every `(id, position)` pair in the grid, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Point)> + '_ {
        self.positions.iter().map(|(&id, &p)| (id, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_points(points: &[(usize, Point)]) -> SpatialGrid {
        let mut g = SpatialGrid::new(Rect::square(450.0), 105.0).unwrap();
        for &(id, p) in points {
            g.insert(id, p);
        }
        g
    }

    #[test]
    fn invalid_cell_size_is_an_error() {
        assert!(SpatialGrid::new(Rect::square(10.0), 0.0).is_err());
        assert!(SpatialGrid::new(Rect::square(10.0), f64::NAN).is_err());
        assert!(SpatialGrid::new(Rect::square(10.0), -5.0).is_err());
    }

    #[test]
    fn insert_query_remove_round_trip() {
        let mut g = grid_with_points(&[(7, Point::new(10.0, 10.0))]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(7), Some(Point::new(10.0, 10.0)));
        assert_eq!(g.remove(7), Some(Point::new(10.0, 10.0)));
        assert!(g.is_empty());
        assert_eq!(g.remove(7), None);
    }

    #[test]
    fn reinsert_moves_item() {
        let mut g = grid_with_points(&[(3, Point::new(10.0, 10.0))]);
        g.insert(3, Point::new(400.0, 400.0));
        assert_eq!(g.len(), 1);
        let found: Vec<_> = g.query_range(Point::new(400.0, 400.0), 5.0).collect();
        assert_eq!(found, vec![3]);
        assert_eq!(g.query_range(Point::new(10.0, 10.0), 5.0).count(), 0);
    }

    #[test]
    fn range_query_matches_brute_force() {
        // Deterministic pseudo-random points via a simple LCG so this test
        // does not need the rand crate at build time.
        let mut state: u64 = 0x1234_5678;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 450.0
        };
        let pts: Vec<(usize, Point)> = (0..300).map(|i| (i, Point::new(next(), next()))).collect();
        let g = grid_with_points(&pts);
        let center = Point::new(200.0, 220.0);
        let radius = 105.0;
        let mut from_grid: Vec<usize> = g.query_range(center, radius).collect();
        from_grid.sort_unstable();
        let mut brute: Vec<usize> = pts
            .iter()
            .filter(|(_, p)| center.distance_to(*p) <= radius)
            .map(|(i, _)| *i)
            .collect();
        brute.sort_unstable();
        assert_eq!(from_grid, brute);
    }

    #[test]
    fn query_outside_region_is_safe() {
        let g = grid_with_points(&[(0, Point::new(5.0, 5.0))]);
        // Query centred far outside the region must not panic and still finds
        // nothing (or the clamped cell's contents filtered by distance).
        assert_eq!(g.query_range(Point::new(-1000.0, -1000.0), 10.0).count(), 0);
        assert_eq!(
            g.query_range(Point::new(10_000.0, 10_000.0), 10.0).count(),
            0
        );
    }

    #[test]
    fn nearest_returns_closest() {
        let g = grid_with_points(&[
            (0, Point::new(10.0, 10.0)),
            (1, Point::new(100.0, 100.0)),
            (2, Point::new(440.0, 440.0)),
        ]);
        assert_eq!(g.nearest(Point::new(95.0, 95.0)).unwrap().0, 1);
        assert_eq!(g.nearest(Point::new(0.0, 0.0)).unwrap().0, 0);
    }

    #[test]
    fn nearest_on_empty_grid_is_none() {
        let g = SpatialGrid::new(Rect::square(10.0), 1.0).unwrap();
        assert!(g.nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn query_circle_equivalent_to_query_range() {
        let g = grid_with_points(&[(0, Point::new(50.0, 50.0)), (1, Point::new(300.0, 300.0))]);
        let c = Circle::new(Point::new(40.0, 40.0), 30.0);
        let a: Vec<_> = g.query_circle(c).collect();
        let b: Vec<_> = g.query_range(c.center, c.radius).collect();
        assert_eq!(a, b);
    }
}
