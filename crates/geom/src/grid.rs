//! A uniform spatial hash grid for fast range queries over node positions.

use crate::{Circle, Point, Rect};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error returned when constructing a [`SpatialGrid`] with an invalid cell size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError {
    kind: &'static str,
}

impl GridError {
    /// Creates an error with the given description (shared with the other
    /// grid-like structures in this crate, e.g. [`crate::Lattice`]).
    pub(crate) fn new(kind: &'static str) -> Self {
        GridError { kind }
    }
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spatial grid parameter: {}", self.kind)
    }
}

impl Error for GridError {}

/// A uniform grid (spatial hash) over a rectangular region that buckets
/// items by position.
///
/// The wireless channel model asks "which nodes are within communication
/// range of node *n*?" for every transmission; with 200 nodes a linear scan
/// would be acceptable, but the grid keeps the simulator comfortably fast for
/// the larger deployments exercised in the benchmarks (thousands of nodes).
///
/// Items are identified by a caller-chosen `usize` id (node index).
///
/// ```
/// use wsn_geom::{Point, Rect, SpatialGrid};
///
/// let mut grid = SpatialGrid::new(Rect::square(450.0), 105.0)?;
/// grid.insert(0, Point::new(10.0, 10.0));
/// grid.insert(1, Point::new(50.0, 10.0));
/// grid.insert(2, Point::new(400.0, 400.0));
/// let near: Vec<usize> = grid.query_range(Point::new(0.0, 0.0), 100.0).collect();
/// assert!(near.contains(&0) && near.contains(&1) && !near.contains(&2));
/// # Ok::<(), wsn_geom::GridError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    region: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<(usize, Point)>>,
    positions: HashMap<usize, Point>,
}

impl SpatialGrid {
    /// Creates an empty grid over `region` with square cells of side `cell_size`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError`] if `cell_size` is not strictly positive and finite.
    pub fn new(region: Rect, cell_size: f64) -> Result<Self, GridError> {
        if !(cell_size.is_finite() && cell_size > 0.0) {
            return Err(GridError {
                kind: "cell size must be positive and finite",
            });
        }
        let cols = (region.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (region.height() / cell_size).ceil().max(1.0) as usize;
        Ok(SpatialGrid {
            region,
            cell: cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            positions: HashMap::new(),
        })
    }

    /// Number of items stored in the grid.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when the grid holds no items.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The region this grid covers.
    pub fn region(&self) -> Rect {
        self.region
    }

    fn cell_index(&self, p: Point) -> usize {
        let clamped = self.region.clamp(p);
        let cx = (((clamped.x - self.region.min_x) / self.cell) as usize).min(self.cols - 1);
        let cy = (((clamped.y - self.region.min_y) / self.cell) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Reserves capacity for at least `additional` more items, so bulk loads
    /// (one insert per node of a deployment) do not rehash repeatedly.
    pub fn reserve(&mut self, additional: usize) {
        self.positions.reserve(additional);
    }

    /// Inserts an item, or moves it if it is already present.
    pub fn insert(&mut self, id: usize, position: Point) {
        if let Some(prev) = self.positions.insert(id, position) {
            let idx = self.cell_index(prev);
            self.cells[idx].retain(|(other, _)| *other != id);
        }
        let idx = self.cell_index(position);
        self.cells[idx].push((id, position));
    }

    /// Removes an item. Returns its last position if it was present.
    pub fn remove(&mut self, id: usize) -> Option<Point> {
        let pos = self.positions.remove(&id)?;
        let idx = self.cell_index(pos);
        self.cells[idx].retain(|(other, _)| *other != id);
        Some(pos)
    }

    /// Position of an item, if present.
    pub fn position(&self, id: usize) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    /// Iterator over the ids of all items within `radius` of `center`
    /// (inclusive of the boundary).
    pub fn query_range(&self, center: Point, radius: f64) -> impl Iterator<Item = usize> + '_ {
        self.query_range_with_pos(center, radius).map(|(id, _)| id)
    }

    /// Iterator over `(id, position)` of all items within `radius` of `center`.
    pub fn query_range_with_pos(
        &self,
        center: Point,
        radius: f64,
    ) -> impl Iterator<Item = (usize, Point)> + '_ {
        let r = radius.max(0.0);
        let min_cx = (((center.x - r - self.region.min_x) / self.cell)
            .floor()
            .max(0.0)) as usize;
        let max_cx = (((center.x + r - self.region.min_x) / self.cell)
            .floor()
            .max(0.0) as usize)
            .min(self.cols - 1);
        let min_cy = (((center.y - r - self.region.min_y) / self.cell)
            .floor()
            .max(0.0)) as usize;
        let max_cy = (((center.y + r - self.region.min_y) / self.cell)
            .floor()
            .max(0.0) as usize)
            .min(self.rows - 1);
        let min_cx = min_cx.min(self.cols - 1);
        let min_cy = min_cy.min(self.rows - 1);
        // The shared coverage predicate (same threshold as Circle::contains
        // and the wsn-power coverage raster), hoisted out of the loop.
        let r2e = crate::coverage_threshold(r);
        (min_cy..=max_cy)
            .flat_map(move |cy| (min_cx..=max_cx).map(move |cx| cy * self.cols + cx))
            .flat_map(move |idx| self.cells[idx].iter().copied())
            .filter(move |(_, p)| center.distance_sq_to(*p) <= r2e)
    }

    /// Iterator over the ids of all items inside the given circle.
    pub fn query_circle(&self, circle: Circle) -> impl Iterator<Item = usize> + '_ {
        self.query_range(circle.center, circle.radius)
    }

    /// Id and position of the item nearest to `target`, if any.
    ///
    /// Ties (identical squared distance) resolve to the smallest id, so the
    /// result is deterministic regardless of insertion order. Cost is an
    /// expanding-ring search over grid cells: O(items near `target`) instead
    /// of O(all items), which is what keeps per-query lookups flat as
    /// deployments grow to tens of thousands of nodes.
    pub fn nearest(&self, target: Point) -> Option<(usize, Point)> {
        self.nearest_filtered(target, |_| true)
    }

    /// Id and position of the nearest item for which `filter` returns `true`,
    /// if any. Same tie-break contract as [`nearest`](Self::nearest):
    /// smallest squared distance, then smallest id.
    ///
    /// The search visits cells in expanding Chebyshev rings around the
    /// target's cell and stops as soon as no unvisited ring can contain a
    /// closer item, so a filter that accepts items near `target` makes the
    /// lookup effectively O(1) in the total item count.
    pub fn nearest_filtered(
        &self,
        target: Point,
        mut filter: impl FnMut(usize) -> bool,
    ) -> Option<(usize, Point)> {
        if self.positions.is_empty() {
            return None;
        }
        // Cell containing the target (clamped into the region). For targets
        // outside the region the clamped point is no farther from any stored
        // item than the target is, so ring lower bounds below remain valid.
        let clamped = self.region.clamp(target);
        let tcx = (((clamped.x - self.region.min_x) / self.cell) as usize).min(self.cols - 1);
        let tcy = (((clamped.y - self.region.min_y) / self.cell) as usize).min(self.rows - 1);

        let mut best: Option<(usize, Point)> = None;
        let mut best_d = f64::INFINITY;
        // Enough rings to cover every cell from any starting cell.
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            if best.is_some() {
                // Any item in an unvisited cell of this ring sits at least
                // (ring - 1) whole cells away along some axis.
                let ring_min = (ring as f64 - 1.0).max(0.0) * self.cell;
                if ring_min * ring_min > best_d {
                    break;
                }
            }
            self.scan_ring(tcx, tcy, ring, |id, pos| {
                if !filter(id) {
                    return;
                }
                let d = target.distance_sq_to(pos);
                let better = match best {
                    None => true,
                    Some((best_id, _)) => d < best_d || (d == best_d && id < best_id),
                };
                if better {
                    best_d = d;
                    best = Some((id, pos));
                }
            });
        }
        best
    }

    /// Calls `visit` for every item in the cells at Chebyshev distance `ring`
    /// from cell `(tcx, tcy)`, skipping cells outside the grid. Rings are
    /// disjoint, so repeated calls with increasing `ring` visit each item at
    /// most once.
    fn scan_ring(&self, tcx: usize, tcy: usize, ring: usize, mut visit: impl FnMut(usize, Point)) {
        let (tcx, tcy, r) = (tcx as isize, tcy as isize, ring as isize);
        let mut scan_cell = |cx: isize, cy: isize| {
            if cx < 0 || cy < 0 || cx >= self.cols as isize || cy >= self.rows as isize {
                return;
            }
            for &(id, pos) in &self.cells[cy as usize * self.cols + cx as usize] {
                visit(id, pos);
            }
        };
        if ring == 0 {
            scan_cell(tcx, tcy);
            return;
        }
        for cx in (tcx - r)..=(tcx + r) {
            scan_cell(cx, tcy - r);
            scan_cell(cx, tcy + r);
        }
        for cy in (tcy - r + 1)..=(tcy + r - 1) {
            scan_cell(tcx - r, cy);
            scan_cell(tcx + r, cy);
        }
    }

    /// Iterator over every `(id, position)` pair in the grid, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Point)> + '_ {
        self.positions.iter().map(|(&id, &p)| (id, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_points(points: &[(usize, Point)]) -> SpatialGrid {
        let mut g = SpatialGrid::new(Rect::square(450.0), 105.0).unwrap();
        for &(id, p) in points {
            g.insert(id, p);
        }
        g
    }

    #[test]
    fn invalid_cell_size_is_an_error() {
        assert!(SpatialGrid::new(Rect::square(10.0), 0.0).is_err());
        assert!(SpatialGrid::new(Rect::square(10.0), f64::NAN).is_err());
        assert!(SpatialGrid::new(Rect::square(10.0), -5.0).is_err());
    }

    #[test]
    fn insert_query_remove_round_trip() {
        let mut g = grid_with_points(&[(7, Point::new(10.0, 10.0))]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(7), Some(Point::new(10.0, 10.0)));
        assert_eq!(g.remove(7), Some(Point::new(10.0, 10.0)));
        assert!(g.is_empty());
        assert_eq!(g.remove(7), None);
    }

    #[test]
    fn reinsert_moves_item() {
        let mut g = grid_with_points(&[(3, Point::new(10.0, 10.0))]);
        g.insert(3, Point::new(400.0, 400.0));
        assert_eq!(g.len(), 1);
        let found: Vec<_> = g.query_range(Point::new(400.0, 400.0), 5.0).collect();
        assert_eq!(found, vec![3]);
        assert_eq!(g.query_range(Point::new(10.0, 10.0), 5.0).count(), 0);
    }

    #[test]
    fn range_query_matches_brute_force() {
        // Deterministic pseudo-random points via a simple LCG so this test
        // does not need the rand crate at build time.
        let mut state: u64 = 0x1234_5678;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 450.0
        };
        let pts: Vec<(usize, Point)> = (0..300).map(|i| (i, Point::new(next(), next()))).collect();
        let g = grid_with_points(&pts);
        let center = Point::new(200.0, 220.0);
        let radius = 105.0;
        let mut from_grid: Vec<usize> = g.query_range(center, radius).collect();
        from_grid.sort_unstable();
        let mut brute: Vec<usize> = pts
            .iter()
            .filter(|(_, p)| center.distance_to(*p) <= radius)
            .map(|(i, _)| *i)
            .collect();
        brute.sort_unstable();
        assert_eq!(from_grid, brute);
    }

    #[test]
    fn query_outside_region_is_safe() {
        let g = grid_with_points(&[(0, Point::new(5.0, 5.0))]);
        // Query centred far outside the region must not panic and still finds
        // nothing (or the clamped cell's contents filtered by distance).
        assert_eq!(g.query_range(Point::new(-1000.0, -1000.0), 10.0).count(), 0);
        assert_eq!(
            g.query_range(Point::new(10_000.0, 10_000.0), 10.0).count(),
            0
        );
    }

    #[test]
    fn nearest_returns_closest() {
        let g = grid_with_points(&[
            (0, Point::new(10.0, 10.0)),
            (1, Point::new(100.0, 100.0)),
            (2, Point::new(440.0, 440.0)),
        ]);
        assert_eq!(g.nearest(Point::new(95.0, 95.0)).unwrap().0, 1);
        assert_eq!(g.nearest(Point::new(0.0, 0.0)).unwrap().0, 0);
    }

    #[test]
    fn nearest_on_empty_grid_is_none() {
        let g = SpatialGrid::new(Rect::square(10.0), 1.0).unwrap();
        assert!(g.nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn nearest_breaks_exact_ties_by_smallest_id() {
        // Two items at the same position, and a symmetric pair equidistant
        // from the probe: the smaller id must win in both cases.
        let g = grid_with_points(&[
            (9, Point::new(100.0, 100.0)),
            (4, Point::new(100.0, 100.0)),
            (7, Point::new(200.0, 210.0)),
            (2, Point::new(200.0, 190.0)),
        ]);
        assert_eq!(g.nearest(Point::new(101.0, 101.0)).unwrap().0, 4);
        assert_eq!(g.nearest(Point::new(200.0, 200.0)).unwrap().0, 2);
    }

    #[test]
    fn nearest_crosses_cell_boundaries() {
        // With 105 m cells, id 0 lives in the probe's cell and id 1 in the
        // next cell over. A probe near the shared boundary is closer to id 1,
        // so the search must keep expanding past a ring that already holds a
        // candidate.
        let g = grid_with_points(&[(0, Point::new(100.0, 10.0)), (1, Point::new(106.0, 10.0))]);
        assert_eq!(g.nearest(Point::new(5.0, 10.0)).unwrap().0, 0);
        assert_eq!(g.nearest(Point::new(104.99, 10.0)).unwrap().0, 1);
    }

    #[test]
    fn nearest_far_outside_region_still_finds_items() {
        let g = grid_with_points(&[(3, Point::new(10.0, 10.0)), (5, Point::new(440.0, 440.0))]);
        assert_eq!(g.nearest(Point::new(-5000.0, -5000.0)).unwrap().0, 3);
        assert_eq!(g.nearest(Point::new(9000.0, 9000.0)).unwrap().0, 5);
    }

    #[test]
    fn nearest_filtered_skips_rejected_items() {
        let g = grid_with_points(&[
            (0, Point::new(50.0, 50.0)),
            (1, Point::new(60.0, 50.0)),
            (2, Point::new(400.0, 400.0)),
        ]);
        let p = Point::new(49.0, 50.0);
        assert_eq!(g.nearest_filtered(p, |_| true).unwrap().0, 0);
        assert_eq!(g.nearest_filtered(p, |id| id != 0).unwrap().0, 1);
        assert_eq!(g.nearest_filtered(p, |id| id == 2).unwrap().0, 2);
        assert!(g.nearest_filtered(p, |_| false).is_none());
    }

    #[test]
    fn query_circle_equivalent_to_query_range() {
        let g = grid_with_points(&[(0, Point::new(50.0, 50.0)), (1, Point::new(300.0, 300.0))]);
        let c = Circle::new(Point::new(40.0, 40.0), 30.0);
        let a: Vec<_> = g.query_circle(c).collect();
        let b: Vec<_> = g.query_range(c.center, c.radius).collect();
        assert_eq!(a, b);
    }
}
