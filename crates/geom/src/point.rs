//! Points in the 2-D plane.

use crate::Vector;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A location in the 2-D plane, in metres.
///
/// Points are the positions of sensor nodes, the mobile user, pickup points
/// and GPS fixes. Subtraction of two points yields a [`Vector`]; adding a
/// [`Vector`] to a point translates it.
///
/// ```
/// use wsn_geom::{Point, Vector};
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// assert_eq!(b - a, Vector::new(3.0, 4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance_to(self, other: Point) -> f64 {
        (self - other).length()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Cheaper than [`Point::distance_to`] when only comparisons are needed
    /// (e.g. nearest-neighbour searches in routing).
    pub fn distance_sq_to(self, other: Point) -> f64 {
        (self - other).length_sq()
    }

    /// The point mid-way between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other` (at `t = 1`).
    ///
    /// `t` is not clamped: values outside `[0, 1]` extrapolate along the line,
    /// which is exactly what dead-reckoning a motion profile requires.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Translates the point by a velocity vector applied for `dt` seconds.
    pub fn advance(self, velocity: Vector, dt: f64) -> Point {
        self + velocity * dt
    }

    /// Returns `true` when both coordinates are finite (not NaN or infinite).
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl Sub for Point {
    type Output = Vector;

    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;

    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;

    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vector> for Point {
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-4.0, 7.5);
        assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(12.5, -3.0);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 4.0);
        let m = a.midpoint(b);
        assert!((m.distance_to(a) - m.distance_to(b)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(5.0, -3.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn advance_moves_along_velocity() {
        let p = Point::new(0.0, 0.0);
        let v = Vector::new(3.0, -4.0);
        let q = p.advance(v, 2.0);
        assert_eq!(q, Point::new(6.0, -8.0));
    }

    #[test]
    fn add_sub_round_trip() {
        let p = Point::new(2.0, 3.0);
        let v = Vector::new(-1.0, 4.0);
        assert_eq!((p + v) - v, p);
    }

    #[test]
    fn tuple_conversions() {
        let p: Point = (1.5, 2.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, 2.5));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
