//! Displacement / velocity vectors in the 2-D plane.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D displacement or velocity vector.
///
/// Used to represent user velocities in motion profiles (metres per second)
/// and displacements between points (metres).
///
/// ```
/// use wsn_geom::Vector;
///
/// let v = Vector::new(3.0, 4.0);
/// assert_eq!(v.length(), 5.0);
/// assert!((v.normalized().length() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vector {
    /// The zero vector.
    pub const ZERO: Vector = Vector { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Creates a unit vector pointing in direction `angle` (radians,
    /// measured counter-clockwise from the positive x-axis).
    pub fn from_angle(angle: f64) -> Self {
        Vector::new(angle.cos(), angle.sin())
    }

    /// Creates a velocity vector with the given speed and heading.
    pub fn from_speed_angle(speed: f64, angle: f64) -> Self {
        Vector::from_angle(angle) * speed
    }

    /// Euclidean length (magnitude).
    pub fn length(self) -> f64 {
        self.length_sq().sqrt()
    }

    /// Squared Euclidean length.
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with another vector.
    pub fn dot(self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the z component of the 3-D cross product).
    pub fn cross(self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The heading of the vector in radians in `(-π, π]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Returns a vector with the same direction and unit length.
    ///
    /// Returns [`Vector::ZERO`] when the vector has (near-)zero length so that
    /// callers never receive NaN components.
    pub fn normalized(self) -> Vector {
        let len = self.length();
        if len <= f64::EPSILON {
            Vector::ZERO
        } else {
            self / len
        }
    }

    /// Scales the vector so that its length becomes `len` (keeping direction).
    pub fn with_length(self, len: f64) -> Vector {
        self.normalized() * len
    }

    /// Returns `true` when both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.2}, {:.2}>", self.x, self.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vector {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vector {
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Vector {
    fn from((x, y): (f64, f64)) -> Self {
        Vector::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_of_345_triangle() {
        assert_eq!(Vector::new(3.0, 4.0).length(), 5.0);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vector::new(-7.0, 2.5).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vector::ZERO.normalized(), Vector::ZERO);
    }

    #[test]
    fn dot_of_perpendicular_is_zero() {
        let a = Vector::new(1.0, 0.0);
        let b = Vector::new(0.0, 5.0);
        assert_eq!(a.dot(b), 0.0);
    }

    #[test]
    fn cross_sign_indicates_orientation() {
        let a = Vector::new(1.0, 0.0);
        let b = Vector::new(0.0, 1.0);
        assert!(a.cross(b) > 0.0);
        assert!(b.cross(a) < 0.0);
    }

    #[test]
    fn from_speed_angle_has_requested_speed() {
        let v = Vector::from_speed_angle(4.0, 1.2345);
        assert!((v.length() - 4.0).abs() < 1e-12);
        assert!((v.angle() - 1.2345).abs() < 1e-12);
    }

    #[test]
    fn with_length_rescales() {
        let v = Vector::new(10.0, 0.0).with_length(2.5);
        assert_eq!(v, Vector::new(2.5, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Vector::new(1.0, 2.0);
        let b = Vector::new(-3.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        assert_eq!(a * 2.0 / 2.0, a);
    }
}
