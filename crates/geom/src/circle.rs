//! Circles: query areas, radio ranges and sensing ranges.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A circle defined by its centre and radius, in metres.
///
/// MobiQuery query areas `A(Pu(t))` are circles of radius `Rq` centred on the
/// user's position; radio and sensing ranges are circles around nodes.
///
/// ```
/// use wsn_geom::{Circle, Point};
///
/// let area = Circle::new(Point::new(0.0, 0.0), 150.0);
/// assert!(area.contains(Point::new(100.0, 100.0)));
/// assert!(!area.contains(Point::new(150.0, 150.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Centre of the circle.
    pub center: Point,
    /// Radius in metres. Always non-negative.
    pub radius: f64,
}

impl Circle {
    /// Creates a circle from a centre and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// Returns `true` when `point` lies inside or on the boundary.
    ///
    /// Evaluates the shared [`crate::covers`] predicate, so circle
    /// containment, grid range queries and the coverage raster classify
    /// boundary points identically.
    pub fn contains(&self, point: Point) -> bool {
        crate::covers(self.center, self.radius, point)
    }

    /// Returns `true` when this circle and `other` overlap (share any point).
    pub fn intersects(&self, other: &Circle) -> bool {
        let d = self.center.distance_to(other.center);
        d <= self.radius + other.radius
    }

    /// Returns `true` when `other` lies entirely inside this circle.
    pub fn contains_circle(&self, other: &Circle) -> bool {
        let d = self.center.distance_to(other.center);
        d + other.radius <= self.radius + 1e-9
    }

    /// Area of the circle in square metres.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// The axis-aligned bounding box of the circle.
    pub fn bounding_box(&self) -> Rect {
        Rect::new(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }

    /// The two intersection points of this circle's boundary with `other`'s
    /// boundary, if the boundaries cross.
    ///
    /// Returns `None` when the circles do not intersect, are tangent within
    /// floating-point accuracy, or are concentric. This is the primitive used
    /// by the CCP coverage-eligibility rule, which evaluates coverage at the
    /// intersection points of sensing circles.
    pub fn boundary_intersections(&self, other: &Circle) -> Option<(Point, Point)> {
        let d = self.center.distance_to(other.center);
        if d <= f64::EPSILON {
            return None; // concentric
        }
        if d > self.radius + other.radius || d < (self.radius - other.radius).abs() {
            return None; // separate or one inside the other
        }
        // Standard two-circle intersection.
        let a = (self.radius * self.radius - other.radius * other.radius + d * d) / (2.0 * d);
        let h_sq = self.radius * self.radius - a * a;
        if h_sq < 0.0 {
            return None;
        }
        let h = h_sq.sqrt();
        let dir = (other.center - self.center) / d;
        let mid = self.center + dir * a;
        let perp = crate::Vector::new(-dir.y, dir.x) * h;
        Some((mid + perp, mid - perp))
    }
}

impl fmt::Display for Circle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circle(center={}, r={:.2})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_center_and_boundary() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains(c.center));
        assert!(c.contains(Point::new(3.0, 1.0)));
        assert!(!c.contains(Point::new(3.1, 1.0)));
    }

    #[test]
    #[should_panic]
    fn negative_radius_panics() {
        let _ = Circle::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn intersects_overlapping() {
        let a = Circle::new(Point::new(0.0, 0.0), 5.0);
        let b = Circle::new(Point::new(8.0, 0.0), 4.0);
        assert!(a.intersects(&b));
        let c = Circle::new(Point::new(20.0, 0.0), 4.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn contains_circle_nested() {
        let outer = Circle::new(Point::new(0.0, 0.0), 10.0);
        let inner = Circle::new(Point::new(2.0, 2.0), 3.0);
        assert!(outer.contains_circle(&inner));
        assert!(!inner.contains_circle(&outer));
    }

    #[test]
    fn area_of_unit_circle() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!((c.area() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_encloses_circle() {
        let c = Circle::new(Point::new(5.0, -3.0), 2.0);
        let bb = c.bounding_box();
        assert_eq!(bb.min_x, 3.0);
        assert_eq!(bb.max_x, 7.0);
        assert_eq!(bb.min_y, -5.0);
        assert_eq!(bb.max_y, -1.0);
    }

    #[test]
    fn boundary_intersections_lie_on_both_circles() {
        let a = Circle::new(Point::new(0.0, 0.0), 5.0);
        let b = Circle::new(Point::new(6.0, 0.0), 5.0);
        let (p, q) = a.boundary_intersections(&b).expect("circles intersect");
        for pt in [p, q] {
            assert!((a.center.distance_to(pt) - a.radius).abs() < 1e-9);
            assert!((b.center.distance_to(pt) - b.radius).abs() < 1e-9);
        }
        assert!(p.distance_to(q) > 1.0);
    }

    #[test]
    fn boundary_intersections_none_when_disjoint() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(10.0, 0.0), 1.0);
        assert!(a.boundary_intersections(&b).is_none());
    }

    #[test]
    fn boundary_intersections_none_when_concentric() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(0.0, 0.0), 2.0);
        assert!(a.boundary_intersections(&b).is_none());
    }
}
