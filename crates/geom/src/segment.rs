//! Line segments: legs of the mobile user's path.

use crate::{Point, Vector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A directed line segment from `start` to `end`.
///
/// Motion-profile legs are segments traversed at constant speed; pickup
/// points are positions interpolated along those segments.
///
/// ```
/// use wsn_geom::{Point, Segment};
///
/// let leg = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
/// assert_eq!(leg.length(), 100.0);
/// assert_eq!(leg.point_at(0.25), Point::new(25.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Starting point.
    pub start: Point,
    /// Ending point.
    pub end: Point,
}

impl Segment {
    /// Creates a segment between two points.
    pub const fn new(start: Point, end: Point) -> Self {
        Segment { start, end }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.start.distance_to(self.end)
    }

    /// Direction of the segment as a displacement vector (not normalised).
    pub fn direction(&self) -> Vector {
        self.end - self.start
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment (`0` = start, `1` = end).
    ///
    /// `t` is not clamped; callers that need clamping should do so explicitly.
    pub fn point_at(&self, t: f64) -> Point {
        self.start.lerp(self.end, t)
    }

    /// Point reached after travelling `distance` metres from the start.
    ///
    /// Values beyond the segment length extrapolate past the end point.
    pub fn point_at_distance(&self, distance: f64) -> Point {
        let len = self.length();
        if len <= f64::EPSILON {
            self.start
        } else {
            self.point_at(distance / len)
        }
    }

    /// Minimum distance from `point` to any point of the segment.
    pub fn distance_to_point(&self, point: Point) -> f64 {
        let d = self.direction();
        let len_sq = d.length_sq();
        if len_sq <= f64::EPSILON {
            return self.start.distance_to(point);
        }
        let t = ((point - self.start).dot(d) / len_sq).clamp(0.0, 1.0);
        self.point_at(t).distance_to(point)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "segment({} -> {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_direction() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(4.0, 5.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.direction(), Vector::new(3.0, 4.0));
    }

    #[test]
    fn point_at_endpoints() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.point_at(0.0), s.start);
        assert_eq!(s.point_at(1.0), s.end);
    }

    #[test]
    fn point_at_distance_degenerate_segment() {
        let p = Point::new(2.0, 2.0);
        let s = Segment::new(p, p);
        assert_eq!(s.point_at_distance(5.0), p);
    }

    #[test]
    fn distance_to_point_projection_cases() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        // Perpendicular projection onto the middle.
        assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
        // Beyond the end: distance to the endpoint.
        assert_eq!(s.distance_to_point(Point::new(13.0, 4.0)), 5.0);
        // Before the start.
        assert_eq!(s.distance_to_point(Point::new(-3.0, 4.0)), 5.0);
    }
}
