//! Axis-aligned rectangles: deployment regions.

use crate::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle, in metres.
///
/// The sensor deployment region of the paper's evaluation is a
/// 450 m × 450 m square; [`Rect`] also serves as the bounding region that the
/// mobile user's path is reflected inside.
///
/// ```
/// use wsn_geom::{Point, Rect};
///
/// let region = Rect::square(450.0);
/// assert!(region.contains(Point::new(225.0, 10.0)));
/// assert_eq!(region.area(), 450.0 * 450.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its extreme coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `min_x > max_x` or `min_y > max_y`, or if any bound is not
    /// finite.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(
            min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite(),
            "rectangle bounds must be finite"
        );
        assert!(
            min_x <= max_x && min_y <= max_y,
            "rectangle must have non-negative extent: \
             [{min_x}, {max_x}] x [{min_y}, {max_y}]"
        );
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// A square of the given side length with its lower-left corner at the origin.
    pub fn square(side: f64) -> Self {
        Rect::new(0.0, 0.0, side, side)
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre of the rectangle.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Returns `true` when `point` is inside or on the boundary.
    pub fn contains(&self, point: Point) -> bool {
        point.x >= self.min_x
            && point.x <= self.max_x
            && point.y >= self.min_y
            && point.y <= self.max_y
    }

    /// Clamps a point to lie within the rectangle.
    pub fn clamp(&self, point: Point) -> Point {
        Point::new(
            point.x.clamp(self.min_x, self.max_x),
            point.y.clamp(self.min_y, self.max_y),
        )
    }

    /// Reflects a point that may have left the rectangle back inside,
    /// mirror-style, and reports which axes were reflected.
    ///
    /// This is how the mobility model keeps the user inside the deployment
    /// region: when a motion segment would carry the user outside, the
    /// position is mirrored at the boundary and the corresponding velocity
    /// component is negated.
    ///
    /// Returns `(reflected_point, flip_x, flip_y)`.
    pub fn reflect(&self, point: Point) -> (Point, bool, bool) {
        let (x, flip_x) = reflect_coord(point.x, self.min_x, self.max_x);
        let (y, flip_y) = reflect_coord(point.y, self.min_y, self.max_y);
        (Point::new(x, y), flip_x, flip_y)
    }
}

fn reflect_coord(v: f64, min: f64, max: f64) -> (f64, bool) {
    let span = max - min;
    if span <= 0.0 {
        return (min, false);
    }
    if v >= min && v <= max {
        return (v, false);
    }
    // Fold the coordinate into a [0, 2*span) sawtooth then mirror.
    let mut t = (v - min) % (2.0 * span);
    if t < 0.0 {
        t += 2.0 * span;
    }
    if t <= span {
        (min + t, true)
    } else {
        (min + 2.0 * span - t, true)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rect[{:.1}..{:.1}] x [{:.1}..{:.1}]",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_has_expected_dimensions() {
        let r = Rect::square(450.0);
        assert_eq!(r.width(), 450.0);
        assert_eq!(r.height(), 450.0);
        assert_eq!(r.center(), Point::new(225.0, 225.0));
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = Rect::new(10.0, 0.0, 0.0, 10.0);
    }

    #[test]
    fn contains_boundary() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.0, 10.1)));
    }

    #[test]
    fn clamp_moves_outside_points_to_boundary() {
        let r = Rect::square(10.0);
        assert_eq!(r.clamp(Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(r.clamp(Point::new(3.0, 4.0)), Point::new(3.0, 4.0));
    }

    #[test]
    fn reflect_inside_is_identity() {
        let r = Rect::square(10.0);
        let (p, fx, fy) = r.reflect(Point::new(3.0, 7.0));
        assert_eq!(p, Point::new(3.0, 7.0));
        assert!(!fx && !fy);
    }

    #[test]
    fn reflect_mirrors_at_boundary() {
        let r = Rect::square(10.0);
        let (p, fx, _) = r.reflect(Point::new(12.0, 5.0));
        assert_eq!(p, Point::new(8.0, 5.0));
        assert!(fx);
        let (p, fx, _) = r.reflect(Point::new(-3.0, 5.0));
        assert_eq!(p, Point::new(3.0, 5.0));
        assert!(fx);
    }

    #[test]
    fn reflect_always_lands_inside() {
        let r = Rect::square(450.0);
        for v in [-1000.0, -450.0, -1.0, 0.0, 225.0, 450.0, 451.0, 5000.0] {
            let (p, _, _) = r.reflect(Point::new(v, v / 2.0));
            assert!(r.contains(p), "reflected point {p} not inside {r}");
        }
    }
}
