//! Property-based reference-equivalence suite for the [`TreeCache`].
//!
//! The cache multiplexes many users' query installs onto shared flood trees;
//! the naive reference builds one fresh tree per install. These properties
//! pin the two contracts the multi-user event loop relies on:
//!
//! 1. **Result identity** — for any random deployment, user count, set of
//!    (overlapping) pickup points and staggered query lifetimes, the tree a
//!    user gets from the shared cache equals, field for field, the tree the
//!    naive path would build for the same install.
//! 2. **Refcount discipline** — a tree's slot is freed exactly when its last
//!    holder releases it: never before (no premature free while a query is
//!    outstanding), never after (no leak once every query retires).

use proptest::prelude::*;
use std::collections::HashMap;
use wsn_geom::{Point, Rect};
use wsn_net::{FloodScratch, NeighborTable, NodeId, TreeCache, TreeHandle, TreeKey};

const SIDE: f64 = 450.0;
const COMM_RANGE: f64 = 105.0;
/// Pickup-quantisation cell, mirroring the event loop's `Rq`-sized lattice.
const CELL: f64 = 150.0;

fn deployment(coords: &[(f64, f64)]) -> (Vec<Point>, NeighborTable) {
    let positions: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let table = NeighborTable::build(&positions, Rect::square(SIDE), COMM_RANGE);
    (positions, table)
}

/// Quantises a raw pickup point the way the multi-user loop does and derives
/// the install key: collector = nearest node to the cell centre (linear scan
/// — the reference doesn't need a spatial index), radius = `Rq + Rc`.
fn install_key(positions: &[Point], pickup: (f64, f64)) -> TreeKey {
    let snap = |v: f64| ((v / CELL).floor() * CELL + CELL / 2.0).clamp(0.0, SIDE);
    let center = Point::new(snap(pickup.0), snap(pickup.1));
    let collector = (0..positions.len())
        .min_by(|&a, &b| {
            positions[a]
                .distance_to(center)
                .total_cmp(&positions[b].distance_to(center))
        })
        .expect("non-empty deployment");
    TreeKey::new(NodeId(collector), center, CELL + COMM_RANGE)
}

/// The membership predicate both paths build with: derived purely from the
/// key, as the cache's contract requires.
fn member_of(positions: &[Point], key: TreeKey) -> impl Fn(NodeId) -> bool + '_ {
    move |n: NodeId| positions[n.index()].distance_to(key.center()) <= key.radius_m()
}

/// One user's staggered query lifetime: queries are installed in periods
/// `first..first + len` and each install is released one period later.
#[derive(Debug, Clone)]
struct Lifetime {
    pickup: (f64, f64),
    first: usize,
    len: usize,
}

fn lifetimes() -> impl Strategy<Value = Vec<Lifetime>> {
    proptest::collection::vec(
        ((0.0f64..SIDE, 0.0f64..SIDE), 0usize..6, 1usize..5)
            .prop_map(|(pickup, first, len)| Lifetime { pickup, first, len }),
        1..8,
    )
}

proptest! {
    /// Shared trees are field-for-field identical to fresh naive builds, for
    /// every user and every period of a staggered multi-user schedule — and
    /// the cache frees each tree exactly when its last holder retires.
    #[test]
    fn shared_trees_match_naive_reference_across_staggered_lifetimes(
        coords in proptest::collection::vec((0.0f64..SIDE, 0.0f64..SIDE), 2..50),
        users in lifetimes(),
    ) {
        let (positions, table) = deployment(&coords);
        let mut cache = TreeCache::new();
        let mut naive = FloodScratch::new();
        // Mirror of the expected refcount per key, maintained independently.
        let mut expected_refs: HashMap<TreeKey, u32> = HashMap::new();
        // Handles held by (user, period) installs, released one period later.
        let mut held: Vec<(TreeKey, TreeHandle)> = Vec::new();
        let last_period = users.iter().map(|u| u.first + u.len).max().unwrap();

        for period in 0..=last_period {
            // Install phase: every user whose window covers this period.
            for user in users.iter().filter(|u| (u.first..u.first + u.len).contains(&period)) {
                let key = install_key(&positions, user.pickup);
                let before = cache.trees_built();
                let (handle, built) =
                    cache.acquire(key, &table, member_of(&positions, key));
                // A build happens exactly on the first concurrent holder.
                let refs = expected_refs.entry(key).or_insert(0);
                prop_assert_eq!(built, *refs == 0, "build iff no holder, key {:?}", key);
                prop_assert_eq!(cache.trees_built(), before + u64::from(built));
                *refs += 1;
                prop_assert_eq!(cache.refs(handle), *refs);

                // Result identity: the shared tree equals a fresh naive build
                // for the same install, byte for byte (PartialEq covers
                // parents, depths and the full discovery order).
                let reference = naive.build(key.root(), &table, member_of(&positions, key));
                prop_assert_eq!(
                    cache.tree(handle).expect("freshly acquired handle is live"),
                    &reference,
                    "user tree != naive reference"
                );
                naive.recycle(reference);

                held.push((key, handle));
            }
            // Retire phase: installs from the previous period release.
            let retiring: Vec<(TreeKey, TreeHandle)> = {
                let split = held.len().saturating_sub(
                    users
                        .iter()
                        .filter(|u| (u.first..u.first + u.len).contains(&period))
                        .count(),
                );
                held.drain(..split).collect()
            };
            for (key, handle) in retiring {
                let refs = expected_refs.get_mut(&key).unwrap();
                *refs -= 1;
                // Inside the equivalence suite the refcount discipline is an
                // invariant: a dead-handle error here still fails the test
                // loudly, preserving the old panicking behavior.
                let freed = cache.release(handle).expect("held handle is live");
                // Freed exactly when the mirror count hits zero.
                prop_assert_eq!(freed, *refs == 0, "free iff last holder, key {:?}", key);
                prop_assert_eq!(cache.refs(handle), *refs);
            }
            prop_assert_eq!(
                cache.live_trees(),
                expected_refs.values().filter(|&&r| r > 0).count()
            );
        }

        // Drain what is still held: the last release of each key must free it.
        for (key, handle) in held.drain(..) {
            let refs = expected_refs.get_mut(&key).unwrap();
            *refs -= 1;
            prop_assert_eq!(cache.release(handle).expect("held handle is live"), *refs == 0);
        }
        prop_assert_eq!(cache.live_trees(), 0, "trees leaked past the last retire");
        // Every acquisition was either a build or a genuine share.
        prop_assert_eq!(
            cache.trees_built() + cache.shared_hits(),
            users.iter().map(|u| u.len as u64).sum::<u64>()
        );
    }

    /// Re-acquiring a key after its tree was freed rebuilds a tree identical
    /// to the first build — the free/rebuild cycle loses nothing.
    #[test]
    fn rebuild_after_free_is_identical(
        coords in proptest::collection::vec((0.0f64..SIDE, 0.0f64..SIDE), 2..40),
        pickup in (0.0f64..SIDE, 0.0f64..SIDE),
    ) {
        let (positions, table) = deployment(&coords);
        let key = install_key(&positions, pickup);
        let mut cache = TreeCache::new();
        let (first, built) = cache.acquire(key, &table, member_of(&positions, key));
        prop_assert!(built);
        let snapshot = cache.tree(first).expect("live").clone();
        prop_assert!(
            cache.release(first).expect("sole holder is live"),
            "sole holder's release frees"
        );
        prop_assert!(cache.release(first).is_err(), "double release is refused");
        let (second, rebuilt) = cache.acquire(key, &table, member_of(&positions, key));
        prop_assert!(rebuilt, "freed key must rebuild, not resurrect");
        prop_assert_eq!(cache.tree(second).expect("live"), &snapshot);
        cache.release(second).expect("live handle");
        prop_assert_eq!(cache.trees_built(), 2);
        prop_assert_eq!(cache.shared_hits(), 0);
    }
}
