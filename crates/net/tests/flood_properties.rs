//! Property-based tests for flood-tree construction.
//!
//! The dense, scratch-buffer [`FloodTree`] build replaced an earlier
//! `HashMap`-based implementation; these properties pin the equivalence: a
//! reference BFS over hash maps must agree with both the convenience
//! constructor and a long-lived, buffer-recycling [`FloodScratch`] on every
//! parent, hop count and the full discovery order.

use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};
use wsn_geom::{Point, Rect};
use wsn_net::{FloodScratch, FloodTree, NeighborTable, NodeId};

/// The pre-optimization reference implementation: BFS over `HashMap`s.
#[allow(clippy::type_complexity)]
fn hashmap_reference_build(
    root: NodeId,
    neighbors: &NeighborTable,
    mut member: impl FnMut(NodeId) -> bool,
) -> (
    HashMap<NodeId, Option<NodeId>>,
    HashMap<NodeId, u32>,
    Vec<NodeId>,
) {
    let mut parent = HashMap::new();
    let mut hops = HashMap::new();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    parent.insert(root, None);
    hops.insert(root, 0);
    order.push(root);
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let d = hops[&u];
        for &v in neighbors.neighbors_of(u) {
            if parent.contains_key(&v) || !member(v) {
                continue;
            }
            parent.insert(v, Some(u));
            hops.insert(v, d + 1);
            order.push(v);
            queue.push_back(v);
        }
    }
    (parent, hops, order)
}

fn deployment(coords: &[(f64, f64)]) -> (Vec<Point>, NeighborTable) {
    let positions: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let table = NeighborTable::build(&positions, Rect::square(450.0), 105.0);
    (positions, table)
}

fn assert_tree_matches_reference(
    tree: &FloodTree,
    root: NodeId,
    node_count: usize,
    parent: &HashMap<NodeId, Option<NodeId>>,
    hops: &HashMap<NodeId, u32>,
    order: &[NodeId],
) {
    assert_eq!(tree.order(), order, "BFS discovery order");
    assert_eq!(tree.root(), root);
    assert_eq!(tree.len(), order.len());
    for i in 0..node_count {
        let n = NodeId(i);
        assert_eq!(
            tree.contains(n),
            parent.contains_key(&n),
            "membership of {n}"
        );
        assert_eq!(
            tree.parent_of(n),
            parent.get(&n).copied().flatten(),
            "parent of {n}"
        );
        assert_eq!(tree.depth_of(n), hops.get(&n).copied(), "depth of {n}");
    }
}

proptest! {
    /// The dense build agrees with the HashMap reference on arbitrary random
    /// deployments and membership predicates.
    #[test]
    fn dense_build_matches_hashmap_reference(
        coords in proptest::collection::vec((0.0f64..450.0, 0.0f64..450.0), 2..60),
        root_pick in 0usize..60,
        member_mod in 1usize..4,
    ) {
        let (_, table) = deployment(&coords);
        let root = NodeId(root_pick % coords.len());
        let member = |n: NodeId| n.index() % member_mod != 1;
        let (parent, hops, order) = hashmap_reference_build(root, &table, member);
        let tree = FloodTree::build(root, &table, member);
        assert_tree_matches_reference(&tree, root, coords.len(), &parent, &hops, &order);
    }

    /// A single FloodScratch reused (with buffer recycling) across a sequence
    /// of builds over different roots and predicates yields exactly the same
    /// trees as fresh builds — reuse must never leak state between builds.
    #[test]
    fn scratch_reuse_is_stateless_across_builds(
        coords in proptest::collection::vec((0.0f64..450.0, 0.0f64..450.0), 2..40),
        roots in proptest::collection::vec(0usize..40, 1..6),
        member_mod in 1usize..4,
    ) {
        let (_, table) = deployment(&coords);
        let mut scratch = FloodScratch::new();
        let mut previous: Option<FloodTree> = None;
        for (i, &r) in roots.iter().enumerate() {
            // Vary the predicate per build so consecutive builds differ.
            let member = |n: NodeId| (n.index() + i) % member_mod != 1;
            if let Some(old) = previous.take() {
                scratch.recycle(old);
            }
            let root = NodeId(r % coords.len());
            let (parent, hops, order) = hashmap_reference_build(root, &table, member);
            let from_scratch = scratch.build(root, &table, member);
            assert_tree_matches_reference(
                &from_scratch, root, coords.len(), &parent, &hops, &order,
            );
            // The in-tree marks must describe exactly this build's tree.
            for n in 0..coords.len() {
                prop_assert_eq!(scratch.in_last_tree(n), parent.contains_key(&NodeId(n)));
            }
            previous = Some(from_scratch);
        }
    }
}
