//! Deterministic fault injection: bursty per-node link loss, region
//! blackouts, and unplanned mid-period node crashes.
//!
//! The paper's only adversity is contention-dependent MAC loss ([`crate::mac`]).
//! This module adds *injected* faults so the protocol's recovery machinery
//! (install retry/backoff, tree health checks, naive-tree fallback — see
//! `mobiquery::sim::stepped`) has something to recover from, while keeping
//! every schedule a pure function of the scenario seed:
//!
//! * **Bursty link loss** — a per-node Gilbert–Elliott two-state channel
//!   (`good`/`bad`). All links into a node share its channel state, which
//!   models node-local interference (a jammed or fading receiver) at O(n)
//!   state instead of O(n²) per-link chains. The chain is parameterised by
//!   the stationary loss probability `loss` and the mean bad-state dwell
//!   `burst` (in query periods): `P(bad→good) = 1/burst` and
//!   `P(good→bad) = loss / ((1 − loss)·burst)`, which makes the stationary
//!   bad fraction exactly `loss` whenever `loss ≤ burst/(1+burst)` (beyond
//!   that the entry probability saturates at 1 and the chain spends more
//!   than `loss` of its time bad — still deterministic, just no longer
//!   calibrated).
//! * **Region blackouts** — every node inside a disk is unreachable for all
//!   boundaries in `[from, until)`. A pure predicate of the boundary index,
//!   no RNG.
//! * **Mid-period crashes** — each boundary, `⌊crash_rate·n⌋` victims are
//!   drawn by the same partial Fisher–Yates used by churn batches, but each
//!   victim also gets a fraction `frac ∈ [0, 1)` placing the crash *inside*
//!   the period rather than on its edge: deliveries scheduled before the
//!   crash instant still count, later ones are lost, and in-flight trees
//!   through the victim are poisoned. Crashed nodes reboot at the next
//!   boundary (transient crash-reboot), so the population recovers while
//!   the protocol-level damage lingers.
//!
//! # Determinism contract
//!
//! All randomness comes from the dedicated [`FAULT_STREAM`] via
//! [`wsn_sim::mix_seed`], with a fresh RNG per boundary (and per sub-stream),
//! exactly like `ChurnBatchPlan`: the schedule for boundary `b` is a pure
//! function of `(seed, b)` plus the chain state accumulated over boundaries
//! `1..b`, and [`FaultPlan::advance`] is called once per boundary from the
//! serial section of the stepped engine — so the schedule is byte-identical
//! for any `--jobs`. A plan with `loss == 0`, `crash_rate == 0` and no
//! blackout draws **zero** random numbers (`SimRng::gen_bool(0.0)` consumes
//! no draw), which is what lets a rate-0 faulted engine stay byte-identical
//! to the fault-free engine.

use std::error::Error;
use std::fmt;

use wsn_geom::Point;
use wsn_sim::{mix_seed, SimRng};

/// Dedicated seed stream for fault schedules, disjoint from the query,
/// priority, churn, lifetime and load streams.
pub const FAULT_STREAM: u64 = 0xFA17_0000_0000_0001;

/// Sub-stream for per-boundary Gilbert–Elliott link-state transitions.
const LINK_SUB: u64 = 1;
/// Sub-stream for per-boundary crash victim draws.
const CRASH_SUB: u64 = 2;
/// Sub-stream for per-(user, period) install acknowledgment draws; used by
/// the stepped engine so retries never perturb any other stream.
pub const INSTALL_SUB: u64 = 3;

/// A disk of the field that is unreachable for a half-open boundary window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blackout {
    /// Centre of the unreachable disk.
    pub center: Point,
    /// Radius of the unreachable disk in metres.
    pub radius_m: f64,
    /// First boundary (inclusive) at which the blackout holds.
    pub from: u64,
    /// First boundary (exclusive) at which the blackout has lifted.
    pub until: u64,
}

/// Fault-injection parameters. `FaultConfig::new(0.0)` is the identity:
/// it draws nothing and changes nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Stationary per-node bad-channel probability, `0 ≤ loss < 1`.
    pub loss: f64,
    /// Mean bad-state dwell in query periods, `burst ≥ 1`.
    pub burst: f64,
    /// Fraction of slots crashed per boundary, `0 ≤ crash_rate < 1`.
    pub crash_rate: f64,
    /// Optional region blackout.
    pub blackout: Option<Blackout>,
    /// Whether the engine's recovery machinery (install retries, tree
    /// rebuilds, naive fallback) is armed. Off = single install attempt and
    /// poisoned trees are kept; the resilience sweep compares both.
    pub recovery: bool,
}

impl FaultConfig {
    /// A config with the given stationary loss, default burst length 4,
    /// no crashes, no blackout, recovery armed.
    pub fn new(loss: f64) -> Self {
        Self {
            loss,
            burst: 4.0,
            crash_rate: 0.0,
            blackout: None,
            recovery: true,
        }
    }

    /// Set the mean bad-state dwell in periods.
    pub fn with_burst(mut self, burst: f64) -> Self {
        self.burst = burst;
        self
    }

    /// Set the per-boundary crash fraction.
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        self.crash_rate = rate;
        self
    }

    /// Add a region blackout.
    pub fn with_blackout(mut self, blackout: Blackout) -> Self {
        self.blackout = Some(blackout);
        self
    }

    /// Arm or disarm protocol recovery.
    pub fn with_recovery(mut self, on: bool) -> Self {
        self.recovery = on;
        self
    }

    /// True when this config injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.loss == 0.0 && self.crash_rate == 0.0 && self.blackout.is_none()
    }

    /// Reject parameters outside the model's domain.
    pub fn validate(&self) -> Result<(), FaultError> {
        if !self.loss.is_finite() || !(0.0..1.0).contains(&self.loss) {
            return Err(FaultError::Loss(self.loss));
        }
        if !self.burst.is_finite() || self.burst < 1.0 {
            return Err(FaultError::Burst(self.burst));
        }
        if !self.crash_rate.is_finite() || !(0.0..1.0).contains(&self.crash_rate) {
            return Err(FaultError::CrashRate(self.crash_rate));
        }
        if let Some(b) = &self.blackout {
            if !b.radius_m.is_finite() || b.radius_m <= 0.0 || b.from >= b.until {
                return Err(FaultError::Blackout {
                    radius_m: b.radius_m,
                    from: b.from,
                    until: b.until,
                });
            }
        }
        Ok(())
    }

    /// `P(good → bad)` per boundary. May exceed 1 for extreme `loss`/`burst`
    /// combinations; `SimRng::gen_bool` saturates there.
    fn good_to_bad(&self) -> f64 {
        if self.loss <= 0.0 {
            0.0
        } else {
            self.loss / ((1.0 - self.loss) * self.burst)
        }
    }

    /// `P(bad → good)` per boundary.
    fn bad_to_good(&self) -> f64 {
        1.0 / self.burst
    }
}

/// Why a [`FaultConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// `loss` outside `[0, 1)` or not finite.
    Loss(f64),
    /// `burst` below 1 or not finite.
    Burst(f64),
    /// `crash_rate` outside `[0, 1)` or not finite.
    CrashRate(f64),
    /// Blackout with a degenerate disk or an empty boundary window.
    Blackout {
        /// The rejected radius.
        radius_m: f64,
        /// Start boundary of the rejected window.
        from: u64,
        /// End boundary of the rejected window.
        until: u64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Loss(v) => write!(f, "fault loss must be finite and in [0, 1), got {v}"),
            Self::Burst(v) => write!(f, "fault burst must be finite and >= 1, got {v}"),
            Self::CrashRate(v) => {
                write!(f, "fault crash rate must be finite and in [0, 1), got {v}")
            }
            Self::Blackout {
                radius_m,
                from,
                until,
            } => write!(
                f,
                "blackout needs a positive finite radius and a nonempty window, \
                 got radius {radius_m} over [{from}, {until})"
            ),
        }
    }
}

impl Error for FaultError {}

/// One node crash: `slot` goes down at fraction `frac` of the way through
/// the period and reboots at the next boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crash {
    /// Store slot of the victim.
    pub slot: usize,
    /// Where inside the period the crash strikes, in `[0, 1)`.
    pub frac: f64,
}

/// The faults in force around one boundary, as produced by
/// [`FaultPlan::advance`]: this boundary's crash victims plus whether the
/// configured blackout window covers it. Link states live on the plan
/// (query them via [`FaultPlan::link_bad`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultBatchPlan {
    /// Crash victims, ascending by slot.
    pub crashes: Vec<Crash>,
    /// True when the blackout window covers this boundary.
    pub blackout: bool,
}

/// Seeded fault schedule over a fixed slot universe. Owns the per-node
/// Gilbert–Elliott states; [`FaultPlan::advance`] steps them one boundary.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
    link_bad: Vec<bool>,
}

impl FaultPlan {
    /// Build a plan over `slots` node slots. Rejects invalid configs.
    pub fn new(config: FaultConfig, seed: u64, slots: usize) -> Result<Self, FaultError> {
        config.validate()?;
        Ok(Self {
            config,
            seed,
            link_bad: vec![false; slots],
        })
    }

    /// The validated config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Advance every node's channel state across one boundary and draw this
    /// boundary's crash victims. Call once per boundary, in ascending order,
    /// from serial code: the per-boundary sub-stream RNGs make the result a
    /// pure function of `(seed, boundary)` and the prior state, independent
    /// of worker count.
    pub fn advance(&mut self, boundary: u64) -> FaultBatchPlan {
        let p_gb = self.config.good_to_bad();
        let p_bg = self.config.bad_to_good();
        let mut rng =
            SimRng::seed_from_u64(mix_seed(self.seed, &[FAULT_STREAM, LINK_SUB, boundary]));
        for state in self.link_bad.iter_mut() {
            *state = if *state {
                !rng.gen_bool(p_bg)
            } else {
                rng.gen_bool(p_gb)
            };
        }
        FaultBatchPlan {
            crashes: self.draw_crashes(boundary),
            blackout: self.blackout_active(boundary),
        }
    }

    /// Is `slot`'s channel in the bad state after the latest [`advance`]?
    ///
    /// [`advance`]: FaultPlan::advance
    pub fn link_bad(&self, slot: usize) -> bool {
        self.link_bad[slot]
    }

    /// Number of slots currently in the bad channel state.
    pub fn bad_count(&self) -> usize {
        self.link_bad.iter().filter(|b| **b).count()
    }

    /// Does the configured blackout cover `boundary`?
    pub fn blackout_active(&self, boundary: u64) -> bool {
        self.config
            .blackout
            .as_ref()
            .is_some_and(|b| boundary >= b.from && boundary < b.until)
    }

    /// Is `pos` inside an active blackout disk at `boundary`?
    pub fn blacked_out(&self, boundary: u64, pos: Point) -> bool {
        match &self.config.blackout {
            Some(b) if boundary >= b.from && boundary < b.until => {
                pos.distance_to(b.center) <= b.radius_m
            }
            _ => false,
        }
    }

    /// Partial Fisher–Yates over all slots (the churn-batch idiom), then a
    /// mid-period fraction per victim. Crashing an already-dead slot is a
    /// harmless no-op, which keeps the draw sequence independent of churn.
    fn draw_crashes(&self, boundary: u64) -> Vec<Crash> {
        let n = self.link_bad.len();
        let count = (self.config.crash_rate * n as f64).floor() as usize;
        if count == 0 {
            return Vec::new();
        }
        let mut rng =
            SimRng::seed_from_u64(mix_seed(self.seed, &[FAULT_STREAM, CRASH_SUB, boundary]));
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = rng.gen_range_usize(i, pool.len());
            pool.swap(i, j);
        }
        pool.truncate(count);
        pool.sort_unstable();
        pool.into_iter()
            .map(|slot| Crash {
                slot,
                frac: rng.gen_f64(),
            })
            .collect()
    }

    /// The seed stream value an engine should fold per-(user, period) install
    /// acknowledgment draws from, so retries never perturb another stream.
    pub fn install_seed(&self, user: u32, period: u64) -> u64 {
        mix_seed(
            self.seed,
            &[FAULT_STREAM, INSTALL_SUB, u64::from(user), period],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batches(seed: u64, config: FaultConfig, slots: usize, upto: u64) -> Vec<FaultBatchPlan> {
        let mut plan = FaultPlan::new(config, seed, slots).expect("valid config");
        (1..=upto).map(|b| plan.advance(b)).collect()
    }

    #[test]
    fn validate_rejects_out_of_domain_parameters() {
        for loss in [-0.1, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            assert!(FaultConfig::new(loss).validate().is_err(), "loss {loss}");
        }
        for burst in [0.0, 0.5, f64::NAN] {
            let c = FaultConfig::new(0.1).with_burst(burst);
            assert!(c.validate().is_err(), "burst {burst}");
        }
        for rate in [-0.01, 1.0, f64::NAN] {
            let c = FaultConfig::new(0.1).with_crash_rate(rate);
            assert!(c.validate().is_err(), "crash rate {rate}");
        }
        let bad_disk = FaultConfig::new(0.1).with_blackout(Blackout {
            center: Point::new(0.0, 0.0),
            radius_m: 0.0,
            from: 1,
            until: 5,
        });
        assert!(bad_disk.validate().is_err());
        let empty_window = FaultConfig::new(0.1).with_blackout(Blackout {
            center: Point::new(0.0, 0.0),
            radius_m: 10.0,
            from: 5,
            until: 5,
        });
        assert!(empty_window.validate().is_err());
        assert!(FaultConfig::new(0.0).validate().is_ok());
        assert!(FaultConfig::new(0.999).with_burst(1.0).validate().is_ok());
    }

    #[test]
    fn rate_zero_plan_is_inert() {
        let config = FaultConfig::new(0.0);
        assert!(config.is_noop());
        let mut plan = FaultPlan::new(config, 42, 500).expect("valid");
        for b in 1..=50 {
            let batch = plan.advance(b);
            assert!(batch.crashes.is_empty());
            assert!(!batch.blackout);
            assert_eq!(plan.bad_count(), 0);
        }
    }

    #[test]
    fn identical_seeds_yield_identical_schedules() {
        let config = FaultConfig::new(0.3).with_burst(3.0).with_crash_rate(0.02);
        let a = batches(7, config, 400, 30);
        let b = batches(7, config, 400, 30);
        assert_eq!(a, b);
        let c = batches(8, config, 400, 30);
        assert_ne!(a, c, "a different seed must reshuffle the schedule");
    }

    #[test]
    fn link_states_track_the_stationary_loss() {
        let config = FaultConfig::new(0.3).with_burst(4.0);
        let mut plan = FaultPlan::new(config, 11, 2000).expect("valid");
        // Skip a mixing prefix, then average the bad fraction.
        let mut total = 0usize;
        let mut samples = 0usize;
        for b in 1..=200 {
            plan.advance(b);
            if b > 40 {
                total += plan.bad_count();
                samples += 2000;
            }
        }
        let fraction = total as f64 / samples as f64;
        assert!(
            (fraction - 0.3).abs() < 0.05,
            "stationary bad fraction {fraction} should sit near the configured 0.3"
        );
    }

    #[test]
    fn crash_batches_are_sorted_sized_and_mid_period() {
        let config = FaultConfig::new(0.0).with_crash_rate(0.01);
        let mut plan = FaultPlan::new(config, 99, 1000).expect("valid");
        for b in 1..=20 {
            let batch = plan.advance(b);
            assert_eq!(batch.crashes.len(), 10, "floor(0.01 * 1000)");
            for pair in batch.crashes.windows(2) {
                assert!(pair[0].slot < pair[1].slot, "ascending unique slots");
            }
            for crash in &batch.crashes {
                assert!((0.0..1.0).contains(&crash.frac), "crash strikes mid-period");
            }
        }
    }

    #[test]
    fn blackout_window_is_half_open_and_spatial() {
        let config = FaultConfig::new(0.0).with_blackout(Blackout {
            center: Point::new(100.0, 100.0),
            radius_m: 50.0,
            from: 3,
            until: 6,
        });
        let plan = FaultPlan::new(config, 1, 10).expect("valid");
        assert!(!plan.blackout_active(2));
        assert!(plan.blackout_active(3));
        assert!(plan.blackout_active(5));
        assert!(!plan.blackout_active(6));
        let inside = Point::new(120.0, 100.0);
        let outside = Point::new(200.0, 200.0);
        assert!(plan.blacked_out(4, inside));
        assert!(!plan.blacked_out(4, outside));
        assert!(!plan.blacked_out(2, inside), "window not yet open");
    }

    #[test]
    fn install_seed_is_per_user_per_period() {
        let plan = FaultPlan::new(FaultConfig::new(0.2), 5, 10).expect("valid");
        assert_ne!(plan.install_seed(0, 1), plan.install_seed(0, 2));
        assert_ne!(plan.install_seed(0, 1), plan.install_seed(1, 1));
        assert_eq!(plan.install_seed(3, 7), plan.install_seed(3, 7));
    }
}
