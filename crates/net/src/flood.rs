//! Bounded-area flooding and the query-tree structure it induces.
//!
//! Query dissemination in MobiQuery floods a setup message from the collector
//! node to every backbone node inside the query area; each node adopts the
//! first node it hears the message from as its parent, which yields a
//! breadth-first spanning tree rooted at the collector. Sleeping nodes later
//! attach to that tree as leaves.

use crate::neighbors::NeighborTable;
use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// The spanning tree produced by flooding a message within a node subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodTree {
    /// The root (collector) node.
    pub root: NodeId,
    /// Parent of each reached node; the root maps to `None`.
    pub parent: HashMap<NodeId, Option<NodeId>>,
    /// Hop distance of each reached node from the root.
    pub hops: HashMap<NodeId, u32>,
    /// Nodes in the order the flood reaches them (BFS order, root first).
    pub order: Vec<NodeId>,
}

impl FloodTree {
    /// Builds the BFS flood tree rooted at `root` over the subgraph induced by
    /// the nodes for which `member` returns `true`.
    ///
    /// `root` is always included even if `member(root)` is `false` (the
    /// collector may sit just outside the query area, within `Rp` of the
    /// pickup point).
    pub fn build(
        root: NodeId,
        neighbors: &NeighborTable,
        mut member: impl FnMut(NodeId) -> bool,
    ) -> Self {
        let mut parent = HashMap::new();
        let mut hops = HashMap::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::new();

        parent.insert(root, None);
        hops.insert(root, 0);
        order.push(root);
        queue.push_back(root);

        while let Some(u) = queue.pop_front() {
            let d = hops[&u];
            for &v in neighbors.neighbors_of(u) {
                if parent.contains_key(&v) || !member(v) {
                    continue;
                }
                parent.insert(v, Some(u));
                hops.insert(v, d + 1);
                order.push(v);
                queue.push_back(v);
            }
        }

        FloodTree {
            root,
            parent,
            hops,
            order,
        }
    }

    /// Number of nodes reached by the flood (including the root).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` when only the root is in the tree.
    pub fn is_empty(&self) -> bool {
        self.order.len() <= 1
    }

    /// Returns `true` when `node` was reached by the flood.
    pub fn contains(&self, node: NodeId) -> bool {
        self.parent.contains_key(&node)
    }

    /// The parent of `node`, or `None` for the root or unreached nodes.
    pub fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        self.parent.get(&node).copied().flatten()
    }

    /// Hop distance of `node` from the root, if reached.
    pub fn depth_of(&self, node: NodeId) -> Option<u32> {
        self.hops.get(&node).copied()
    }

    /// The maximum hop distance of any reached node (the tree's depth).
    pub fn depth(&self) -> u32 {
        self.hops.values().copied().max().unwrap_or(0)
    }

    /// The children of `node` in the tree.
    pub fn children_of(&self, node: NodeId) -> Vec<NodeId> {
        let mut children: Vec<NodeId> = self
            .parent
            .iter()
            .filter_map(|(&child, &p)| (p == Some(node)).then_some(child))
            .collect();
        children.sort_unstable();
        children
    }

    /// The path from `node` up to the root (inclusive of both), or `None`
    /// when the node was not reached.
    pub fn path_to_root(&self, node: NodeId) -> Option<Vec<NodeId>> {
        if !self.contains(node) {
            return None;
        }
        let mut path = vec![node];
        let mut current = node;
        while let Some(p) = self.parent_of(current) {
            path.push(p);
            current = p;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::{Point, Rect};

    fn line_table(n: usize) -> NeighborTable {
        let positions: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        NeighborTable::build(&positions, Rect::square(2000.0), 105.0)
    }

    #[test]
    fn flood_reaches_connected_members() {
        let table = line_table(6);
        let tree = FloodTree::build(NodeId(0), &table, |_| true);
        assert_eq!(tree.len(), 6);
        assert_eq!(tree.depth(), 5);
        assert_eq!(tree.parent_of(NodeId(3)), Some(NodeId(2)));
        assert_eq!(tree.depth_of(NodeId(5)), Some(5));
        assert_eq!(tree.order[0], NodeId(0));
    }

    #[test]
    fn membership_limits_the_flood() {
        let table = line_table(6);
        // Node 3 is excluded, so 4 and 5 are unreachable.
        let tree = FloodTree::build(NodeId(0), &table, |n| n != NodeId(3));
        assert_eq!(tree.len(), 3);
        assert!(!tree.contains(NodeId(4)));
        assert!(!tree.is_empty());
    }

    #[test]
    fn root_outside_membership_is_still_included() {
        let table = line_table(4);
        let tree = FloodTree::build(NodeId(0), &table, |n| n.index() >= 1);
        assert!(tree.contains(NodeId(0)));
        assert_eq!(tree.parent_of(NodeId(0)), None);
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn bfs_gives_shortest_hop_counts() {
        // 3x3 grid with 100 m spacing.
        let mut positions = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                positions.push(Point::new(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        let table = NeighborTable::build(&positions, Rect::square(450.0), 105.0);
        let tree = FloodTree::build(NodeId(0), &table, |_| true);
        // Opposite corner is 4 hops away on a 4-connected grid.
        assert_eq!(tree.depth_of(NodeId(8)), Some(4));
        assert_eq!(tree.depth_of(NodeId(4)), Some(2));
    }

    #[test]
    fn children_and_path_are_consistent() {
        let table = line_table(5);
        let tree = FloodTree::build(NodeId(2), &table, |_| true);
        assert_eq!(tree.children_of(NodeId(2)), vec![NodeId(1), NodeId(3)]);
        assert_eq!(
            tree.path_to_root(NodeId(0)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2)])
        );
        assert_eq!(
            tree.path_to_root(NodeId(4)).unwrap().last(),
            Some(&NodeId(2))
        );
        // Every non-root node's parent is one hop shallower.
        for &n in &tree.order {
            if let Some(p) = tree.parent_of(n) {
                assert_eq!(tree.depth_of(n).unwrap(), tree.depth_of(p).unwrap() + 1);
            }
        }
    }

    #[test]
    fn unreached_node_has_no_path() {
        let table = line_table(4);
        let tree = FloodTree::build(NodeId(0), &table, |n| n.index() < 2);
        assert_eq!(tree.path_to_root(NodeId(3)), None);
        assert_eq!(tree.depth_of(NodeId(3)), None);
    }
}
