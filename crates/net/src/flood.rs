//! Bounded-area flooding and the query-tree structure it induces.
//!
//! Query dissemination in MobiQuery floods a setup message from the collector
//! node to every backbone node inside the query area; each node adopts the
//! first node it hears the message from as its parent, which yields a
//! breadth-first spanning tree rooted at the collector. Sleeping nodes later
//! attach to that tree as leaves.
//!
//! A fresh tree is built every query period, so this is one of the
//! simulator's innermost loops. The tree is therefore stored as dense,
//! index-linked `Vec`s (BFS order, parent slots, a CSR children layout and a
//! sorted id→slot table) rather than per-tree hash maps, and
//! [`FloodScratch`] lets a long-lived owner recycle both the BFS working
//! state and retired tree buffers so steady-state tree construction
//! allocates nothing.

use crate::neighbors::NeighborTable;
use crate::node::NodeId;

/// Sentinel slot meaning "no parent" (the root's slot entry).
const NO_PARENT: u32 = u32::MAX;

/// The spanning tree produced by flooding a message within a node subset.
///
/// Nodes are addressed externally by [`NodeId`] and internally by *slot*:
/// the node's index in BFS discovery order. Because a BFS parent finishes
/// discovering all of its children before the next parent starts, each
/// node's children occupy a contiguous run of the order, which is what makes
/// the CSR children layout possible without any per-node allocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FloodTree {
    /// Nodes in the order the flood reaches them (BFS order, root first).
    order: Vec<NodeId>,
    /// Slot of each node's parent, parallel to `order`; `NO_PARENT` for the
    /// root.
    parent_slot: Vec<u32>,
    /// Hop distance from the root, parallel to `order`.
    hop: Vec<u32>,
    /// CSR index: the children of the node at slot `i` are
    /// `order[children_start[i]..children_start[i + 1]]`.
    children_start: Vec<u32>,
    /// `(node, slot)` pairs sorted by node id, for O(log n) membership and
    /// parent/depth lookups.
    slots: Vec<(NodeId, u32)>,
}

impl FloodTree {
    /// Builds the BFS flood tree rooted at `root` over the subgraph induced by
    /// the nodes for which `member` returns `true`.
    ///
    /// `root` is always included even if `member(root)` is `false` (the
    /// collector may sit just outside the query area, within `Rp` of the
    /// pickup point).
    ///
    /// This convenience constructor allocates fresh scratch state per call;
    /// hot loops should hold a [`FloodScratch`] and call
    /// [`FloodScratch::build`] instead.
    pub fn build(
        root: NodeId,
        neighbors: &NeighborTable,
        member: impl FnMut(NodeId) -> bool,
    ) -> Self {
        FloodScratch::new().build(root, neighbors, member)
    }

    /// The root (collector) node.
    ///
    /// # Panics
    ///
    /// Panics on a default-constructed (empty) tree, which
    /// [`build`](Self::build) never produces.
    pub fn root(&self) -> NodeId {
        self.order[0]
    }

    /// Number of nodes reached by the flood (including the root).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` when only the root is in the tree.
    pub fn is_empty(&self) -> bool {
        self.order.len() <= 1
    }

    /// Nodes in the order the flood reaches them (BFS order, root first).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The slot (BFS discovery index) of `node`, if reached.
    fn slot_of(&self, node: NodeId) -> Option<usize> {
        self.slots
            .binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|i| self.slots[i].1 as usize)
    }

    /// Returns `true` when `node` was reached by the flood.
    pub fn contains(&self, node: NodeId) -> bool {
        self.slot_of(node).is_some()
    }

    /// The parent of `node`, or `None` for the root or unreached nodes.
    pub fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        let slot = self.slot_of(node)?;
        match self.parent_slot[slot] {
            NO_PARENT => None,
            p => Some(self.order[p as usize]),
        }
    }

    /// Hop distance of `node` from the root, if reached.
    pub fn depth_of(&self, node: NodeId) -> Option<u32> {
        self.slot_of(node).map(|slot| self.hop[slot])
    }

    /// The maximum hop distance of any reached node (the tree's depth).
    pub fn depth(&self) -> u32 {
        // BFS discovers nodes in non-decreasing hop order, so the last node
        // is always a deepest one.
        self.hop.last().copied().unwrap_or(0)
    }

    /// The children of `node` in the tree, in ascending id order (the
    /// neighbour table is id-sorted, so BFS discovers them that way).
    ///
    /// Unreached nodes have no children.
    pub fn children_of(&self, node: NodeId) -> &[NodeId] {
        match self.slot_of(node) {
            None => &[],
            Some(slot) => {
                let lo = self.children_start[slot] as usize;
                let hi = self.children_start[slot + 1] as usize;
                &self.order[lo..hi]
            }
        }
    }

    /// The path from `node` up to the root (inclusive of both), or `None`
    /// when the node was not reached.
    pub fn path_to_root(&self, node: NodeId) -> Option<Vec<NodeId>> {
        let mut slot = self.slot_of(node)?;
        let mut path = vec![self.order[slot]];
        while self.parent_slot[slot] != NO_PARENT {
            slot = self.parent_slot[slot] as usize;
            path.push(self.order[slot]);
        }
        Some(path)
    }

    /// Empties the tree, keeping every buffer's capacity for reuse.
    fn clear(&mut self) {
        self.order.clear();
        self.parent_slot.clear();
        self.hop.clear();
        self.children_start.clear();
        self.slots.clear();
    }
}

/// Reusable working state for [`FloodTree`] construction: an epoch-marked
/// visited array sized to the deployment, plus a pool of retired tree
/// buffers.
///
/// One query period builds one tree; an owner that holds a `FloodScratch`
/// and [`recycle`](Self::recycle)s trees it no longer needs reaches a steady
/// state where tree construction performs no heap allocation at all.
#[derive(Debug, Default)]
pub struct FloodScratch {
    /// `mark[n] == epoch` iff node `n` is in the most recently built tree.
    mark: Vec<u64>,
    /// Current build generation; bumped once per [`build`](Self::build).
    epoch: u64,
    /// Retired trees whose buffers the next build reuses.
    pool: Vec<FloodTree>,
}

impl FloodScratch {
    /// Creates empty scratch state; buffers grow on first use.
    pub fn new() -> Self {
        FloodScratch::default()
    }

    /// Returns a no-longer-needed tree's buffers to the pool.
    pub fn recycle(&mut self, tree: FloodTree) {
        self.pool.push(tree);
    }

    /// Returns `true` when `node_index` was reached by the most recent
    /// [`build`](Self::build). Valid until the next build; used as the dense
    /// in-tree bitset for sleeping-node parent assignment without touching
    /// the tree's lookup table.
    pub fn in_last_tree(&self, node_index: usize) -> bool {
        self.mark.get(node_index).copied() == Some(self.epoch)
    }

    /// Builds the BFS flood tree rooted at `root` over the subgraph induced
    /// by the nodes for which `member` returns `true`, reusing this scratch's
    /// buffers. Semantics are identical to [`FloodTree::build`].
    pub fn build(
        &mut self,
        root: NodeId,
        neighbors: &NeighborTable,
        mut member: impl FnMut(NodeId) -> bool,
    ) -> FloodTree {
        if self.mark.len() < neighbors.node_count() {
            self.mark.resize(neighbors.node_count(), 0);
        }
        self.epoch += 1;
        let epoch = self.epoch;

        let mut tree = self.pool.pop().unwrap_or_default();
        tree.clear();

        self.mark[root.index()] = epoch;
        tree.order.push(root);
        tree.parent_slot.push(NO_PARENT);
        tree.hop.push(0);

        // `order` doubles as the BFS queue: nodes are processed in the order
        // they were discovered, and each node's children are appended while
        // it is being processed, which yields the contiguous CSR runs.
        let mut head = 0;
        tree.children_start.push(1);
        while head < tree.order.len() {
            let u = tree.order[head];
            let d = tree.hop[head];
            for &v in neighbors.neighbors_of(u) {
                if self.mark[v.index()] == epoch || !member(v) {
                    continue;
                }
                self.mark[v.index()] = epoch;
                tree.order.push(v);
                tree.parent_slot.push(head as u32);
                tree.hop.push(d + 1);
            }
            tree.children_start.push(tree.order.len() as u32);
            head += 1;
        }

        tree.slots
            .extend(tree.order.iter().enumerate().map(|(i, &n)| (n, i as u32)));
        tree.slots.sort_unstable_by_key(|&(n, _)| n);
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::{Point, Rect};

    fn line_table(n: usize) -> NeighborTable {
        let positions: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        NeighborTable::build(&positions, Rect::square(2000.0), 105.0)
    }

    #[test]
    fn flood_reaches_connected_members() {
        let table = line_table(6);
        let tree = FloodTree::build(NodeId(0), &table, |_| true);
        assert_eq!(tree.len(), 6);
        assert_eq!(tree.depth(), 5);
        assert_eq!(tree.parent_of(NodeId(3)), Some(NodeId(2)));
        assert_eq!(tree.depth_of(NodeId(5)), Some(5));
        assert_eq!(tree.order()[0], NodeId(0));
        assert_eq!(tree.root(), NodeId(0));
    }

    #[test]
    fn membership_limits_the_flood() {
        let table = line_table(6);
        // Node 3 is excluded, so 4 and 5 are unreachable.
        let tree = FloodTree::build(NodeId(0), &table, |n| n != NodeId(3));
        assert_eq!(tree.len(), 3);
        assert!(!tree.contains(NodeId(4)));
        assert!(!tree.is_empty());
    }

    #[test]
    fn root_outside_membership_is_still_included() {
        let table = line_table(4);
        let tree = FloodTree::build(NodeId(0), &table, |n| n.index() >= 1);
        assert!(tree.contains(NodeId(0)));
        assert_eq!(tree.parent_of(NodeId(0)), None);
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn bfs_gives_shortest_hop_counts() {
        // 3x3 grid with 100 m spacing.
        let mut positions = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                positions.push(Point::new(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        let table = NeighborTable::build(&positions, Rect::square(450.0), 105.0);
        let tree = FloodTree::build(NodeId(0), &table, |_| true);
        // Opposite corner is 4 hops away on a 4-connected grid.
        assert_eq!(tree.depth_of(NodeId(8)), Some(4));
        assert_eq!(tree.depth_of(NodeId(4)), Some(2));
    }

    #[test]
    fn children_and_path_are_consistent() {
        let table = line_table(5);
        let tree = FloodTree::build(NodeId(2), &table, |_| true);
        assert_eq!(tree.children_of(NodeId(2)), [NodeId(1), NodeId(3)]);
        assert_eq!(
            tree.path_to_root(NodeId(0)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2)])
        );
        assert_eq!(
            tree.path_to_root(NodeId(4)).unwrap().last(),
            Some(&NodeId(2))
        );
        // Every non-root node's parent is one hop shallower.
        for &n in tree.order() {
            if let Some(p) = tree.parent_of(n) {
                assert_eq!(tree.depth_of(n).unwrap(), tree.depth_of(p).unwrap() + 1);
            }
        }
    }

    #[test]
    fn unreached_node_has_no_path() {
        let table = line_table(4);
        let tree = FloodTree::build(NodeId(0), &table, |n| n.index() < 2);
        assert_eq!(tree.path_to_root(NodeId(3)), None);
        assert_eq!(tree.depth_of(NodeId(3)), None);
        assert!(tree.children_of(NodeId(3)).is_empty());
    }

    #[test]
    fn every_child_run_is_sorted_and_complete() {
        let table = line_table(7);
        let tree = FloodTree::build(NodeId(3), &table, |_| true);
        // Union of all children plus the root is exactly the tree.
        let mut seen = vec![tree.root()];
        for &n in tree.order() {
            let children = tree.children_of(n);
            assert!(children.windows(2).all(|w| w[0] < w[1]), "children sorted");
            for &c in children {
                assert_eq!(tree.parent_of(c), Some(n));
                seen.push(c);
            }
        }
        seen.sort_unstable();
        let mut all = tree.order().to_vec();
        all.sort_unstable();
        assert_eq!(seen, all);
    }

    #[test]
    fn scratch_reuse_marks_and_recycling() {
        let table = line_table(6);
        let mut scratch = FloodScratch::new();
        let a = scratch.build(NodeId(0), &table, |n| n.index() < 3);
        assert!(scratch.in_last_tree(2));
        assert!(!scratch.in_last_tree(4));
        scratch.recycle(a);
        // The next build reuses the recycled buffers and resets the marks.
        let b = scratch.build(NodeId(5), &table, |n| n.index() >= 3);
        assert!(scratch.in_last_tree(4));
        assert!(!scratch.in_last_tree(2));
        assert_eq!(b.root(), NodeId(5));
        assert_eq!(b.len(), 3);
        assert_eq!(b.parent_of(NodeId(3)), Some(NodeId(4)));
    }
}
