//! Geographic routing: greedy forwarding and area anycast.
//!
//! MobiQuery relays prefetch messages from one pickup point to the next with
//! an *area anycast* (the paper cites SPEED): the message is forwarded
//! greedily towards the pickup point's coordinates over the always-awake
//! backbone, and accepted by the first node within `Rp` of the target. That
//! node becomes the collector for the corresponding query area.

use crate::neighbors::NeighborTable;
use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use wsn_geom::Point;

/// Why a route could not be completed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RouteError {
    /// Greedy forwarding reached a node with no neighbour closer to the
    /// destination (a routing void) before entering the acceptance radius.
    Void {
        /// The node where forwarding stopped.
        stuck_at: NodeId,
        /// Distance from that node to the destination, in metres.
        remaining_m: f64,
    },
    /// The source node index was out of range of the topology.
    UnknownSource(NodeId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Void {
                stuck_at,
                remaining_m,
            } => write!(
                f,
                "greedy forwarding stuck at {stuck_at} with {remaining_m:.1} m remaining"
            ),
            RouteError::UnknownSource(id) => write!(f, "unknown source node {id}"),
        }
    }
}

impl Error for RouteError {}

/// A completed route: the sequence of nodes a message traverses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutePath {
    /// Nodes visited, starting with the source and ending with the node that
    /// accepted the message.
    pub hops: Vec<NodeId>,
    /// Distance from the final node to the geographic destination, in metres.
    pub final_distance_m: f64,
}

impl RoutePath {
    /// Number of transmissions needed to traverse the route
    /// (`hops.len() - 1`, and 0 when the source itself accepts).
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// The node that accepted the message, or `None` for an empty path.
    ///
    /// Routes produced by [`route_greedy`] always contain at least the
    /// source, but `hops` is public, so a hand-built path may be empty;
    /// that case is an absent destination rather than a panic.
    pub fn destination(&self) -> Option<NodeId> {
        self.hops.last().copied()
    }
}

/// Chooses the next hop by greedy geographic forwarding.
///
/// Among `candidates` (typically the backbone neighbours of the current
/// node), returns the one closest to `destination` provided it is strictly
/// closer than the current node; `None` indicates a routing void.
pub fn greedy_next_hop(
    current: Point,
    destination: Point,
    candidates: impl IntoIterator<Item = (NodeId, Point)>,
) -> Option<NodeId> {
    let current_d = current.distance_sq_to(destination);
    let mut best: Option<(NodeId, f64)> = None;
    for (id, pos) in candidates {
        let d = pos.distance_sq_to(destination);
        if d + 1e-9 < current_d {
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((id, d)),
            }
        }
    }
    best.map(|(id, _)| id)
}

/// Routes a message from `source` towards the geographic point `destination`
/// by greedy forwarding over the nodes for which `eligible` returns `true`
/// (typically "is a backbone node"), accepting at the first node within
/// `accept_radius_m` of the destination.
///
/// # Errors
///
/// Returns [`RouteError::Void`] when greedy forwarding gets stuck outside the
/// acceptance radius, and [`RouteError::UnknownSource`] for an out-of-range
/// source id.
pub fn route_greedy(
    source: NodeId,
    destination: Point,
    accept_radius_m: f64,
    positions: &[Point],
    neighbors: &NeighborTable,
    mut eligible: impl FnMut(NodeId) -> bool,
) -> Result<RoutePath, RouteError> {
    if source.index() >= positions.len() {
        return Err(RouteError::UnknownSource(source));
    }
    let mut hops = vec![source];
    let mut current = source;
    loop {
        let current_pos = positions[current.index()];
        let dist = current_pos.distance_to(destination);
        if dist <= accept_radius_m {
            return Ok(RoutePath {
                hops,
                final_distance_m: dist,
            });
        }
        let next = greedy_next_hop(
            current_pos,
            destination,
            neighbors
                .neighbors_of(current)
                .iter()
                .copied()
                .filter(|&n| eligible(n))
                .map(|n| (n, positions[n.index()])),
        );
        match next {
            Some(n) => {
                hops.push(n);
                current = n;
            }
            None => {
                return Err(RouteError::Void {
                    stuck_at: current,
                    remaining_m: dist,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Rect;

    fn grid_topology() -> (Vec<Point>, NeighborTable) {
        // 5x5 grid, 100 m spacing, 105 m range => 4-connected grid.
        let mut positions = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                positions.push(Point::new(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        let table = NeighborTable::build(&positions, Rect::square(450.0), 105.0);
        (positions, table)
    }

    #[test]
    fn greedy_next_hop_picks_closest_progressing_candidate() {
        let current = Point::new(0.0, 0.0);
        let dst = Point::new(100.0, 0.0);
        let candidates = vec![
            (NodeId(1), Point::new(40.0, 0.0)),
            (NodeId(2), Point::new(60.0, 10.0)),
            (NodeId(3), Point::new(-20.0, 0.0)),
        ];
        assert_eq!(greedy_next_hop(current, dst, candidates), Some(NodeId(2)));
    }

    #[test]
    fn greedy_next_hop_none_when_no_progress() {
        let current = Point::new(0.0, 0.0);
        let dst = Point::new(10.0, 0.0);
        let candidates = vec![
            (NodeId(1), Point::new(-40.0, 0.0)),
            (NodeId(2), Point::new(0.0, 50.0)),
        ];
        assert_eq!(greedy_next_hop(current, dst, candidates), None);
    }

    #[test]
    fn route_across_grid_reaches_destination() {
        let (positions, table) = grid_topology();
        let path = route_greedy(
            NodeId(0),
            Point::new(400.0, 400.0),
            50.0,
            &positions,
            &table,
            |_| true,
        )
        .expect("route should exist");
        assert_eq!(path.destination(), Some(NodeId(24)));
        assert_eq!(path.hop_count(), 8); // 4 east + 4 north in some order
        assert!(path.final_distance_m <= 50.0);
        // Path must be connected: every consecutive pair within range.
        for pair in path.hops.windows(2) {
            assert!(table.are_neighbors(pair[0], pair[1]));
        }
    }

    #[test]
    fn route_accepts_at_source_when_already_close() {
        let (positions, table) = grid_topology();
        let path = route_greedy(
            NodeId(12),
            Point::new(210.0, 210.0),
            50.0,
            &positions,
            &table,
            |_| true,
        )
        .unwrap();
        assert_eq!(path.hop_count(), 0);
        assert_eq!(path.destination(), Some(NodeId(12)));
    }

    #[test]
    fn route_fails_when_backbone_is_disconnected() {
        let (positions, table) = grid_topology();
        // Only allow the first column to relay: routing east immediately hits a void.
        let result = route_greedy(
            NodeId(0),
            Point::new(400.0, 0.0),
            30.0,
            &positions,
            &table,
            |n| n.index() % 5 == 0,
        );
        match result {
            Err(RouteError::Void { stuck_at, .. }) => assert_eq!(stuck_at.index() % 5, 0),
            other => panic!("expected a void, got {other:?}"),
        }
    }

    #[test]
    fn unknown_source_is_rejected() {
        let (positions, table) = grid_topology();
        let err = route_greedy(
            NodeId(99),
            Point::new(0.0, 0.0),
            10.0,
            &positions,
            &table,
            |_| true,
        )
        .unwrap_err();
        assert_eq!(err, RouteError::UnknownSource(NodeId(99)));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn hop_progress_is_monotone_toward_destination() {
        let (positions, table) = grid_topology();
        let dst = Point::new(390.0, 10.0);
        let path = route_greedy(NodeId(20), dst, 40.0, &positions, &table, |_| true).unwrap();
        let mut last = f64::INFINITY;
        for hop in &path.hops {
            let d = positions[hop.index()].distance_to(dst);
            assert!(d < last + 1e-9, "distance must shrink along the route");
            last = d;
        }
    }
}
