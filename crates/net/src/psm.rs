//! Power-save (duty-cycle) sleep schedules.
//!
//! The paper assumes IEEE 802.11 PSM-style operation: clocks are synchronised
//! and every duty-cycled node is awake for an `active_window` (100 ms in the
//! evaluation) at the start of every `sleep_period` (3–15 s), sleeping the
//! rest of the time. Backbone nodes buffer traffic destined to a sleeping
//! neighbour and deliver it during the neighbour's next active window — that
//! buffering delay (up to a full sleep period) is precisely why prefetching is
//! needed, so this module is the heart of the reproduction's temporal model.

use serde::{Deserialize, Serialize};
use std::fmt;
use wsn_sim::{Duration, SimTime};

/// A periodic wake/sleep schedule (synchronised beacon-interval model).
///
/// The node is awake during `[k·period + offset, k·period + offset + active_window)`
/// for every integer `k ≥ 0`, and asleep otherwise.
///
/// ```
/// use wsn_net::SleepSchedule;
/// use wsn_sim::{Duration, SimTime};
///
/// // 100 ms active window every 15 s — the paper's lowest duty cycle.
/// let s = SleepSchedule::new(Duration::from_secs(15), Duration::from_millis(100));
/// assert!(s.is_awake(SimTime::from_millis(50)));
/// assert!(!s.is_awake(SimTime::from_secs(5)));
/// assert_eq!(s.next_wake(SimTime::from_secs(5)), SimTime::from_secs(15));
/// assert!((s.duty_cycle() - 0.1 / 15.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SleepSchedule {
    period: Duration,
    active_window: Duration,
    offset: Duration,
}

impl SleepSchedule {
    /// Creates a schedule with the given sleep period and active window and a
    /// zero phase offset (all nodes synchronised, as the paper assumes).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or the active window exceeds the period.
    pub fn new(period: Duration, active_window: Duration) -> Self {
        Self::with_offset(period, active_window, Duration::ZERO)
    }

    /// Creates a schedule with an explicit phase offset, for experiments with
    /// unsynchronised duty cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, the active window exceeds the period, or
    /// the offset is not smaller than the period.
    pub fn with_offset(period: Duration, active_window: Duration, offset: Duration) -> Self {
        assert!(!period.is_zero(), "sleep period must be positive");
        assert!(
            active_window <= period,
            "active window ({active_window}) must not exceed the sleep period ({period})"
        );
        assert!(offset < period, "offset must be smaller than the period");
        SleepSchedule {
            period,
            active_window,
            offset,
        }
    }

    /// The paper's evaluation schedule: `sleep_period_secs` seconds per cycle
    /// with a 100 ms active window.
    pub fn paper_default(sleep_period_secs: f64) -> Self {
        SleepSchedule::new(
            Duration::from_secs_f64(sleep_period_secs),
            Duration::from_millis(100),
        )
    }

    /// Full cycle length (the "sleep period" in the paper's terminology).
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Length of the awake window at the start of every cycle.
    pub fn active_window(&self) -> Duration {
        self.active_window
    }

    /// Phase offset of this node's cycle.
    pub fn offset(&self) -> Duration {
        self.offset
    }

    /// Fraction of time the node is awake, in `[0, 1]`.
    pub fn duty_cycle(&self) -> f64 {
        self.active_window.as_secs_f64() / self.period.as_secs_f64()
    }

    /// Position of `t` within the cycle, in `[0, period)`.
    fn phase(&self, t: SimTime) -> Duration {
        let p = self.period.as_micros();
        let shifted = t.as_micros() + p - (self.offset.as_micros() % p);
        Duration::from_micros(shifted % p)
    }

    /// Returns `true` when the node's radio is on at time `t` according to the
    /// periodic schedule (ignoring any protocol-requested wake overrides).
    pub fn is_awake(&self, t: SimTime) -> bool {
        self.phase(t) < self.active_window
    }

    /// The start of the first active window at or after `t`.
    ///
    /// If `t` falls inside an active window, `t` itself is returned.
    pub fn next_awake_instant(&self, t: SimTime) -> SimTime {
        if self.is_awake(t) {
            t
        } else {
            self.next_wake(t)
        }
    }

    /// The start of the next active window strictly after the current phase
    /// position (i.e. the next wake-up edge at or after `t`, excluding an
    /// active window already in progress).
    pub fn next_wake(&self, t: SimTime) -> SimTime {
        let phase = self.phase(t);
        let remaining = self.period - phase;
        if phase == Duration::ZERO {
            t
        } else {
            t + remaining
        }
    }

    /// The end of the active window that contains `t`, if `t` is inside one.
    pub fn active_window_end(&self, t: SimTime) -> Option<SimTime> {
        if self.is_awake(t) {
            let phase = self.phase(t);
            Some(t + (self.active_window - phase))
        } else {
            None
        }
    }

    /// Delay until a frame handed to a sleeping neighbour at time `t` can be
    /// delivered: zero if the neighbour is awake, otherwise the wait until its
    /// next active window begins.
    ///
    /// This is the buffering delay the paper's Section 1 example describes
    /// (up to 14.85 s for a 1 % duty cycle on a 15 s period).
    pub fn delivery_delay(&self, t: SimTime) -> Duration {
        if self.is_awake(t) {
            Duration::ZERO
        } else {
            self.next_wake(t) - t
        }
    }

    /// The worst-case delivery delay: one full sleep period minus the active
    /// window.
    pub fn worst_case_delay(&self) -> Duration {
        self.period - self.active_window
    }
}

impl fmt::Display for SleepSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sleep({} awake / {} cycle, {:.2}% duty)",
            self.active_window,
            self.period,
            self.duty_cycle() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_15s() -> SleepSchedule {
        SleepSchedule::paper_default(15.0)
    }

    #[test]
    fn duty_cycle_matches_paper_example() {
        // 150 ms / 15 s = 1% in the intro's MICA2 example; our evaluation
        // default is 100 ms / 15 s ≈ 0.67%.
        let s = SleepSchedule::new(Duration::from_secs(15), Duration::from_millis(150));
        assert!((s.duty_cycle() - 0.01).abs() < 1e-9);
        assert!((paper_15s().duty_cycle() - 0.1 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn awake_only_during_active_window() {
        let s = paper_15s();
        assert!(s.is_awake(SimTime::ZERO));
        assert!(s.is_awake(SimTime::from_millis(99)));
        assert!(!s.is_awake(SimTime::from_millis(100)));
        assert!(!s.is_awake(SimTime::from_secs(14)));
        assert!(s.is_awake(SimTime::from_secs(15)));
        assert!(s.is_awake(SimTime::from_millis(15_050)));
    }

    #[test]
    fn next_wake_is_next_cycle_start() {
        let s = paper_15s();
        assert_eq!(s.next_wake(SimTime::from_secs(5)), SimTime::from_secs(15));
        assert_eq!(
            s.next_wake(SimTime::from_millis(100)),
            SimTime::from_secs(15)
        );
        assert_eq!(s.next_wake(SimTime::from_secs(15)), SimTime::from_secs(15));
        assert_eq!(
            s.next_wake(SimTime::from_millis(15_001)),
            SimTime::from_secs(30)
        );
    }

    #[test]
    fn next_awake_instant_inside_window_is_now() {
        let s = paper_15s();
        assert_eq!(
            s.next_awake_instant(SimTime::from_millis(50)),
            SimTime::from_millis(50)
        );
        assert_eq!(
            s.next_awake_instant(SimTime::from_secs(7)),
            SimTime::from_secs(15)
        );
    }

    #[test]
    fn delivery_delay_bounds() {
        let s = paper_15s();
        assert_eq!(s.delivery_delay(SimTime::from_millis(10)), Duration::ZERO);
        let d = s.delivery_delay(SimTime::from_millis(200));
        assert_eq!(d, Duration::from_millis(14_800));
        assert!(d <= s.worst_case_delay());
        assert_eq!(s.worst_case_delay(), Duration::from_millis(14_900));
    }

    #[test]
    fn active_window_end_only_when_awake() {
        let s = paper_15s();
        assert_eq!(
            s.active_window_end(SimTime::from_millis(30)),
            Some(SimTime::from_millis(100))
        );
        assert_eq!(s.active_window_end(SimTime::from_secs(3)), None);
    }

    #[test]
    fn offset_shifts_the_window() {
        let s = SleepSchedule::with_offset(
            Duration::from_secs(10),
            Duration::from_millis(100),
            Duration::from_secs(2),
        );
        assert!(!s.is_awake(SimTime::ZERO));
        assert!(s.is_awake(SimTime::from_secs(2)));
        assert!(s.is_awake(SimTime::from_millis(2_050)));
        assert!(!s.is_awake(SimTime::from_millis(2_100)));
        assert_eq!(s.next_wake(SimTime::from_secs(3)), SimTime::from_secs(12));
    }

    #[test]
    #[should_panic]
    fn active_window_longer_than_period_panics() {
        let _ = SleepSchedule::new(Duration::from_secs(1), Duration::from_secs(2));
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let _ = SleepSchedule::new(Duration::ZERO, Duration::ZERO);
    }

    #[test]
    fn display_mentions_duty_cycle() {
        let s = paper_15s();
        assert!(format!("{s}").contains('%'));
    }
}
