//! MAC-layer timing, backoff and contention-induced loss.
//!
//! The reproduction does not simulate 802.11 frame exchanges bit-by-bit;
//! instead each hop is charged
//!
//! * a transmission time (`frame bits / bandwidth`),
//! * a random CSMA backoff that grows with the number of concurrent
//!   transmissions in interference range, and
//! * a loss probability that also grows with that contention level.
//!
//! This is the standard abstraction used by protocol-level simulators and is
//! sufficient to reproduce the paper's key contention result: greedy
//! prefetching sets up many query trees at once, drives the contention level
//! up, and loses packets — which is exactly what Figure 5's high variance and
//! Figure 4's MQ-GP degradation show.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use wsn_geom::Point;
use wsn_sim::{Duration, SimRng, SimTime};

/// MAC parameters shared by all nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacConfig {
    /// Fixed per-frame MAC/PHY header overhead, in bytes.
    pub header_bytes: usize,
    /// Minimum random backoff before any transmission.
    pub base_backoff: Duration,
    /// Additional expected backoff per concurrent contender.
    pub backoff_per_contender: Duration,
    /// Processing delay charged per hop (route lookup, queueing).
    pub per_hop_processing: Duration,
    /// Baseline frame-loss probability with no contention.
    pub base_loss: f64,
    /// Additional loss probability per concurrent contender beyond the first.
    pub loss_per_contender: f64,
    /// Upper bound on the loss probability however bad contention gets.
    pub max_loss: f64,
    /// Interference range in metres within which transmissions contend.
    pub interference_range_m: f64,
}

impl MacConfig {
    /// Defaults tuned to the paper's evaluation: light losses when the
    /// network is quiet, heavy losses once several query-tree setups overlap.
    pub fn paper_default() -> Self {
        MacConfig {
            header_bytes: 34,
            base_backoff: Duration::from_micros(500),
            backoff_per_contender: Duration::from_millis(3),
            per_hop_processing: Duration::from_micros(300),
            base_loss: 0.005,
            loss_per_contender: 0.05,
            max_loss: 0.93,
            interference_range_m: 250.0,
        }
    }

    /// Expected backoff delay when `contenders` other transmissions are in
    /// progress nearby (deterministic part; jitter is added by the caller).
    pub fn backoff(&self, contenders: usize) -> Duration {
        self.base_backoff + self.backoff_per_contender.saturating_mul(contenders as u64)
    }

    /// Probability that a frame is lost when `contenders` other transmissions
    /// are in progress nearby.
    pub fn loss_probability(&self, contenders: usize) -> f64 {
        (self.base_loss + self.loss_per_contender * contenders as f64).min(self.max_loss)
    }

    /// Samples the per-hop MAC delay (backoff + processing + jitter) for a
    /// transmission contending with `contenders` others.
    pub fn sample_hop_delay(&self, contenders: usize, rng: &mut SimRng) -> Duration {
        let backoff = self.backoff(contenders);
        // Uniform jitter in [0, backoff] models the random slot choice.
        let jitter =
            Duration::from_secs_f64(rng.gen_range_f64(0.0, backoff.as_secs_f64().max(1e-9)));
        self.per_hop_processing + backoff + jitter
    }

    /// Samples whether a frame is lost under the given contention level.
    pub fn sample_loss(&self, contenders: usize, rng: &mut SimRng) -> bool {
        rng.gen_bool(self.loss_probability(contenders))
    }
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig::paper_default()
    }
}

/// Tracks in-flight transmissions so that the contention level around a
/// location can be queried.
///
/// Each registered transmission contributes to the contention count of any
/// later transmission whose source lies within the interference range and
/// whose airtime overlaps.
///
/// ```
/// use wsn_net::{ContentionTracker, MacConfig};
/// use wsn_net::node::NodeId;
/// use wsn_geom::Point;
/// use wsn_sim::{Duration, SimTime};
///
/// let mut tracker = ContentionTracker::new(200.0);
/// let t0 = SimTime::ZERO;
/// tracker.register(NodeId(0), Point::new(0.0, 0.0), t0, t0 + Duration::from_millis(5));
/// assert_eq!(tracker.contenders(Point::new(50.0, 0.0), t0 + Duration::from_millis(1)), 1);
/// assert_eq!(tracker.contenders(Point::new(1000.0, 0.0), t0 + Duration::from_millis(1)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ContentionTracker {
    interference_range: f64,
    active: Vec<Transmission>,
    /// Total number of transmissions ever registered (for statistics).
    registered: u64,
}

#[derive(Debug, Clone, Copy)]
struct Transmission {
    #[allow(dead_code)] // kept for debugging / future per-node stats
    source: NodeId,
    position: Point,
    end: SimTime,
}

impl ContentionTracker {
    /// Creates a tracker with the given interference range in metres.
    pub fn new(interference_range_m: f64) -> Self {
        ContentionTracker {
            interference_range: interference_range_m,
            active: Vec::new(),
            registered: 0,
        }
    }

    /// Registers a transmission from `source` located at `position` occupying
    /// the channel during `[start, end)`.
    pub fn register(&mut self, source: NodeId, position: Point, start: SimTime, end: SimTime) {
        debug_assert!(end >= start);
        self.prune(start);
        self.registered += 1;
        self.active.push(Transmission {
            source,
            position,
            end,
        });
    }

    /// Number of transmissions still in flight at `now` within interference
    /// range of `position`.
    pub fn contenders(&self, position: Point, now: SimTime) -> usize {
        let r_sq = self.interference_range * self.interference_range;
        self.active
            .iter()
            .filter(|t| t.end > now && t.position.distance_sq_to(position) <= r_sq)
            .count()
    }

    /// Discards transmissions that finished before `now`.
    pub fn prune(&mut self, now: SimTime) {
        self.active.retain(|t| t.end > now);
    }

    /// Total number of transmissions registered over the tracker's lifetime.
    pub fn registered_total(&self) -> u64 {
        self.registered
    }

    /// Number of transmissions currently tracked (including finished ones not
    /// yet pruned).
    pub fn tracked(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MacConfig {
        MacConfig::paper_default()
    }

    #[test]
    fn backoff_grows_with_contention() {
        let c = cfg();
        assert!(c.backoff(0) < c.backoff(1));
        assert!(c.backoff(1) < c.backoff(10));
        assert_eq!(c.backoff(0), c.base_backoff);
    }

    #[test]
    fn loss_probability_grows_and_saturates() {
        let c = cfg();
        assert!(c.loss_probability(0) < c.loss_probability(3));
        assert!(c.loss_probability(3) < c.loss_probability(10));
        assert!(c.loss_probability(1_000) <= c.max_loss + 1e-12);
    }

    #[test]
    fn sampled_delay_at_least_deterministic_part() {
        let c = cfg();
        let mut rng = SimRng::seed_from_u64(1);
        for contenders in [0usize, 2, 8] {
            for _ in 0..100 {
                let d = c.sample_hop_delay(contenders, &mut rng);
                assert!(d >= c.per_hop_processing + c.backoff(contenders));
                assert!(d <= c.per_hop_processing + c.backoff(contenders) * 2);
            }
        }
    }

    #[test]
    fn sample_loss_matches_probability_roughly() {
        let c = MacConfig {
            base_loss: 0.0,
            loss_per_contender: 0.1,
            max_loss: 1.0,
            ..cfg()
        };
        let mut rng = SimRng::seed_from_u64(2);
        let n = 20_000;
        let losses = (0..n).filter(|_| c.sample_loss(5, &mut rng)).count();
        let observed = losses as f64 / n as f64;
        assert!((observed - 0.5).abs() < 0.02, "observed loss {observed}");
    }

    #[test]
    fn tracker_counts_only_overlapping_nearby_transmissions() {
        let mut tr = ContentionTracker::new(100.0);
        let t = |ms| SimTime::from_millis(ms);
        tr.register(NodeId(0), Point::new(0.0, 0.0), t(0), t(10));
        tr.register(NodeId(1), Point::new(50.0, 0.0), t(0), t(10));
        tr.register(NodeId(2), Point::new(500.0, 0.0), t(0), t(10));
        // Two nearby transmissions still in flight at t=5.
        assert_eq!(tr.contenders(Point::new(10.0, 0.0), t(5)), 2);
        // After they end, none contend.
        assert_eq!(tr.contenders(Point::new(10.0, 0.0), t(11)), 0);
        // Far away location only sees the far transmission.
        assert_eq!(tr.contenders(Point::new(520.0, 0.0), t(5)), 1);
    }

    #[test]
    fn tracker_prunes_finished_transmissions() {
        let mut tr = ContentionTracker::new(100.0);
        for i in 0..10 {
            tr.register(
                NodeId(i),
                Point::new(0.0, 0.0),
                SimTime::from_millis(i as u64),
                SimTime::from_millis(i as u64 + 1),
            );
        }
        assert_eq!(tr.registered_total(), 10);
        tr.prune(SimTime::from_secs(1));
        assert_eq!(tr.tracked(), 0);
    }
}
