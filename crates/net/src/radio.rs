//! Radio configuration, states and power profiles.

use serde::{Deserialize, Serialize};
use std::fmt;
use wsn_sim::Duration;

/// The operating state of a node's radio at a point in time.
///
/// Energy accounting integrates the time spent in each state against a
/// [`RadioPowerProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioState {
    /// Actively transmitting a frame.
    Transmit,
    /// Actively receiving a frame.
    Receive,
    /// Radio on, listening but not transferring data.
    Idle,
    /// Radio off (power-save sleep).
    Sleep,
}

impl fmt::Display for RadioState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RadioState::Transmit => "tx",
            RadioState::Receive => "rx",
            RadioState::Idle => "idle",
            RadioState::Sleep => "sleep",
        };
        f.write_str(s)
    }
}

/// Power drawn by the radio in each state, in milliwatts.
///
/// The defaults are the Cabletron 802.11 card measurements the paper adopts
/// from Chen et al. (SPAN): 1400 mW transmit, 1000 mW receive, 830 mW idle and
/// 130 mW sleep. A MICA2-class profile is provided for the analysis examples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioPowerProfile {
    /// Transmit power draw (mW).
    pub tx_mw: f64,
    /// Receive power draw (mW).
    pub rx_mw: f64,
    /// Idle-listening power draw (mW).
    pub idle_mw: f64,
    /// Sleep power draw (mW).
    pub sleep_mw: f64,
}

impl RadioPowerProfile {
    /// The 802.11 (Cabletron) profile used in the paper's Section 6.4:
    /// 1400 / 1000 / 830 / 130 mW.
    pub const IEEE_802_11: RadioPowerProfile = RadioPowerProfile {
        tx_mw: 1400.0,
        rx_mw: 1000.0,
        idle_mw: 830.0,
        sleep_mw: 130.0,
    };

    /// A MICA2-mote-class profile (CC1000 radio, rough datasheet numbers),
    /// used only by the analytical examples that talk about motes.
    pub const MICA2: RadioPowerProfile = RadioPowerProfile {
        tx_mw: 76.2,
        rx_mw: 36.0,
        idle_mw: 34.0,
        sleep_mw: 0.003,
    };

    /// Power draw (mW) in the given state.
    pub fn power_mw(&self, state: RadioState) -> f64 {
        match state {
            RadioState::Transmit => self.tx_mw,
            RadioState::Receive => self.rx_mw,
            RadioState::Idle => self.idle_mw,
            RadioState::Sleep => self.sleep_mw,
        }
    }

    /// Energy in millijoules consumed by spending `time` in `state`.
    pub fn energy_mj(&self, state: RadioState, time: Duration) -> f64 {
        self.power_mw(state) * time.as_secs_f64()
    }
}

impl Default for RadioPowerProfile {
    fn default() -> Self {
        RadioPowerProfile::IEEE_802_11
    }
}

/// Static radio parameters shared by every node in a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Communication range in metres (unit-disk model). Paper default: 105 m.
    pub comm_range_m: f64,
    /// Raw link bandwidth in bits per second. Paper default: 2 Mb/s.
    pub bandwidth_bps: f64,
    /// Power profile for energy accounting.
    pub power: RadioPowerProfile,
}

impl RadioConfig {
    /// The evaluation settings of Section 6.1: 105 m range, 2 Mb/s, 802.11 power.
    pub fn paper_default() -> Self {
        RadioConfig {
            comm_range_m: 105.0,
            bandwidth_bps: 2_000_000.0,
            power: RadioPowerProfile::IEEE_802_11,
        }
    }

    /// A MICA2 mote: 38.4 kb/s radio, shorter practical range.
    pub fn mica2() -> Self {
        RadioConfig {
            comm_range_m: 50.0,
            bandwidth_bps: 38_400.0,
            power: RadioPowerProfile::MICA2,
        }
    }

    /// Time on air for a frame of `payload_bytes` application bytes plus
    /// `overhead_bytes` of header, at this radio's bandwidth.
    pub fn tx_duration(&self, payload_bytes: usize, overhead_bytes: usize) -> Duration {
        let bits = ((payload_bytes + overhead_bytes) * 8) as f64;
        Duration::from_secs_f64(bits / self.bandwidth_bps)
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_power_profile_values() {
        let p = RadioPowerProfile::IEEE_802_11;
        assert_eq!(p.power_mw(RadioState::Transmit), 1400.0);
        assert_eq!(p.power_mw(RadioState::Receive), 1000.0);
        assert_eq!(p.power_mw(RadioState::Idle), 830.0);
        assert_eq!(p.power_mw(RadioState::Sleep), 130.0);
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let p = RadioPowerProfile::IEEE_802_11;
        let e1 = p.energy_mj(RadioState::Idle, Duration::from_secs(1));
        let e2 = p.energy_mj(RadioState::Idle, Duration::from_secs(2));
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        assert!((e1 - 830.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_is_cheapest_state() {
        let p = RadioPowerProfile::default();
        for s in [RadioState::Transmit, RadioState::Receive, RadioState::Idle] {
            assert!(p.power_mw(RadioState::Sleep) < p.power_mw(s));
        }
    }

    #[test]
    fn tx_duration_matches_bandwidth() {
        let cfg = RadioConfig::paper_default();
        // 250 bytes at 2 Mb/s = 1 ms.
        let d = cfg.tx_duration(226, 24);
        assert!((d.as_secs_f64() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn mica2_is_much_slower() {
        let fast = RadioConfig::paper_default().tx_duration(60, 0);
        let slow = RadioConfig::mica2().tx_duration(60, 0);
        assert!(slow.as_secs_f64() > 40.0 * fast.as_secs_f64());
    }

    #[test]
    fn display_strings_are_nonempty() {
        for s in [
            RadioState::Transmit,
            RadioState::Receive,
            RadioState::Idle,
            RadioState::Sleep,
        ] {
            assert!(!format!("{s}").is_empty());
        }
    }
}
