//! Node identity and roles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a sensor node: an index into the deployment's node list.
///
/// Using a newtype (rather than a bare `usize`) keeps node indices from being
/// confused with hop counts, sequence numbers and the other small integers
/// that flow through protocol code.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

/// The power-management role a node plays in the network.
///
/// The paper assumes a power-management protocol (CCP, SPAN or GAF) keeps a
/// small **backbone** of always-active nodes that preserves connectivity and
/// sensing coverage, while every other node runs a low duty cycle and sleeps
/// most of the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Always-active backbone node; relays traffic with no wake-up delay.
    Backbone,
    /// Duty-cycled node: radio off except during periodic active windows
    /// (and explicitly re-scheduled wake-ups requested by the protocol).
    DutyCycled,
}

impl NodeRole {
    /// Returns `true` for backbone nodes.
    pub const fn is_backbone(self) -> bool {
        matches!(self, NodeRole::Backbone)
    }
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRole::Backbone => write!(f, "backbone"),
            NodeRole::DutyCycled => write!(f, "duty-cycled"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_usize() {
        let id = NodeId::from(17usize);
        assert_eq!(id.index(), 17);
        assert_eq!(usize::from(id), 17);
        assert_eq!(format!("{id}"), "n17");
    }

    #[test]
    fn node_ids_are_ordered_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }

    #[test]
    fn role_predicates() {
        assert!(NodeRole::Backbone.is_backbone());
        assert!(!NodeRole::DutyCycled.is_backbone());
        assert_ne!(format!("{}", NodeRole::Backbone), "");
        assert_ne!(format!("{}", NodeRole::DutyCycled), "");
    }
}
