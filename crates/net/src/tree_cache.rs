//! A reference-counted cache of flood trees shared between concurrent
//! queries.
//!
//! One mobile user builds one query tree per period; `N` users whose
//! predicted pickup areas coincide would naively build `N` identical trees
//! over the same backbone — `N` floods, `N` copies of the CSR buffers, `N`
//! rounds of sleeping-node wake-ups. The [`TreeCache`] multiplexes them: a
//! tree is keyed by its construction inputs ([`TreeKey`]: root collector,
//! quantised area centre, flood radius), built once through the owned
//! [`FloodScratch`], and handed out as a copyable [`TreeHandle`] with a
//! reference count. The last release recycles the tree's buffers into the
//! scratch pool, so the steady state allocates nothing — exactly the
//! discipline the single-user world already follows, extended to sharing.
//!
//! Because the key captures *all* build inputs, a cache hit returns a tree
//! byte-identical to the one a fresh build would produce; the naive
//! one-tree-per-query path therefore serves as a drop-in reference
//! implementation, and `tests/tree_cache_equivalence.rs` pins the
//! equivalence property-style.

use crate::flood::{FloodScratch, FloodTree};
use crate::neighbors::NeighborTable;
use crate::node::NodeId;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use wsn_geom::Point;

/// A [`TreeCache`] access through a handle whose tree is no longer alive.
///
/// Every fallible cache operation reports this instead of panicking, so a
/// long-lived service that is handed a stale or double-released handle by a
/// client can turn the bug into an error response instead of aborting the
/// whole daemon. The refcount discipline is still load-bearing — internal
/// simulation code treats this error as a programming bug (and the
/// equivalence suites assert it never happens there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeCacheError {
    slot: u32,
}

impl TreeCacheError {
    fn dead(handle: TreeHandle) -> Self {
        TreeCacheError { slot: handle.0 }
    }

    /// The slot index of the offending handle.
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

impl fmt::Display for TreeCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tree handle {} is not alive (already fully released)",
            self.slot
        )
    }
}

impl Error for TreeCacheError {}

/// The complete set of inputs a cached flood tree was built from.
///
/// Two acquisitions share a tree exactly when their keys are equal: the same
/// root collector, bit-identical area centre coordinates and bit-identical
/// flood radius. Centres are compared by their IEEE-754 bit patterns, so
/// callers that want spatial sharing must quantise the centre *before*
/// building the key (the multi-user world snaps pickup points to a lattice);
/// the cache itself never rounds, which is what keeps hits provably
/// equivalent to fresh builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeKey {
    root: NodeId,
    center_x_bits: u64,
    center_y_bits: u64,
    radius_bits: u64,
    /// Topology epoch the tree was built in. A world whose backbone changes
    /// over time (node churn) bumps its epoch on every change, so trees
    /// flooded over the old topology are never shared with installs issued
    /// after it — the root/centre/radius triple alone no longer pins the tree
    /// content once the underlying neighbour table can differ.
    epoch: u32,
}

impl TreeKey {
    /// Builds the key for a flood rooted at `root` spanning nodes within
    /// `radius_m` of `center`, in the initial topology epoch (0) — the right
    /// key for static deployments.
    pub fn new(root: NodeId, center: Point, radius_m: f64) -> Self {
        TreeKey {
            root,
            center_x_bits: center.x.to_bits(),
            center_y_bits: center.y.to_bits(),
            radius_bits: radius_m.to_bits(),
            epoch: 0,
        }
    }

    /// The same key re-tagged with a topology `epoch`; keys from different
    /// epochs never compare equal, so they never share a cached tree.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    /// The topology epoch this key was issued in.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The root (collector) node the tree is flooded from.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The area centre the key was built from.
    pub fn center(&self) -> Point {
        Point::new(
            f64::from_bits(self.center_x_bits),
            f64::from_bits(self.center_y_bits),
        )
    }

    /// The flood radius the key was built from, in metres.
    pub fn radius_m(&self) -> f64 {
        f64::from_bits(self.radius_bits)
    }
}

/// A counted reference to a tree living in a [`TreeCache`].
///
/// Handles are plain copyable indices: cheap to store in events and query
/// state. Every handle returned by [`TreeCache::acquire`] must eventually be
/// passed to [`TreeCache::release`] exactly once; the cache asserts against
/// stale handles in debug builds by checking slot occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeHandle(u32);

#[derive(Debug)]
struct CacheEntry {
    key: TreeKey,
    tree: FloodTree,
    refs: u32,
}

/// A slab of reference-counted flood trees keyed by their build inputs.
///
/// ```
/// use wsn_geom::{Point, Rect};
/// use wsn_net::{NeighborTable, NodeId, TreeCache, TreeKey};
///
/// let positions: Vec<Point> = (0..5).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
/// let table = NeighborTable::build(&positions, Rect::square(1000.0), 105.0);
/// let mut cache = TreeCache::new();
///
/// let key = TreeKey::new(NodeId(0), Point::new(0.0, 0.0), 500.0);
/// let (a, built_a) = cache.acquire(key, &table, |_| true);
/// let (b, built_b) = cache.acquire(key, &table, |_| true);
/// assert!(built_a && !built_b, "the second user shares the first tree");
/// assert_eq!(a, b);
/// assert_eq!(cache.refs(a), 2);
///
/// assert_eq!(cache.release(a), Ok(false));
/// assert_eq!(cache.release(b), Ok(true), "the last release frees the tree");
/// assert_eq!(cache.live_trees(), 0);
/// assert!(cache.release(b).is_err(), "a dead handle is an error, not a panic");
/// ```
#[derive(Debug, Default)]
pub struct TreeCache {
    slots: Vec<Option<CacheEntry>>,
    free: Vec<u32>,
    index: HashMap<TreeKey, u32>,
    scratch: FloodScratch,
    trees_built: u64,
    shared_hits: u64,
    peak_live: usize,
}

impl TreeCache {
    /// Creates an empty cache; buffers grow on first use.
    pub fn new() -> Self {
        TreeCache::default()
    }

    /// Returns a handle to the tree for `key`, building it (BFS flood of
    /// `member` nodes rooted at `key.root()`) only if no live tree with the
    /// same key exists. The boolean is `true` when this call built the tree
    /// and `false` when it joined an existing one.
    ///
    /// The `member` predicate is only consulted on a build; callers must
    /// derive it purely from the key (the multi-user world closes over the
    /// key's centre and radius), otherwise a hit could return a tree that a
    /// fresh build would not have produced.
    pub fn acquire(
        &mut self,
        key: TreeKey,
        neighbors: &NeighborTable,
        member: impl FnMut(NodeId) -> bool,
    ) -> (TreeHandle, bool) {
        if let Some(&slot) = self.index.get(&key) {
            if let Some(entry) = self.slots.get_mut(slot as usize).and_then(|s| s.as_mut()) {
                entry.refs += 1;
                self.shared_hits += 1;
                return (TreeHandle(slot), false);
            }
            // A stale index entry (a freed slot the map still points at)
            // would be a bookkeeping bug; drop it and rebuild rather than
            // panic, so one bad entry can't take down a resident service.
            self.index.remove(&key);
        }
        let tree = self.scratch.build(key.root(), neighbors, member);
        self.trees_built += 1;
        let entry = CacheEntry { key, tree, refs: 1 };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(entry);
                slot
            }
            None => {
                self.slots.push(Some(entry));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(key, slot);
        self.peak_live = self.peak_live.max(self.index.len());
        (TreeHandle(slot), true)
    }

    /// The tree behind `handle`.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeCacheError`] when the handle has already been fully
    /// released (or never came from this cache).
    pub fn tree(&self, handle: TreeHandle) -> Result<&FloodTree, TreeCacheError> {
        self.slots
            .get(handle.0 as usize)
            .and_then(|slot| slot.as_ref())
            .map(|e| &e.tree)
            .ok_or(TreeCacheError::dead(handle))
    }

    /// The key the tree behind `handle` was built from.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeCacheError`] when the handle has already been fully
    /// released (or never came from this cache).
    pub fn key(&self, handle: TreeHandle) -> Result<TreeKey, TreeCacheError> {
        self.slots
            .get(handle.0 as usize)
            .and_then(|slot| slot.as_ref())
            .map(|e| e.key)
            .ok_or(TreeCacheError::dead(handle))
    }

    /// Current reference count of the tree behind `handle` (0 for a slot
    /// that has been freed).
    pub fn refs(&self, handle: TreeHandle) -> u32 {
        self.slots
            .get(handle.0 as usize)
            .and_then(|slot| slot.as_ref())
            .map(|e| e.refs)
            .unwrap_or(0)
    }

    /// Drops one reference to the tree behind `handle`. Returns `Ok(true)`
    /// when this was the last reference: the tree is unmapped and its buffers
    /// are recycled for the next build.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeCacheError`] on a release through a dead handle (a
    /// double release). The refcount discipline is load-bearing for the
    /// sharing metrics, so a live tree is never corrupted: the offending
    /// release is simply refused, which lets a long-lived service answer a
    /// client's double-retire with an error instead of dying.
    pub fn release(&mut self, handle: TreeHandle) -> Result<bool, TreeCacheError> {
        let slot_ref = self
            .slots
            .get_mut(handle.0 as usize)
            .ok_or(TreeCacheError::dead(handle))?;
        let entry = slot_ref.as_mut().ok_or(TreeCacheError::dead(handle))?;
        entry.refs -= 1;
        if entry.refs > 0 {
            return Ok(false);
        }
        let entry = slot_ref.take().ok_or(TreeCacheError::dead(handle))?;
        self.index.remove(&entry.key);
        self.scratch.recycle(entry.tree);
        self.free.push(handle.0);
        Ok(true)
    }

    /// Number of distinct trees currently alive (reference count > 0).
    pub fn live_trees(&self) -> usize {
        self.index.len()
    }

    /// Highest number of simultaneously live trees seen so far.
    pub fn peak_live_trees(&self) -> usize {
        self.peak_live
    }

    /// Total number of trees actually built (cache misses).
    pub fn trees_built(&self) -> u64 {
        self.trees_built
    }

    /// Total number of acquisitions served by an existing tree.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Rect;

    fn line_table(n: usize) -> NeighborTable {
        let positions: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        NeighborTable::build(&positions, Rect::square(2000.0), 105.0)
    }

    fn key(root: usize, cx: f64, r: f64) -> TreeKey {
        TreeKey::new(NodeId(root), Point::new(cx, 0.0), r)
    }

    #[test]
    fn identical_keys_share_one_tree() {
        let table = line_table(8);
        let mut cache = TreeCache::new();
        let (a, built_a) = cache.acquire(key(0, 100.0, 800.0), &table, |_| true);
        let (b, built_b) = cache.acquire(key(0, 100.0, 800.0), &table, |_| true);
        assert!(built_a);
        assert!(!built_b);
        assert_eq!(a, b);
        assert_eq!(cache.refs(a), 2);
        assert_eq!(cache.trees_built(), 1);
        assert_eq!(cache.shared_hits(), 1);
        assert_eq!(cache.live_trees(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_trees() {
        let table = line_table(8);
        let mut cache = TreeCache::new();
        let (a, _) = cache.acquire(key(0, 100.0, 800.0), &table, |_| true);
        // Same root, different radius bits: a different construction.
        let (b, built_b) = cache.acquire(key(0, 100.0, 300.0), &table, |n| {
            n.index() as f64 * 100.0 <= 400.0
        });
        assert!(built_b);
        assert_ne!(a, b);
        assert_eq!(cache.live_trees(), 2);
        assert_eq!(cache.peak_live_trees(), 2);
        assert!(cache.tree(a).unwrap().len() > cache.tree(b).unwrap().len());
    }

    #[test]
    fn release_frees_only_at_the_last_reference() {
        let table = line_table(6);
        let mut cache = TreeCache::new();
        let k = key(2, 200.0, 600.0);
        let (a, _) = cache.acquire(k, &table, |_| true);
        let (b, _) = cache.acquire(k, &table, |_| true);
        let (c, _) = cache.acquire(k, &table, |_| true);
        assert_eq!(cache.refs(a), 3);
        assert_eq!(cache.release(a), Ok(false));
        assert_eq!(cache.release(b), Ok(false));
        // Still readable through the remaining reference.
        assert_eq!(cache.tree(c).unwrap().root(), NodeId(2));
        assert_eq!(cache.release(c), Ok(true));
        assert_eq!(cache.live_trees(), 0);
        assert_eq!(cache.refs(c), 0);
    }

    #[test]
    fn freed_slots_are_reused_and_rebuilds_are_fresh() {
        let table = line_table(6);
        let mut cache = TreeCache::new();
        let (a, _) = cache.acquire(key(0, 0.0, 600.0), &table, |_| true);
        let tree_len = cache.tree(a).unwrap().len();
        cache.release(a).unwrap();
        // Re-acquiring after a full release is a fresh build into the
        // recycled slot, with identical content.
        let (b, built) = cache.acquire(key(0, 0.0, 600.0), &table, |_| true);
        assert!(built);
        assert_eq!(cache.trees_built(), 2);
        assert_eq!(cache.tree(b).unwrap().len(), tree_len);
        assert_eq!(cache.live_trees(), 1);
        assert_eq!(cache.peak_live_trees(), 1);
    }

    #[test]
    fn dead_handle_access_is_an_error_not_a_panic() {
        let table = line_table(4);
        let mut cache = TreeCache::new();
        let (a, _) = cache.acquire(key(0, 0.0, 500.0), &table, |_| true);
        assert_eq!(cache.release(a), Ok(true));
        // Every fallible path degrades to an error a daemon can answer with.
        let err = cache.release(a).unwrap_err();
        assert_eq!(err.slot(), 0);
        assert!(cache.tree(a).is_err());
        assert!(cache.key(a).is_err());
        assert_eq!(cache.refs(a), 0);
        assert!(!format!("{err}").is_empty());
        // A handle that never came from this cache is equally refused.
        assert!(cache.tree(TreeHandle(99)).is_err());
        // The cache stays fully usable after the error.
        let (b, built) = cache.acquire(key(0, 0.0, 500.0), &table, |_| true);
        assert!(built);
        assert_eq!(cache.refs(b), 1);
    }

    #[test]
    fn key_round_trips_its_inputs() {
        let k = TreeKey::new(NodeId(7), Point::new(123.25, -4.5), 255.0);
        assert_eq!(k.root(), NodeId(7));
        assert_eq!(k.center(), Point::new(123.25, -4.5));
        assert_eq!(k.radius_m(), 255.0);
    }
}
