//! Neighbour tables: which nodes are within communication range of which.

use crate::node::NodeId;
use wsn_geom::{Point, Rect, SpatialGrid};

/// A static neighbour table for a fixed deployment.
///
/// Sensor nodes do not move in MobiQuery (only the user does), so the
/// neighbour relation is computed once per topology and reused for the whole
/// simulation.
///
/// ```
/// use wsn_net::NeighborTable;
/// use wsn_net::node::NodeId;
/// use wsn_geom::{Point, Rect};
///
/// let positions = vec![
///     Point::new(0.0, 0.0),
///     Point::new(50.0, 0.0),
///     Point::new(300.0, 300.0),
/// ];
/// let table = NeighborTable::build(&positions, Rect::square(450.0), 105.0);
/// assert!(table.are_neighbors(NodeId(0), NodeId(1)));
/// assert!(!table.are_neighbors(NodeId(0), NodeId(2)));
/// assert_eq!(table.degree(NodeId(2)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct NeighborTable {
    neighbors: Vec<Vec<NodeId>>,
    comm_range: f64,
}

impl NeighborTable {
    /// Builds the table for `positions` within `region`, connecting every
    /// pair of distinct nodes at most `comm_range` metres apart.
    ///
    /// # Panics
    ///
    /// Panics if `comm_range` is not strictly positive and finite.
    pub fn build(positions: &[Point], region: Rect, comm_range: f64) -> Self {
        assert!(
            comm_range.is_finite() && comm_range > 0.0,
            "communication range must be positive"
        );
        let mut grid = SpatialGrid::new(region, comm_range)
            .expect("positive comm range always yields a valid grid");
        for (i, &p) in positions.iter().enumerate() {
            grid.insert(i, p);
        }
        let neighbors = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let mut n: Vec<NodeId> = grid
                    .query_range(p, comm_range)
                    .filter(|&j| j != i)
                    .map(NodeId)
                    .collect();
                n.sort_unstable();
                n
            })
            .collect();
        NeighborTable {
            neighbors,
            comm_range,
        }
    }

    /// Number of nodes covered by the table.
    pub fn node_count(&self) -> usize {
        self.neighbors.len()
    }

    /// The communication range the table was built with.
    pub fn comm_range(&self) -> f64 {
        self.comm_range
    }

    /// The neighbours of `node`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// Number of neighbours of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors[node.index()].len()
    }

    /// Returns `true` when `a` and `b` are within range of each other.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors[a.index()].binary_search(&b).is_ok()
    }

    /// Average node degree across the deployment.
    pub fn mean_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        self.neighbors.iter().map(|n| n.len()).sum::<usize>() as f64 / self.neighbors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_positions(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn line_topology_has_expected_neighbors() {
        // Nodes every 100 m with a 105 m range: each node hears only its
        // immediate neighbours.
        let pos = line_positions(5, 100.0);
        let t = NeighborTable::build(&pos, Rect::square(450.0), 105.0);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.neighbors_of(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.neighbors_of(NodeId(2)), &[NodeId(1), NodeId(3)]);
        assert!(t.are_neighbors(NodeId(3), NodeId(4)));
        assert!(!t.are_neighbors(NodeId(0), NodeId(2)));
    }

    #[test]
    fn symmetry_of_neighbor_relation() {
        let pos = vec![
            Point::new(10.0, 10.0),
            Point::new(80.0, 40.0),
            Point::new(200.0, 200.0),
            Point::new(260.0, 240.0),
        ];
        let t = NeighborTable::build(&pos, Rect::square(450.0), 105.0);
        for a in 0..pos.len() {
            for b in 0..pos.len() {
                assert_eq!(
                    t.are_neighbors(NodeId(a), NodeId(b)),
                    t.are_neighbors(NodeId(b), NodeId(a))
                );
            }
        }
    }

    #[test]
    fn no_self_neighbors() {
        let pos = line_positions(4, 10.0);
        let t = NeighborTable::build(&pos, Rect::square(450.0), 105.0);
        for i in 0..4 {
            assert!(!t.neighbors_of(NodeId(i)).contains(&NodeId(i)));
        }
    }

    #[test]
    fn mean_degree_counts_correctly() {
        let pos = line_positions(3, 100.0);
        let t = NeighborTable::build(&pos, Rect::square(450.0), 105.0);
        // Degrees are 1, 2, 1.
        assert!((t.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.comm_range(), 105.0);
    }

    #[test]
    #[should_panic]
    fn zero_range_panics() {
        let _ = NeighborTable::build(&[Point::ORIGIN], Rect::square(10.0), 0.0);
    }

    #[test]
    fn empty_deployment_is_fine() {
        let t = NeighborTable::build(&[], Rect::square(10.0), 50.0);
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.mean_degree(), 0.0);
    }
}
