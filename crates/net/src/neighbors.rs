//! Neighbour tables: which nodes are within communication range of which.

use crate::node::NodeId;
use wsn_geom::{Point, Rect};

/// A static neighbour table for a fixed deployment.
///
/// Sensor nodes do not move in MobiQuery (only the user does), so the
/// neighbour relation is computed once per topology and reused for the whole
/// simulation.
///
/// ```
/// use wsn_net::NeighborTable;
/// use wsn_net::node::NodeId;
/// use wsn_geom::{Point, Rect};
///
/// let positions = vec![
///     Point::new(0.0, 0.0),
///     Point::new(50.0, 0.0),
///     Point::new(300.0, 300.0),
/// ];
/// let table = NeighborTable::build(&positions, Rect::square(450.0), 105.0);
/// assert!(table.are_neighbors(NodeId(0), NodeId(1)));
/// assert!(!table.are_neighbors(NodeId(0), NodeId(2)));
/// assert_eq!(table.degree(NodeId(2)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct NeighborTable {
    /// CSR layout: the neighbours of node `i` are
    /// `flat[offsets[i]..offsets[i + 1]]`, sorted by id. One flat allocation
    /// instead of one `Vec` per node keeps construction cheap at tens of
    /// thousands of nodes and the flood/routing scans cache-friendly.
    offsets: Vec<usize>,
    flat: Vec<NodeId>,
    comm_range: f64,
}

impl NeighborTable {
    /// Builds the table for `positions` within `region`, connecting every
    /// pair of distinct nodes at most `comm_range` metres apart.
    ///
    /// # Panics
    ///
    /// Panics if `comm_range` is not strictly positive and finite.
    pub fn build(positions: &[Point], region: Rect, comm_range: f64) -> Self {
        Self::build_among(positions, region, comm_range, |_| true)
    }

    /// Builds the table restricted to the nodes for which `member` returns
    /// `true`: only member↔member pairs within `comm_range` become edges, and
    /// every non-member keeps an empty adjacency list (ids stay global, so
    /// lookups need no translation).
    ///
    /// The MobiQuery event loop only ever walks the adjacency of backbone
    /// nodes and filters every hop through an `is_backbone` check, so the
    /// simulation builds its table among the backbone — a fraction of the
    /// deployment — with results identical to filtering the full table.
    ///
    /// # Panics
    ///
    /// Panics if `comm_range` is not strictly positive and finite.
    pub fn build_among(
        positions: &[Point],
        region: Rect,
        comm_range: f64,
        mut member: impl FnMut(usize) -> bool,
    ) -> Self {
        assert!(
            comm_range.is_finite() && comm_range > 0.0,
            "communication range must be positive"
        );
        let n = positions.len();
        debug_assert!(u32::try_from(n).is_ok(), "node ids fit in the edge buffer");
        let members: Vec<(u32, Point)> = positions
            .iter()
            .enumerate()
            .filter(|&(i, _)| member(i))
            .map(|(i, &p)| (i as u32, p))
            .collect();
        // One range query per member collects every directed edge; a
        // counting scatter then groups edges by *target*. Because sources
        // are visited in ascending id order and the scatter is stable, every
        // adjacency list comes out sorted by id with no per-node sort — and
        // the range predicate is symmetric, so grouping by target yields
        // exactly the same lists as querying each node for its own
        // neighbours. Queries run against a transient flat cell index: its
        // row-contiguous layout scans each covered cell row as one slice,
        // which is what makes the 10⁵–10⁶-candidate sweep cache-friendly.
        let index = CellIndex::build(&members, region, comm_range);
        let mut degree = vec![0usize; n];
        // Rough per-node degree guess to keep the edge buffer from
        // reallocating mid-collection; it grows if the deployment is denser.
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(members.len().saturating_mul(40));
        for &(i, p) in &members {
            index.for_each_in_range(p, comm_range, |j| {
                if j != i {
                    edges.push((i, j));
                    degree[j as usize] += 1;
                }
            });
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut flat = vec![NodeId(0); acc];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(source, target) in &edges {
            let slot = &mut cursor[target as usize];
            flat[*slot] = NodeId(source as usize);
            *slot += 1;
        }
        NeighborTable {
            offsets,
            flat,
            comm_range,
        }
    }

    /// Number of nodes covered by the table.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The communication range the table was built with.
    pub fn comm_range(&self) -> f64 {
        self.comm_range
    }

    /// The neighbours of `node`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        &self.flat[self.offsets[node.index()]..self.offsets[node.index() + 1]]
    }

    /// Number of neighbours of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.offsets[node.index() + 1] - self.offsets[node.index()]
    }

    /// Returns `true` when `a` and `b` are within range of each other.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors_of(a).binary_search(&b).is_ok()
    }

    /// Average node degree across the deployment.
    pub fn mean_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        self.flat.len() as f64 / self.node_count() as f64
    }
}

/// Read-only flat cell index used once during table construction.
///
/// Same bucketing as [`wsn_geom::SpatialGrid`] (clamped position, `comm_range`-sized
/// cells, identical inclusion predicate), but stored as one id/position
/// array sorted by cell with per-cell offsets: the cells of one grid row are
/// adjacent, so a range query scans each covered cell row as a single
/// contiguous slice. Node ids within a cell stay in ascending order because
/// the counting scatter below is stable over the id-ordered input.
struct CellIndex {
    starts: Vec<u32>,
    items: Vec<(u32, Point)>,
    cols: usize,
    rows: usize,
    cell: f64,
    region: Rect,
}

impl CellIndex {
    fn build(members: &[(u32, Point)], region: Rect, cell: f64) -> Self {
        let cols = (region.width() / cell).ceil().max(1.0) as usize;
        let rows = (region.height() / cell).ceil().max(1.0) as usize;
        let index_of = |p: Point| {
            let clamped = region.clamp(p);
            let cx = (((clamped.x - region.min_x) / cell) as usize).min(cols - 1);
            let cy = (((clamped.y - region.min_y) / cell) as usize).min(rows - 1);
            cy * cols + cx
        };
        let mut starts = vec![0u32; cols * rows + 1];
        for &(_, p) in members {
            starts[index_of(p) + 1] += 1;
        }
        for c in 1..starts.len() {
            starts[c] += starts[c - 1];
        }
        let mut items = vec![(0u32, Point::new(0.0, 0.0)); members.len()];
        let mut cursor = starts.clone();
        for &(id, p) in members {
            let c = index_of(p);
            items[cursor[c] as usize] = (id, p);
            cursor[c] += 1;
        }
        CellIndex {
            starts,
            items,
            cols,
            rows,
            cell,
            region,
        }
    }

    /// Calls `visit` with the id of every item within `radius` of `center`
    /// (inclusive), under exactly the [`wsn_geom::SpatialGrid::query_range`] predicate.
    fn for_each_in_range(&self, center: Point, radius: f64, mut visit: impl FnMut(u32)) {
        let r = radius.max(0.0);
        let min_cx = ((((center.x - r - self.region.min_x) / self.cell)
            .floor()
            .max(0.0)) as usize)
            .min(self.cols - 1);
        let max_cx = (((center.x + r - self.region.min_x) / self.cell)
            .floor()
            .max(0.0) as usize)
            .min(self.cols - 1);
        let min_cy = ((((center.y - r - self.region.min_y) / self.cell)
            .floor()
            .max(0.0)) as usize)
            .min(self.rows - 1);
        let max_cy = (((center.y + r - self.region.min_y) / self.cell)
            .floor()
            .max(0.0) as usize)
            .min(self.rows - 1);
        let r_sq = r * r;
        for cy in min_cy..=max_cy {
            let row = cy * self.cols;
            let a = self.starts[row + min_cx] as usize;
            let b = self.starts[row + max_cx + 1] as usize;
            for &(id, p) in &self.items[a..b] {
                if center.distance_sq_to(p) <= r_sq + 1e-9 {
                    visit(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_positions(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn line_topology_has_expected_neighbors() {
        // Nodes every 100 m with a 105 m range: each node hears only its
        // immediate neighbours.
        let pos = line_positions(5, 100.0);
        let t = NeighborTable::build(&pos, Rect::square(450.0), 105.0);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.neighbors_of(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.neighbors_of(NodeId(2)), &[NodeId(1), NodeId(3)]);
        assert!(t.are_neighbors(NodeId(3), NodeId(4)));
        assert!(!t.are_neighbors(NodeId(0), NodeId(2)));
    }

    #[test]
    fn symmetry_of_neighbor_relation() {
        let pos = vec![
            Point::new(10.0, 10.0),
            Point::new(80.0, 40.0),
            Point::new(200.0, 200.0),
            Point::new(260.0, 240.0),
        ];
        let t = NeighborTable::build(&pos, Rect::square(450.0), 105.0);
        for a in 0..pos.len() {
            for b in 0..pos.len() {
                assert_eq!(
                    t.are_neighbors(NodeId(a), NodeId(b)),
                    t.are_neighbors(NodeId(b), NodeId(a))
                );
            }
        }
    }

    #[test]
    fn no_self_neighbors() {
        let pos = line_positions(4, 10.0);
        let t = NeighborTable::build(&pos, Rect::square(450.0), 105.0);
        for i in 0..4 {
            assert!(!t.neighbors_of(NodeId(i)).contains(&NodeId(i)));
        }
    }

    #[test]
    fn mean_degree_counts_correctly() {
        let pos = line_positions(3, 100.0);
        let t = NeighborTable::build(&pos, Rect::square(450.0), 105.0);
        // Degrees are 1, 2, 1.
        assert!((t.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.comm_range(), 105.0);
    }

    #[test]
    #[should_panic]
    fn zero_range_panics() {
        let _ = NeighborTable::build(&[Point::ORIGIN], Rect::square(10.0), 0.0);
    }

    #[test]
    fn empty_deployment_is_fine() {
        let t = NeighborTable::build(&[], Rect::square(10.0), 50.0);
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.mean_degree(), 0.0);
    }
}
