//! # wsn-net
//!
//! The wireless-network substrate for the MobiQuery reproduction: everything
//! the protocol needs from a sensor-network radio stack, modelled at the
//! granularity the paper's evaluation actually depends on.
//!
//! The paper runs MobiQuery in ns-2 over IEEE 802.11 with the Power Saving
//! Mode (PSM) extension of Chen et al. (SPAN). Three properties of that stack
//! drive the published results, and this crate reproduces each of them:
//!
//! 1. **Wake-up latency.** Duty-cycled nodes only listen during a short
//!    active window every sleep period, so a message for a sleeping node
//!    waits — on average half a sleep period, in the worst case a full one
//!    ([`psm::SleepSchedule`]).
//! 2. **Contention.** When several query trees are set up concurrently (as
//!    greedy prefetching does), transmissions in overlapping regions collide
//!    and back off, losing packets ([`mac`]).
//! 3. **Per-state radio power.** Energy is dominated by how long the radio
//!    spends transmitting / receiving / idling / sleeping
//!    ([`radio::RadioPowerProfile`]).
//!
//! On top of those models the crate provides plain-graph utilities used by the
//! protocol: neighbour tables ([`neighbors`]), greedy geographic forwarding and
//! area anycast ([`routing`]), and bounded-area flooding ([`flood`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod fault;
pub mod flood;
pub mod mac;
pub mod neighbors;
pub mod node;
pub mod psm;
pub mod radio;
pub mod routing;
pub mod tree_cache;

pub use channel::Channel;
pub use fault::{Blackout, Crash, FaultBatchPlan, FaultConfig, FaultError, FaultPlan};
pub use flood::{FloodScratch, FloodTree};
pub use mac::{ContentionTracker, MacConfig};
pub use neighbors::NeighborTable;
pub use node::{NodeId, NodeRole};
pub use psm::SleepSchedule;
pub use radio::{RadioConfig, RadioPowerProfile, RadioState};
pub use routing::{greedy_next_hop, route_greedy, RouteError, RoutePath};
pub use tree_cache::{TreeCache, TreeCacheError, TreeHandle, TreeKey};
