//! The wireless channel: who can hear whom, and per-hop delivery outcomes.
//!
//! The channel combines the unit-disk connectivity model (two nodes can
//! communicate when they are within the radio's communication range) with the
//! MAC model's contention-dependent delay and loss. It is deliberately a thin,
//! deterministic-given-the-RNG component so the protocol simulation on top of
//! it stays easy to reason about.

use crate::mac::{ContentionTracker, MacConfig};
use crate::node::NodeId;
use crate::radio::RadioConfig;
use serde::{Deserialize, Serialize};
use wsn_geom::Point;
use wsn_sim::{Duration, SimRng, SimTime};

/// The outcome of attempting one hop over the channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopOutcome {
    /// Whether the frame was received (not lost to contention).
    pub delivered: bool,
    /// Time from the transmission decision until the receiver has the frame
    /// (backoff + airtime + processing). Valid even when the frame is lost —
    /// the channel is still occupied for that long.
    pub delay: Duration,
    /// Contention level observed when the frame was sent.
    pub contenders: usize,
}

/// The shared wireless medium.
///
/// ```
/// use wsn_net::{Channel, MacConfig, RadioConfig};
/// use wsn_net::node::NodeId;
/// use wsn_geom::Point;
/// use wsn_sim::{SimRng, SimTime};
///
/// let mut channel = Channel::new(RadioConfig::paper_default(), MacConfig::paper_default());
/// let mut rng = SimRng::seed_from_u64(7);
/// assert!(channel.in_range(Point::new(0.0, 0.0), Point::new(100.0, 0.0)));
/// let hop = channel.transmit(
///     NodeId(0), Point::new(0.0, 0.0), 60, SimTime::ZERO, &mut rng,
/// );
/// assert!(hop.delay.as_secs_f64() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    radio: RadioConfig,
    mac: MacConfig,
    contention: ContentionTracker,
    frames_sent: u64,
    frames_lost: u64,
}

impl Channel {
    /// Creates a channel with the given radio and MAC parameters.
    pub fn new(radio: RadioConfig, mac: MacConfig) -> Self {
        let tracker = ContentionTracker::new(mac.interference_range_m);
        Channel {
            radio,
            mac,
            contention: tracker,
            frames_sent: 0,
            frames_lost: 0,
        }
    }

    /// The radio configuration this channel uses.
    pub fn radio(&self) -> &RadioConfig {
        &self.radio
    }

    /// The MAC configuration this channel uses.
    pub fn mac(&self) -> &MacConfig {
        &self.mac
    }

    /// Returns `true` when two positions are within communication range.
    pub fn in_range(&self, a: Point, b: Point) -> bool {
        a.distance_to(b) <= self.radio.comm_range_m + 1e-9
    }

    /// Airtime of a frame with `payload_bytes` of application payload.
    pub fn tx_duration(&self, payload_bytes: usize) -> Duration {
        self.radio.tx_duration(payload_bytes, self.mac.header_bytes)
    }

    /// Simulates one transmission attempt from `source` at `position`
    /// starting at `now`, registering its channel occupancy and sampling the
    /// contention-dependent delay and loss.
    ///
    /// Broadcast and unicast are treated identically at this layer: the
    /// outcome describes whether *a* receiver in range gets the frame; the
    /// caller decides which nodes are in range and interested.
    pub fn transmit(
        &mut self,
        source: NodeId,
        position: Point,
        payload_bytes: usize,
        now: SimTime,
        rng: &mut SimRng,
    ) -> HopOutcome {
        let contenders = self.contention.contenders(position, now);
        let mac_delay = self.mac.sample_hop_delay(contenders, rng);
        let airtime = self.tx_duration(payload_bytes);
        let start_tx = now + mac_delay;
        let end_tx = start_tx + airtime;
        self.contention.register(source, position, start_tx, end_tx);
        let lost = self.mac.sample_loss(contenders, rng);
        self.frames_sent += 1;
        if lost {
            self.frames_lost += 1;
        }
        HopOutcome {
            delivered: !lost,
            delay: mac_delay + airtime,
            contenders,
        }
    }

    /// Current contention level near `position` (number of in-flight
    /// transmissions within interference range).
    pub fn contention_at(&self, position: Point, now: SimTime) -> usize {
        self.contention.contenders(position, now)
    }

    /// Total frames sent through this channel.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Total frames lost to contention.
    pub fn frames_lost(&self) -> u64 {
        self.frames_lost
    }

    /// Fraction of frames lost so far (0 when nothing has been sent).
    pub fn loss_rate(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.frames_lost as f64 / self.frames_sent as f64
        }
    }

    /// Discards bookkeeping for transmissions that ended before `now`.
    pub fn prune(&mut self, now: SimTime) {
        self.contention.prune(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> Channel {
        Channel::new(RadioConfig::paper_default(), MacConfig::paper_default())
    }

    #[test]
    fn in_range_respects_comm_range() {
        let c = channel();
        assert!(c.in_range(Point::new(0.0, 0.0), Point::new(105.0, 0.0)));
        assert!(!c.in_range(Point::new(0.0, 0.0), Point::new(106.0, 0.0)));
    }

    #[test]
    fn transmission_has_positive_delay() {
        let mut c = channel();
        let mut rng = SimRng::seed_from_u64(3);
        let hop = c.transmit(
            NodeId(1),
            Point::new(10.0, 10.0),
            60,
            SimTime::ZERO,
            &mut rng,
        );
        assert!(hop.delay > Duration::ZERO);
        assert_eq!(hop.contenders, 0);
        assert_eq!(c.frames_sent(), 1);
    }

    #[test]
    fn concurrent_transmissions_raise_contention() {
        let mut c = channel();
        let mut rng = SimRng::seed_from_u64(4);
        let now = SimTime::ZERO;
        for i in 0..5 {
            c.transmit(
                NodeId(i),
                Point::new(5.0 * i as f64, 0.0),
                200,
                now,
                &mut rng,
            );
        }
        // A sixth transmission in the same neighbourhood sees at least some of
        // the others still occupying the channel (CSMA backoff spreads them
        // out, so the exact count depends on the sampled backoffs).
        let hop = c.transmit(NodeId(9), Point::new(10.0, 0.0), 200, now, &mut rng);
        assert!(
            hop.contenders >= 2,
            "expected contention, got {}",
            hop.contenders
        );
    }

    #[test]
    fn far_apart_transmissions_do_not_contend() {
        let mut c = channel();
        let mut rng = SimRng::seed_from_u64(5);
        let now = SimTime::ZERO;
        c.transmit(NodeId(0), Point::new(0.0, 0.0), 200, now, &mut rng);
        let hop = c.transmit(NodeId(1), Point::new(1000.0, 0.0), 200, now, &mut rng);
        assert_eq!(hop.contenders, 0);
    }

    #[test]
    fn loss_rate_increases_under_heavy_contention() {
        let mut quiet = channel();
        let mut busy = channel();
        let mut rng = SimRng::seed_from_u64(6);
        // Quiet: transmissions spaced far apart in time.
        for i in 0..300u64 {
            quiet.transmit(
                NodeId(0),
                Point::new(0.0, 0.0),
                60,
                SimTime::from_secs(i),
                &mut rng,
            );
        }
        // Busy: many simultaneous transmissions in the same area.
        for i in 0..300u64 {
            busy.transmit(
                NodeId(i as usize % 20),
                Point::new((i % 20) as f64, 0.0),
                60,
                SimTime::from_millis(i / 20),
                &mut rng,
            );
        }
        assert!(
            busy.loss_rate() > quiet.loss_rate(),
            "busy {} vs quiet {}",
            busy.loss_rate(),
            quiet.loss_rate()
        );
    }

    #[test]
    fn loss_rate_zero_before_any_traffic() {
        assert_eq!(channel().loss_rate(), 0.0);
    }
}
