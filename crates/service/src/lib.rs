//! # mobiquery-service
//!
//! The long-lived query service over the MobiQuery reproduction: one
//! deployment, many clients, queries arriving and retiring at runtime.
//!
//! The batch engine ([`mobiquery::sim::MultiSimulation`]) runs a fixed
//! [`QuerySet`] to completion; ROADMAP item 2 asks for the daemon shape —
//! a resident process that owns the deployment and serves queries as they
//! arrive. [`ServiceSim`] is that daemon's core, structured like the
//! embedded-DB split of the related `spatio` repo: the engine is a library
//! (`submit`/`retire`/`poll` are plain method calls), and transports can be
//! layered on without touching simulation code.
//!
//! * [`ServiceSim::submit`] admits a [`QuerySpec`] for the next period
//!   boundary and returns a [`QueryId`].
//! * [`ServiceSim::poll`] drains the results scored since the last poll.
//! * [`ServiceSim::retire`] ends a query's lifetime early — clamped so
//!   installs already standing in the network still resolve.
//! * [`ServiceSim::step_period`] advances one period boundary; admissions
//!   and retirements take effect exactly at boundaries, mapping one-to-one
//!   onto [`wsn_net::TreeCache`](https://docs.rs) refcount acquire/release.
//!
//! Everything stays deterministic: client `n` maps to fleet index `n`, so a
//! service run is bit-identical to the same schedule replayed as a static
//! [`QuerySet`] — the reference-equivalence suite pins this. The [`load`]
//! module drives the service with an open-loop arrival schedule and reports
//! tail latency; [`serve`] streams one resident query's per-period results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load;
pub mod serve;

use mobiquery::config::Scenario;
use mobiquery::error::ConfigError;
use mobiquery::query::QuerySpec;
use mobiquery::sim::{FaultConfig, MultiUserOutput, QuerySet, SteppedSim, TreeSharing, UserQuery};
use std::error::Error;
use std::fmt;
use wsn_metrics::{FaultBatch, QueryRecord};
use wsn_mobility::fleet_member;

/// Opaque handle a client holds for a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

impl QueryId {
    /// The raw index (= fleet index of the query's service user).
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// An error returned by the service's client API.
///
/// Client mistakes (an unknown id, a double retire) are plain error values —
/// the daemon answers them and keeps serving; they never reach the tree
/// cache, whose own [`wsn_net::TreeCacheError`](https://docs.rs) now also
/// surfaces as an error instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The scenario, query spec or engine state was invalid.
    Config(ConfigError),
    /// No query with this id was ever submitted.
    UnknownQuery(QueryId),
    /// The query was already retired by an earlier call.
    AlreadyRetired(QueryId),
    /// The service has no period left to first-install a new query in.
    HorizonExhausted,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "{e}"),
            ServiceError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            ServiceError::AlreadyRetired(id) => write!(f, "query {id} was already retired"),
            ServiceError::HorizonExhausted => {
                write!(
                    f,
                    "service horizon exhausted: no period left to serve a new query"
                )
            }
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::Config(e)
    }
}

/// One period's outcome for a submitted query, as returned by
/// [`ServiceSim::poll`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodResult {
    /// The period index `k` (1-based, deadline `k·T`).
    pub period: u64,
    /// Whether a result was delivered by the deadline at all.
    pub delivered: bool,
    /// Fraction of the nodes in the query area that contributed.
    pub fidelity: f64,
    /// Delivered, on time, and above the scenario's fidelity threshold.
    pub succeeded: bool,
    /// Number of contributing nodes.
    pub contributing: usize,
    /// Number of nodes in the query area at the deadline.
    pub nodes_in_area: usize,
}

impl PeriodResult {
    fn from_record(record: &QueryRecord, threshold: f64) -> Self {
        PeriodResult {
            period: record.seq,
            delivered: record.delivered_at.is_some(),
            fidelity: record.fidelity(),
            succeeded: record.succeeded(threshold),
            contributing: record.contributing_nodes,
            nodes_in_area: record.nodes_in_area,
        }
    }
}

/// Per-client bookkeeping of the service.
#[derive(Debug, Clone)]
struct ClientQuery {
    /// Fleet index of the query's user in the stepped engine.
    user: usize,
    /// Records already handed out by [`ServiceSim::poll`].
    poll_cursor: usize,
    retired: bool,
}

/// The long-lived query service: a deployment plus the stepped multi-user
/// engine, fronted by an in-process client API.
///
/// The service starts idle. Each [`ServiceSim::submit`] maps the client to
/// the next fleet index — so a finished service run equals a batch
/// [`mobiquery::sim::MultiSimulation`] over [`ServiceSim::query_set`] — and
/// each [`ServiceSim::step_period`] installs the next period's trees
/// (acquiring [`wsn_net::TreeCache`](https://docs.rs) references) and
/// resolves the previous period's queries (releasing them).
#[derive(Debug)]
pub struct ServiceSim {
    stepped: SteppedSim,
    clients: Vec<ClientQuery>,
}

impl ServiceSim {
    /// Builds the deployment for `scenario` and starts an idle service.
    ///
    /// The scenario's query spec defines the service's fixed period, area
    /// radius and horizon (`scenario.query.result_count()` periods); every
    /// submitted spec must agree on period and radius.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Config`] when the scenario fails validation.
    pub fn new(scenario: Scenario, sharing: TreeSharing) -> Result<Self, ServiceError> {
        let horizon = scenario.query.result_count();
        let empty = QuerySet::from_users(Vec::new(), horizon)?;
        Ok(ServiceSim {
            stepped: SteppedSim::new(scenario, empty, sharing)?,
            clients: Vec::new(),
        })
    }

    /// [`ServiceSim::new`] with deterministic fault injection enabled: the
    /// service walks the same boundaries under a seeded fault schedule
    /// (see [`mobiquery::sim::SteppedSim::with_faults`]). A config with zero
    /// loss, no crashes and no blackout serves byte-identically to
    /// [`ServiceSim::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Config`] when the scenario or fault config
    /// fails validation.
    pub fn with_faults(
        scenario: Scenario,
        sharing: TreeSharing,
        fault: FaultConfig,
    ) -> Result<Self, ServiceError> {
        let horizon = scenario.query.result_count();
        let empty = QuerySet::from_users(Vec::new(), horizon)?;
        Ok(ServiceSim {
            stepped: SteppedSim::with_faults(scenario, empty, sharing, fault)?,
            clients: Vec::new(),
        })
    }

    /// Shards per-boundary query resolution across `jobs` workers inside
    /// each [`ServiceSim::step_period`]; results are byte-identical for any
    /// value (see [`SteppedSim::with_jobs`]).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.stepped.set_jobs(jobs);
        self
    }

    /// Admits a query starting at the next period boundary.
    ///
    /// The spec's lifetime is translated to whole periods and clamped to the
    /// service horizon; its period and radius must match the deployment's
    /// (one shared lattice is what makes tree sharing sound).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] for an invalid or mismatched spec,
    /// [`ServiceError::HorizonExhausted`] when no period is left to serve.
    pub fn submit(&mut self, spec: &QuerySpec) -> Result<QueryId, ServiceError> {
        spec.validate()?;
        let scenario = self.stepped.scenario();
        if spec.period != scenario.query.period {
            return Err(ConfigError::new(format!(
                "spec period {:?} differs from the service period {:?}",
                spec.period, scenario.query.period
            ))
            .into());
        }
        if spec.radius_m != scenario.query.radius_m {
            return Err(ConfigError::new(format!(
                "spec radius {} m differs from the service radius {} m",
                spec.radius_m, scenario.query.radius_m
            ))
            .into());
        }
        let first_k = self.stepped.next_boundary() + 1;
        if first_k > self.stepped.max_k() {
            return Err(ServiceError::HorizonExhausted);
        }
        let lifetime_periods = spec.lifetime.as_micros() / spec.period.as_micros();
        let last_k = (first_k + lifetime_periods - 1).min(self.stepped.max_k());

        let index = self.clients.len();
        let scenario = self.stepped.scenario();
        let member = fleet_member(
            &scenario.motion,
            scenario.profile_source,
            index,
            scenario.seed,
        );
        let user = self.stepped.admit(UserQuery {
            user: index,
            seed: member.seed,
            motion: member.motion,
            profiles: member.profiles,
            first_k,
            last_k,
        })?;
        self.clients.push(ClientQuery {
            user,
            poll_cursor: 0,
            retired: false,
        });
        Ok(QueryId(index as u64))
    }

    /// Retires a query now: its window is cut at the last period already
    /// installed (standing installs still resolve — a tree reference in the
    /// network cannot be recalled, only released at its deadline).
    ///
    /// Returns the effective last period of the query.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownQuery`] / [`ServiceError::AlreadyRetired`] for
    /// client mistakes — both leave the service running.
    pub fn retire(&mut self, id: QueryId) -> Result<u64, ServiceError> {
        let client = self
            .clients
            .get(id.0 as usize)
            .ok_or(ServiceError::UnknownQuery(id))?;
        if client.retired {
            return Err(ServiceError::AlreadyRetired(id));
        }
        let user = client.user;
        let effective = self.stepped.retire_at(user, self.stepped.next_boundary())?;
        self.clients[id.0 as usize].retired = true;
        Ok(effective)
    }

    /// Drains the results scored for `id` since the last poll, in period
    /// order. An empty vector means no new period resolved yet.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownQuery`] for an id never issued. Polling a
    /// retired query is fine — its remaining results stay readable.
    pub fn poll(&mut self, id: QueryId) -> Result<Vec<PeriodResult>, ServiceError> {
        let client = self
            .clients
            .get(id.0 as usize)
            .ok_or(ServiceError::UnknownQuery(id))?;
        let threshold = self.stepped.scenario().fidelity_threshold;
        let records = self.stepped.logs()[client.user].records();
        let cursor = client.poll_cursor;
        let fresh: Vec<PeriodResult> = records[cursor..]
            .iter()
            .map(|r| PeriodResult::from_record(r, threshold))
            .collect();
        self.clients[id.0 as usize].poll_cursor = records.len();
        Ok(fresh)
    }

    /// Advances one period boundary: installs next period's query trees,
    /// then scores the previous period's queries. Returns the boundary
    /// processed.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] when the run is already finished or an
    /// engine invariant is violated.
    pub fn step_period(&mut self) -> Result<u64, ServiceError> {
        Ok(self.stepped.step_period()?)
    }

    /// `true` once the final boundary has been stepped.
    pub fn is_finished(&self) -> bool {
        self.stepped.is_finished()
    }

    /// The next boundary [`ServiceSim::step_period`] will process.
    pub fn next_boundary(&self) -> u64 {
        self.stepped.next_boundary()
    }

    /// The service horizon in periods.
    pub fn max_k(&self) -> u64 {
        self.stepped.max_k()
    }

    /// The scenario the deployment was built from.
    pub fn scenario(&self) -> &Scenario {
        self.stepped.scenario()
    }

    /// Number of queries submitted so far.
    pub fn queries_submitted(&self) -> usize {
        self.clients.len()
    }

    /// Per-boundary fault records so far (empty without fault injection).
    pub fn fault_log(&self) -> &[FaultBatch] {
        self.stepped.fault_log()
    }

    /// The realized query set — the exact static [`QuerySet`] that, run
    /// through [`mobiquery::sim::MultiSimulation::with_query_set`], replays
    /// this service run bit for bit.
    pub fn query_set(&self) -> &QuerySet {
        self.stepped.query_set()
    }

    /// Finishes the run and aggregates the batch-engine output.
    ///
    /// # Panics
    ///
    /// Panics when the final boundary has not been stepped yet.
    pub fn finish(self) -> MultiUserOutput {
        self.stepped.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiquery::config::Scheme;
    use wsn_sim::Duration;

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::paper_default()
            .with_node_count(80)
            .with_region_side(300.0)
            .with_duration_secs(40.0)
            .with_scheme(Scheme::JustInTime)
            .with_seed(seed)
    }

    fn spec_for(scenario: &Scenario, lifetime_periods: u64) -> QuerySpec {
        let mut spec = scenario.query.clone();
        spec.lifetime = spec.period * lifetime_periods;
        spec
    }

    #[test]
    fn submit_step_poll_round_trip() {
        let scenario = small_scenario(3);
        let mut svc = ServiceSim::new(scenario.clone(), TreeSharing::Shared).unwrap();
        let id = svc.submit(&spec_for(&scenario, 5)).unwrap();
        assert_eq!(svc.poll(id).unwrap(), vec![], "nothing scored yet");
        svc.step_period().unwrap(); // boundary 0: installs period 1
        assert_eq!(svc.poll(id).unwrap(), vec![], "period 1 not resolved yet");
        svc.step_period().unwrap(); // boundary 1: resolves period 1
        let results = svc.poll(id).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].period, 1);
        assert!(results[0].delivered);
        assert_eq!(svc.poll(id).unwrap(), vec![], "poll drains");
        for _ in 0..4 {
            svc.step_period().unwrap();
        }
        let rest = svc.poll(id).unwrap();
        assert_eq!(rest.len(), 4, "5-period lifetime yields 5 results total");
        assert_eq!(rest.last().unwrap().period, 5);
    }

    #[test]
    fn client_mistakes_are_errors_not_crashes() {
        let scenario = small_scenario(5);
        let mut svc = ServiceSim::new(scenario.clone(), TreeSharing::Shared).unwrap();
        let bogus = QueryId(7);
        assert_eq!(svc.poll(bogus), Err(ServiceError::UnknownQuery(bogus)));
        assert_eq!(svc.retire(bogus), Err(ServiceError::UnknownQuery(bogus)));

        let id = svc.submit(&spec_for(&scenario, 8)).unwrap();
        svc.step_period().unwrap();
        svc.step_period().unwrap();
        let last = svc.retire(id).unwrap();
        assert_eq!(last, 2, "installed periods keep resolving");
        assert_eq!(svc.retire(id), Err(ServiceError::AlreadyRetired(id)));
        // The service keeps serving after every error above.
        let id2 = svc.submit(&spec_for(&scenario, 2)).unwrap();
        while !svc.is_finished() {
            svc.step_period().unwrap();
        }
        assert_eq!(svc.poll(id).unwrap().len(), 2);
        assert_eq!(svc.poll(id2).unwrap().len(), 2);
        let out = svc.finish();
        assert_eq!(out.users, 2);
    }

    #[test]
    fn mismatched_specs_are_rejected() {
        let scenario = small_scenario(1);
        let mut svc = ServiceSim::new(scenario.clone(), TreeSharing::Shared).unwrap();
        let mut wrong_period = spec_for(&scenario, 4);
        wrong_period.period = Duration::from_secs(3);
        wrong_period.lifetime = Duration::from_secs(12);
        assert!(matches!(
            svc.submit(&wrong_period),
            Err(ServiceError::Config(_))
        ));
        let mut wrong_radius = spec_for(&scenario, 4);
        wrong_radius.radius_m += 1.0;
        assert!(matches!(
            svc.submit(&wrong_radius),
            Err(ServiceError::Config(_))
        ));
        let mut invalid = spec_for(&scenario, 4);
        invalid.radius_m = -1.0;
        assert!(matches!(svc.submit(&invalid), Err(ServiceError::Config(_))));
        assert_eq!(svc.queries_submitted(), 0);
    }

    #[test]
    fn horizon_exhaustion_is_reported() {
        let scenario = small_scenario(2);
        let mut svc = ServiceSim::new(scenario.clone(), TreeSharing::Shared).unwrap();
        while !svc.is_finished() {
            svc.step_period().unwrap();
        }
        assert_eq!(
            svc.submit(&spec_for(&scenario, 1)),
            Err(ServiceError::HorizonExhausted)
        );
    }

    #[test]
    fn lifetime_clamps_to_the_horizon() {
        let scenario = small_scenario(4);
        let mut svc = ServiceSim::new(scenario.clone(), TreeSharing::Shared).unwrap();
        let id = svc.submit(&spec_for(&scenario, 10_000)).unwrap();
        while !svc.is_finished() {
            svc.step_period().unwrap();
        }
        let results = svc.poll(id).unwrap();
        assert_eq!(results.len() as u64, svc.max_k(), "clamped to the horizon");
    }
}
