//! Open-loop load generation against the query service.
//!
//! An open-loop generator draws query arrivals from a schedule that does not
//! react to the service (arrivals keep coming whether or not earlier queries
//! were served) — the standard way to measure tail latency without
//! coordinated omission. The schedule is a pure function of
//! `(seed, qps, duration)`: exponential inter-arrival gaps (Poisson process)
//! and uniform lifetimes, all drawn from the dedicated [`LOAD_STREAM`], so
//! the same invocation produces byte-identical reports across job counts,
//! platforms and runs.
//!
//! Latency is reported in *periods* — the service's natural clock. A query
//! arriving at `t` and admitted for first period `k` waits `k − t/T` periods
//! for its first result; p50/p99 over all served queries are the service's
//! tail. Success is per query: the fraction of its periods that delivered a
//! result above the fidelity threshold.

use crate::{ServiceError, ServiceSim};
use mobiquery::config::Scenario;
use mobiquery::error::ConfigError;
use mobiquery::sim::{FaultConfig, MultiUserOutput, QuerySet, TreeSharing};
use wsn_metrics::{JsonValue, LatencyStats, ResilienceSummary};
use wsn_sim::{mix_seed, SimRng};

/// Stream tag separating the load generator's draws from every other stream
/// derived from the same base seed.
pub const LOAD_STREAM: u64 = 0x10AD_0000_0000_0001;

/// One scheduled query arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival instant in seconds from service start.
    pub at_s: f64,
    /// Requested lifetime in whole periods.
    pub lifetime_periods: u64,
}

/// The deterministic open-loop arrival schedule for
/// `(base_seed, qps, duration_periods)`.
///
/// Inter-arrival gaps are exponential with mean `1/qps` seconds; lifetimes
/// are uniform in `1..=max(duration/2, 1)` periods. Arrivals stop before
/// `(duration − 1)·T` so every scheduled query can still be admitted for at
/// least one period.
pub fn arrival_schedule(
    base_seed: u64,
    qps: f64,
    duration_periods: u64,
    period_s: f64,
) -> Vec<Arrival> {
    let mut rng = SimRng::seed_from_u64(mix_seed(base_seed, &[LOAD_STREAM]));
    let horizon_s = duration_periods.saturating_sub(1) as f64 * period_s;
    let max_lifetime = (duration_periods / 2).max(1) as usize;
    let mut arrivals = Vec::new();
    let mut t = rng.gen_exp(1.0 / qps);
    while t < horizon_s {
        let lifetime_periods = 1 + rng.gen_range_usize(0, max_lifetime) as u64;
        arrivals.push(Arrival {
            at_s: t,
            lifetime_periods,
        });
        t += rng.gen_exp(1.0 / qps);
    }
    arrivals
}

/// Scalar summary of one load run — everything the `repro load` JSON emits.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Offered load in queries per second.
    pub qps: f64,
    /// Service horizon in periods.
    pub duration_periods: u64,
    /// The sharing mode the run used.
    pub sharing: TreeSharing,
    /// Queries admitted by the service.
    pub submitted: u64,
    /// Scheduled arrivals the service could not admit (no period left).
    pub rejected: u64,
    /// Admitted queries that never received a single result.
    pub starved: u64,
    /// Query periods whose result missed its deadline (0 only when every
    /// admitted period delivered on time).
    pub deadline_misses: u64,
    /// Install retransmissions the recovery machinery paid (0 without fault
    /// injection, and with recovery disarmed).
    pub retries: u64,
    /// Periods served in degraded mode: poisoned shared trees rebuilt or
    /// downgraded to naive per-user trees after crashes.
    pub degraded: u64,
    /// Mean per-query success ratio.
    pub mean_success_ratio: f64,
    /// Worst per-query success ratio.
    pub min_success_ratio: f64,
    /// Submission-to-first-result latency in periods, over served queries.
    /// `None` when no query was served.
    pub latency_periods: Option<LatencyStats>,
    /// Query installs the service performed.
    pub installs: u64,
    /// Flood trees actually built.
    pub trees_built: u64,
    /// Installs served by an already-standing tree.
    pub shared_hits: u64,
    /// `trees_built / installs` — 1.0 means no sharing happened.
    pub sharing_ratio: f64,
    /// Most trees simultaneously standing.
    pub peak_live_trees: usize,
    /// Deployment size.
    pub node_count: usize,
    /// Backbone size of the deployment.
    pub backbone_count: usize,
}

impl LoadReport {
    /// Deterministic JSON rendering (insertion-order keys).
    pub fn to_json(&self) -> JsonValue {
        let latency = match &self.latency_periods {
            Some(stats) => JsonValue::object()
                .with("count", stats.count)
                .with("p50_periods", stats.p50)
                .with("p99_periods", stats.p99)
                .with("max_periods", stats.max),
            None => JsonValue::object().with("count", 0u64),
        };
        JsonValue::object()
            .with("qps", self.qps)
            .with("duration_periods", self.duration_periods)
            .with("sharing", self.sharing.as_str())
            .with("submitted", self.submitted)
            .with("rejected", self.rejected)
            .with("starved", self.starved)
            .with("deadline_misses", self.deadline_misses)
            .with("retries", self.retries)
            .with("degraded", self.degraded)
            .with("mean_success_ratio", self.mean_success_ratio)
            .with("min_success_ratio", self.min_success_ratio)
            .with("latency", latency)
            .with("installs", self.installs)
            .with("trees_built", self.trees_built)
            .with("shared_hits", self.shared_hits)
            .with("sharing_ratio", self.sharing_ratio)
            .with("peak_live_trees", self.peak_live_trees)
            .with("node_count", self.node_count)
            .with("backbone_count", self.backbone_count)
    }
}

/// Everything a load run produces: the scalar report, the realized schedule
/// (for batch replay) and the raw engine output.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadOutcome {
    /// Scalar summary, JSON-able via [`LoadReport::to_json`].
    pub report: LoadReport,
    /// The exact static query set the run realized — replaying it through
    /// [`mobiquery::sim::MultiSimulation::with_query_set`] reproduces the
    /// per-user logs bit for bit.
    pub query_set: QuerySet,
    /// The underlying engine output (per-user logs included).
    pub output: MultiUserOutput,
}

/// Runs the open-loop load `(qps, duration_periods)` against a fresh service
/// on `scenario`'s deployment.
///
/// The scenario's duration is overridden to exactly `duration_periods`
/// periods; its seed drives both the deployment and the arrival schedule.
/// `jobs` shards each boundary's resolution across pool workers
/// ([`ServiceSim::with_jobs`]); the outcome is byte-identical for any value.
/// With `fault` set, the service runs under that seeded fault schedule and
/// the report's retry/deadline-miss/degraded counters become meaningful.
///
/// # Errors
///
/// Returns a [`ServiceError`] for an invalid scenario or fault config, a
/// non-positive or non-finite `qps`, or a zero `duration_periods`.
pub fn run_load(
    scenario: Scenario,
    qps: f64,
    duration_periods: u64,
    sharing: TreeSharing,
    jobs: usize,
    fault: Option<FaultConfig>,
) -> Result<LoadOutcome, ServiceError> {
    if !(qps.is_finite() && qps > 0.0) {
        return Err(ConfigError::new("load qps must be positive and finite").into());
    }
    if duration_periods == 0 {
        return Err(ConfigError::new("load duration must cover at least one period").into());
    }
    let period_s = scenario.query.period.as_secs_f64();
    let scenario = scenario.with_duration_secs(duration_periods as f64 * period_s);
    let arrivals = arrival_schedule(scenario.seed, qps, duration_periods, period_s);

    let mut svc = match fault {
        Some(config) => ServiceSim::with_faults(scenario.clone(), sharing, config)?,
        None => ServiceSim::new(scenario.clone(), sharing)?,
    }
    .with_jobs(jobs);
    let mut pending = arrivals.iter().copied().peekable();
    let mut admitted: Vec<Arrival> = Vec::new();
    let mut rejected = 0u64;
    while !svc.is_finished() {
        let now_s = svc.next_boundary() as f64 * period_s;
        while let Some(arrival) = pending.next_if(|a| a.at_s <= now_s) {
            let mut spec = scenario.query.clone();
            spec.lifetime = spec.period * arrival.lifetime_periods;
            match svc.submit(&spec) {
                Ok(_) => admitted.push(arrival),
                Err(ServiceError::HorizonExhausted) => rejected += 1,
                Err(e) => return Err(e),
            }
        }
        svc.step_period()?;
    }
    rejected += pending.count() as u64;

    let threshold = svc.scenario().fidelity_threshold;
    let query_set = svc.query_set().clone();
    let faults = ResilienceSummary::from_batches(svc.fault_log());
    let output = svc.finish();

    let mut success_ratios = Vec::with_capacity(admitted.len());
    let mut latency_samples = Vec::new();
    let mut starved = 0u64;
    let mut deadline_misses = 0u64;
    for (arrival, log) in admitted.iter().zip(output.logs.iter()) {
        success_ratios.push(log.success_ratio(threshold));
        deadline_misses += log.records().iter().filter(|r| !r.met_deadline()).count() as u64;
        match log
            .records()
            .iter()
            .find(|r| r.delivered_at.is_some())
            .map(|r| r.seq)
        {
            Some(first_k) => latency_samples.push(first_k as f64 - arrival.at_s / period_s),
            None => starved += 1,
        }
    }
    let mean_success_ratio = if success_ratios.is_empty() {
        0.0
    } else {
        success_ratios.iter().sum::<f64>() / success_ratios.len() as f64
    };
    let min_success_ratio = success_ratios
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .clamp(0.0, 1.0);

    let report = LoadReport {
        qps,
        duration_periods,
        sharing,
        submitted: admitted.len() as u64,
        rejected,
        starved,
        deadline_misses,
        retries: faults.retries,
        degraded: faults.trees_rebuilt + faults.naive_fallbacks,
        mean_success_ratio,
        min_success_ratio,
        latency_periods: LatencyStats::from_samples(&latency_samples),
        installs: output.installs,
        trees_built: output.trees_built,
        shared_hits: output.shared_hits,
        sharing_ratio: output.sharing_ratio(),
        peak_live_trees: output.peak_live_trees,
        node_count: output.node_count,
        backbone_count: output.backbone_count,
    };
    Ok(LoadOutcome {
        report,
        query_set,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiquery::config::Scheme;

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::paper_default()
            .with_node_count(80)
            .with_region_side(300.0)
            .with_scheme(Scheme::JustInTime)
            .with_seed(seed)
    }

    #[test]
    fn schedule_is_deterministic_and_open_loop() {
        let a = arrival_schedule(42, 4.0, 40, 2.0);
        let b = arrival_schedule(42, 4.0, 40, 2.0);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "4 qps over 78 s must produce arrivals");
        for w in a.windows(2) {
            assert!(w[0].at_s < w[1].at_s, "arrivals strictly ordered");
        }
        let horizon = 39.0 * 2.0;
        assert!(a.iter().all(|x| x.at_s < horizon));
        assert!(a.iter().all(|x| (1..=20).contains(&x.lifetime_periods)));
        let c = arrival_schedule(43, 4.0, 40, 2.0);
        assert_ne!(a, c, "the schedule follows the seed");
    }

    #[test]
    fn load_run_reports_latency_and_success() {
        let outcome = run_load(small_scenario(42), 1.0, 10, TreeSharing::Shared, 1, None).unwrap();
        let r = &outcome.report;
        assert_eq!(
            r.submitted + r.rejected,
            arrival_schedule(42, 1.0, 10, 2.0).len() as u64
        );
        assert!(r.submitted > 0);
        assert!((0.0..=1.0).contains(&r.mean_success_ratio));
        assert!(r.min_success_ratio <= r.mean_success_ratio);
        let latency = r.latency_periods.expect("some query was served");
        assert!(latency.p50 <= latency.p99);
        assert!(latency.p50 >= 1.0, "first result is at least a period away");
        assert_eq!(
            latency.count as u64 + r.starved,
            r.submitted,
            "every admitted query is served or starved"
        );
        assert_eq!(outcome.query_set.len() as u64, r.submitted);
    }

    #[test]
    fn load_run_is_deterministic() {
        let a = run_load(small_scenario(7), 2.0, 12, TreeSharing::Shared, 1, None).unwrap();
        let b = run_load(small_scenario(7), 2.0, 12, TreeSharing::Shared, 4, None).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.report.to_json().to_pretty_string(),
            b.report.to_json().to_pretty_string()
        );
    }

    #[test]
    fn faulted_load_reports_recovery_counters() {
        let faulted = |recovery| {
            let fault = FaultConfig::new(0.35).with_recovery(recovery);
            run_load(
                small_scenario(42),
                1.0,
                12,
                TreeSharing::Shared,
                1,
                Some(fault),
            )
            .unwrap()
        };
        let on = faulted(true);
        assert!(on.report.retries > 0, "35% loss must force retransmissions");
        let off = faulted(false);
        assert_eq!(off.report.retries, 0, "recovery off never retries");
        assert!(
            on.report.deadline_misses <= off.report.deadline_misses,
            "recovery must not lose periods the bare service delivers"
        );
        // The zero-rate profile is byte-identical to no profile at all.
        let plain = run_load(small_scenario(42), 1.0, 12, TreeSharing::Shared, 1, None).unwrap();
        let inert = run_load(
            small_scenario(42),
            1.0,
            12,
            TreeSharing::Shared,
            1,
            Some(FaultConfig::new(0.0)),
        )
        .unwrap();
        assert_eq!(plain, inert);
    }

    #[test]
    fn invalid_load_parameters_are_rejected() {
        assert!(run_load(small_scenario(1), 0.0, 10, TreeSharing::Shared, 1, None).is_err());
        assert!(run_load(
            small_scenario(1),
            f64::NAN,
            10,
            TreeSharing::Shared,
            1,
            None
        )
        .is_err());
        assert!(run_load(small_scenario(1), 1.0, 0, TreeSharing::Shared, 1, None).is_err());
    }
}
