//! The `repro serve` runner: one resident query streamed period by period.
//!
//! The smallest daemon-shaped run: submit a single query spanning the whole
//! horizon, step every boundary, and poll after each one — the per-period
//! results stream out in the same order a long-lived client would see them.
//! Useful as a smoke of the whole submit → install → resolve → poll path
//! (CI pins its JSON across job counts) and as the usage example for the
//! client API.

use crate::{PeriodResult, ServiceError, ServiceSim};
use mobiquery::config::Scenario;
use mobiquery::error::ConfigError;
use mobiquery::sim::{FaultConfig, TreeSharing};
use wsn_metrics::{JsonValue, ResilienceSummary};

/// Summary of one [`run_serve`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Periods served.
    pub periods: u64,
    /// The sharing mode the run used.
    pub sharing: TreeSharing,
    /// Per-period results of the resident query, in period order.
    pub results: Vec<PeriodResult>,
    /// Fraction of periods that succeeded (delivered above threshold).
    pub success_ratio: f64,
    /// Mean per-period fidelity.
    pub mean_fidelity: f64,
    /// Periods whose result missed its deadline.
    pub deadline_misses: u64,
    /// Install retransmissions paid (0 without fault injection).
    pub retries: u64,
    /// Deployment size.
    pub node_count: usize,
    /// Backbone size of the deployment.
    pub backbone_count: usize,
}

impl ServeReport {
    /// Deterministic JSON rendering (insertion-order keys).
    pub fn to_json(&self) -> JsonValue {
        let results: Vec<JsonValue> = self
            .results
            .iter()
            .map(|r| {
                JsonValue::object()
                    .with("period", r.period)
                    .with("delivered", r.delivered)
                    .with("fidelity", r.fidelity)
                    .with("succeeded", r.succeeded)
                    .with("contributing", r.contributing)
                    .with("nodes_in_area", r.nodes_in_area)
            })
            .collect();
        JsonValue::object()
            .with("periods", self.periods)
            .with("sharing", self.sharing.as_str())
            .with("success_ratio", self.success_ratio)
            .with("mean_fidelity", self.mean_fidelity)
            .with("deadline_misses", self.deadline_misses)
            .with("retries", self.retries)
            .with("node_count", self.node_count)
            .with("backbone_count", self.backbone_count)
            .with("results", results)
    }
}

/// Serves one resident query for `periods` periods on `scenario`'s
/// deployment, polling after every boundary.
///
/// The scenario's duration is overridden to exactly `periods` periods.
/// `jobs` shards each boundary's resolution across pool workers
/// ([`ServiceSim::with_jobs`]); the report is byte-identical for any value.
/// With `fault` set, the query is served under that seeded fault schedule.
///
/// # Errors
///
/// Returns a [`ServiceError`] for an invalid scenario or fault config, or
/// `periods == 0`.
pub fn run_serve(
    scenario: Scenario,
    periods: u64,
    sharing: TreeSharing,
    jobs: usize,
    fault: Option<FaultConfig>,
) -> Result<ServeReport, ServiceError> {
    if periods == 0 {
        return Err(ConfigError::new("serve needs at least one period").into());
    }
    let period_s = scenario.query.period.as_secs_f64();
    let scenario = scenario.with_duration_secs(periods as f64 * period_s);
    let mut svc = match fault {
        Some(config) => ServiceSim::with_faults(scenario.clone(), sharing, config)?,
        None => ServiceSim::new(scenario.clone(), sharing)?,
    }
    .with_jobs(jobs);
    let id = svc.submit(&scenario.query)?;
    let mut results = Vec::with_capacity(periods as usize);
    while !svc.is_finished() {
        svc.step_period()?;
        results.extend(svc.poll(id)?);
    }
    let faults = ResilienceSummary::from_batches(svc.fault_log());
    let output = svc.finish();
    let succeeded = results.iter().filter(|r| r.succeeded).count();
    let success_ratio = succeeded as f64 / results.len().max(1) as f64;
    let mean_fidelity =
        results.iter().map(|r| r.fidelity).sum::<f64>() / results.len().max(1) as f64;
    let deadline_misses = results.iter().filter(|r| !r.delivered).count() as u64;
    Ok(ServeReport {
        periods,
        sharing,
        results,
        success_ratio,
        mean_fidelity,
        deadline_misses,
        retries: faults.retries,
        node_count: output.node_count,
        backbone_count: output.backbone_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiquery::config::Scheme;

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::paper_default()
            .with_node_count(80)
            .with_region_side(300.0)
            .with_scheme(Scheme::JustInTime)
            .with_seed(seed)
    }

    #[test]
    fn serve_streams_one_result_per_period() {
        let report = run_serve(small_scenario(42), 12, TreeSharing::Shared, 1, None).unwrap();
        assert_eq!(report.results.len(), 12);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.period, i as u64 + 1, "periods stream in order");
        }
        assert!((0.0..=1.0).contains(&report.success_ratio));
        assert!(report.mean_fidelity > 0.0);
        assert!(report.backbone_count > 0);
    }

    #[test]
    fn serve_matches_the_single_user_batch_run() {
        // One resident query spanning the horizon is exactly a 1-user batch
        // trial: the streamed per-period results equal the batch log.
        use mobiquery::sim::MultiSimulation;
        let periods = 10u64;
        let scenario = small_scenario(9).with_duration_secs(2.0 * periods as f64);
        let report = run_serve(scenario.clone(), periods, TreeSharing::Shared, 1, None).unwrap();
        let batch = MultiSimulation::new(scenario, 1, TreeSharing::Shared)
            .unwrap()
            .run();
        let batch_records = batch.logs[0].records();
        assert_eq!(report.results.len(), batch_records.len());
        for (served, batch) in report.results.iter().zip(batch_records) {
            assert_eq!(served.period, batch.seq);
            assert_eq!(served.contributing, batch.contributing_nodes);
            assert_eq!(served.nodes_in_area, batch.nodes_in_area);
        }
    }

    #[test]
    fn serve_is_deterministic_across_jobs() {
        let a = run_serve(small_scenario(3), 8, TreeSharing::Shared, 1, None).unwrap();
        let b = run_serve(small_scenario(3), 8, TreeSharing::Shared, 4, None).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.to_json().to_pretty_string(),
            b.to_json().to_pretty_string()
        );
    }

    #[test]
    fn zero_periods_is_rejected() {
        assert!(run_serve(small_scenario(1), 0, TreeSharing::Shared, 1, None).is_err());
    }

    #[test]
    fn inert_fault_profile_serves_identically() {
        let plain = run_serve(small_scenario(5), 10, TreeSharing::Shared, 1, None).unwrap();
        let inert = run_serve(
            small_scenario(5),
            10,
            TreeSharing::Shared,
            1,
            Some(FaultConfig::new(0.0)),
        )
        .unwrap();
        assert_eq!(plain, inert);
        assert_eq!(inert.retries, 0);
    }

    #[test]
    fn faulted_serve_counts_misses_and_retries() {
        let report = run_serve(
            small_scenario(5),
            16,
            TreeSharing::Shared,
            1,
            Some(FaultConfig::new(0.4)),
        )
        .unwrap();
        assert!(report.retries > 0, "40% loss must force retransmissions");
        assert_eq!(
            report.deadline_misses,
            report.results.iter().filter(|r| !r.delivered).count() as u64
        );
    }
}
