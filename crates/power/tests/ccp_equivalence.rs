//! Property-based equality contract between the coverage-raster CCP election
//! and the retained per-point reference implementation.
//!
//! The incremental [`wsn_power::CoverageRaster`] replaced a per-sample-point
//! grid range query in `elect_backbone`; these properties pin the two
//! implementations byte-identical — same roles for every node, never merely
//! "the same backbone size" — across random seeds, deployment densities,
//! lattice spacings and coverage degrees, plus the colocated and sparse edge
//! cases the unit suite covers.

use proptest::prelude::*;
use proptest::TestCaseResult;
use wsn_geom::{Point, Rect};
use wsn_power::ccp::{backbone_covers_region, elect_backbone, elect_backbone_reference, CcpConfig};
use wsn_sim::SimRng;

fn config(coverage_degree: usize, spacing: f64) -> CcpConfig {
    CcpConfig {
        sensing_range_m: 50.0,
        coverage_degree,
        sample_spacing_m: spacing,
    }
}

fn deployment(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
        .collect()
}

/// Asserts raster == reference for one deployment/config/seed, returning the
/// roles for any further checks.
fn assert_elections_identical(
    positions: &[Point],
    region: Rect,
    cfg: &CcpConfig,
    seed: u64,
) -> TestCaseResult {
    let fast = elect_backbone(positions, region, cfg, &mut SimRng::seed_from_u64(seed));
    let reference =
        elect_backbone_reference(positions, region, cfg, &mut SimRng::seed_from_u64(seed));
    prop_assert_eq!(&fast, &reference);
    Ok(())
}

proptest! {
    /// Byte-identical roles across random seeds, node counts, region sides,
    /// spacings and coverage degrees 1–3.
    #[test]
    fn raster_election_matches_reference(
        seed in any::<u64>(),
        n in 0usize..120,
        side in 60.0f64..320.0,
        spacing in 2.0f64..11.0,
        coverage_degree in 1usize..4,
    ) {
        let region = Rect::square(side);
        let positions = deployment(n, side, seed ^ 0x5eed);
        let cfg = config(coverage_degree, spacing);
        assert_elections_identical(&positions, region, &cfg, seed)?;
    }

    /// Colocated stacks of nodes (exact duplicate positions) demote
    /// identically — the regime where per-point counts change by more than
    /// one per position and tie handling matters most.
    #[test]
    fn colocated_stacks_demote_identically(
        seed in any::<u64>(),
        stacks in 1usize..6,
        per_stack in 1usize..7,
        coverage_degree in 1usize..4,
    ) {
        let side = 150.0;
        let region = Rect::square(side);
        let anchors = deployment(stacks, side, seed ^ 0xface);
        let positions: Vec<Point> = anchors
            .iter()
            .flat_map(|&p| std::iter::repeat(p).take(per_stack))
            .collect();
        let cfg = config(coverage_degree, 5.0);
        assert_elections_identical(&positions, region, &cfg, seed)?;
    }

    /// Sparse deployments (disks barely overlapping or fully disjoint,
    /// including disks clipped by or outside the region) agree too, and both
    /// implementations leave a region-covering backbone.
    #[test]
    fn sparse_deployments_agree_and_preserve_coverage(
        seed in any::<u64>(),
        n in 1usize..10,
        coverage_degree in 1usize..3,
    ) {
        let side = 600.0;
        let region = Rect::square(side);
        let positions = deployment(n, side, seed ^ 0xdead);
        let cfg = config(coverage_degree, 5.0);
        assert_elections_identical(&positions, region, &cfg, seed)?;
        // Coverage preservation is the election's contract for the paper's
        // K = 1 (higher K may be unattainable in a sparse deployment no
        // matter who stays awake, which the region check reports as false).
        let cfg1 = config(1, 5.0);
        let roles = elect_backbone(&positions, region, &cfg1, &mut SimRng::seed_from_u64(seed));
        prop_assert!(
            backbone_covers_region(&positions, &roles, region, &cfg1),
            "the elected backbone must keep covering the region"
        );
    }
}

/// The exact unit-test edge cases from `ccp::tests`, re-checked through the
/// equality contract: five colocated nodes reduce to one, and a sparse
/// four-node deployment keeps everyone active — identically in both paths.
#[test]
fn unit_edge_cases_agree() {
    let cfg = CcpConfig::paper_default();

    let region = Rect::square(100.0);
    let colocated = vec![Point::new(50.0, 50.0); 5];
    let fast = elect_backbone(&colocated, region, &cfg, &mut SimRng::seed_from_u64(4));
    let reference =
        elect_backbone_reference(&colocated, region, &cfg, &mut SimRng::seed_from_u64(4));
    assert_eq!(fast, reference);
    assert_eq!(fast.iter().filter(|r| r.is_backbone()).count(), 1);

    let region = Rect::square(450.0);
    let sparse = vec![
        Point::new(50.0, 50.0),
        Point::new(250.0, 50.0),
        Point::new(50.0, 250.0),
        Point::new(250.0, 250.0),
    ];
    let fast = elect_backbone(&sparse, region, &cfg, &mut SimRng::seed_from_u64(3));
    let reference = elect_backbone_reference(&sparse, region, &cfg, &mut SimRng::seed_from_u64(3));
    assert_eq!(fast, reference);
    assert!(fast.iter().all(|r| r.is_backbone()));
}
