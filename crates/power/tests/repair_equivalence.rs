//! Property-based equality contract between the incremental backbone repair
//! and the full priority re-election it replaces.
//!
//! [`wsn_power::RepairableBackbone`] re-elects only over the lattice cells
//! whose coverage a churn batch changed; these properties pin it
//! byte-identical — same role for every slot, never merely "the same
//! backbone size" — to [`wsn_power::elect_backbone_priority`] run from
//! scratch over the surviving deployment, across random churn schedules:
//! deaths and joins in every ratio, slot recycling through a free list,
//! multiple consecutive batches, varying coverage degrees and lattice
//! spacings, and the drain-to-empty and repopulate edge cases.

use proptest::prelude::*;
use proptest::TestCaseResult;
use wsn_geom::{Point, Rect, SpatialGrid};
use wsn_net::NodeRole;
use wsn_power::ccp::elect_backbone_priority;
use wsn_power::{CcpConfig, RepairableBackbone};
use wsn_sim::SimRng;

/// A slotted deployment under churn: alive slots, a free list of dead slots
/// for recycling, and the alive-only spatial grid the repair queries.
struct ChurnWorld {
    positions: Vec<Point>,
    priority: Vec<u64>,
    alive: Vec<usize>,
    free: Vec<usize>,
    grid: SpatialGrid,
    region: Rect,
    side: f64,
}

impl ChurnWorld {
    fn new(n: usize, side: f64, rng: &mut SimRng) -> Self {
        let region = Rect::square(side);
        let positions: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
            .collect();
        let priority: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut grid = SpatialGrid::new(region, 50.0).unwrap();
        for (s, &p) in positions.iter().enumerate() {
            grid.insert(s, p);
        }
        ChurnWorld {
            positions,
            priority,
            alive: (0..n).collect(),
            free: Vec::new(),
            grid,
            region,
            side,
        }
    }

    fn kill(
        &mut self,
        rng: &mut SimRng,
        backbone: &mut RepairableBackbone,
        roles: &mut [NodeRole],
    ) {
        let pick = rng.gen_range_usize(0, self.alive.len());
        let s = self.alive.swap_remove(pick);
        self.grid.remove(s);
        backbone.note_death(self.positions[s], roles[s]);
        roles[s] = NodeRole::DutyCycled;
        self.free.push(s);
    }

    /// Joins a node at a fresh position, recycling a dead slot when one is
    /// free (like the simulation's free list) or appending a new one.
    fn join(
        &mut self,
        rng: &mut SimRng,
        backbone: &mut RepairableBackbone,
        roles: &mut Vec<NodeRole>,
    ) {
        let p = Point::new(
            rng.gen_range_f64(0.0, self.side),
            rng.gen_range_f64(0.0, self.side),
        );
        let pri = rng.next_u64();
        let s = match self.free.pop() {
            Some(s) => {
                self.positions[s] = p;
                self.priority[s] = pri;
                s
            }
            None => {
                self.positions.push(p);
                self.priority.push(pri);
                roles.push(NodeRole::DutyCycled);
                self.positions.len() - 1
            }
        };
        roles[s] = NodeRole::DutyCycled;
        self.alive.push(s);
        self.grid.insert(s, p);
        backbone.note_join(p);
    }

    fn reference_roles(&self, config: &CcpConfig) -> Vec<NodeRole> {
        let mut alive = self.alive.clone();
        alive.sort_unstable();
        elect_backbone_priority(&self.positions, &self.priority, &alive, self.region, config)
    }
}

/// Runs `batches` random churn batches, asserting after each one that the
/// repaired roles equal a from-scratch priority election over the survivors.
fn assert_schedule_equivalent(
    seed: u64,
    n: usize,
    side: f64,
    batches: usize,
    deaths_per_batch: usize,
    joins_per_batch: usize,
    config: &CcpConfig,
) -> TestCaseResult {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut w = ChurnWorld::new(n, side, &mut rng);
    let (mut backbone, mut roles) =
        RepairableBackbone::new(&w.positions, &w.priority, &w.alive, w.region, config);
    prop_assert_eq!(&roles, &w.reference_roles(config), "initial election");
    for batch in 0..batches {
        for _ in 0..deaths_per_batch.min(w.alive.len()) {
            w.kill(&mut rng, &mut backbone, &mut roles);
        }
        for _ in 0..joins_per_batch {
            w.join(&mut rng, &mut backbone, &mut roles);
        }
        let stats = backbone.repair(&w.positions, &w.priority, &mut roles, &w.grid);
        prop_assert_eq!(
            stats.promoted + stats.demoted,
            stats.flips.len(),
            "flip log and counters disagree"
        );
        prop_assert_eq!(&roles, &w.reference_roles(config), "after batch {}", batch);
    }
    Ok(())
}

proptest! {
    /// Byte-identical membership across random churn schedules mixing
    /// deaths, joins and slot recycling over several batches.
    #[test]
    fn repair_matches_full_reelection(
        seed in any::<u64>(),
        n in 1usize..90,
        side in 80.0f64..300.0,
        batches in 1usize..4,
        deaths in 0usize..8,
        joins in 0usize..8,
    ) {
        assert_schedule_equivalent(seed, n, side, batches, deaths, joins, &CcpConfig::default())?;
    }

    /// Same contract at higher coverage degrees and other lattice spacings,
    /// where the fast-path threshold and span walking differ most.
    #[test]
    fn repair_matches_at_other_degrees_and_spacings(
        seed in any::<u64>(),
        n in 1usize..60,
        coverage_degree in 1usize..4,
        spacing in 2.0f64..11.0,
        deaths in 0usize..6,
        joins in 0usize..6,
    ) {
        let config = CcpConfig {
            sensing_range_m: 50.0,
            coverage_degree,
            sample_spacing_m: spacing,
        };
        assert_schedule_equivalent(seed, n, 180.0, 2, deaths, joins, &config)?;
    }

    /// Draining the deployment to (almost) empty and repopulating it from
    /// scratch exercises the empty-worklist, empty-alive and all-recycled
    /// regimes.
    #[test]
    fn drain_and_repopulate_matches(seed in any::<u64>(), n in 1usize..25) {
        let config = CcpConfig::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut w = ChurnWorld::new(n, 150.0, &mut rng);
        let (mut backbone, mut roles) = RepairableBackbone::new(
            &w.positions,
            &w.priority,
            &w.alive,
            w.region,
            &config,
        );
        // Drain everyone.
        while !w.alive.is_empty() {
            w.kill(&mut rng, &mut backbone, &mut roles);
        }
        backbone.repair(&w.positions, &w.priority, &mut roles, &w.grid);
        prop_assert!(roles.iter().all(|r| !r.is_backbone()), "empty world sleeps");
        // Repopulate entirely through recycled slots plus growth.
        for _ in 0..(n + 3) {
            w.join(&mut rng, &mut backbone, &mut roles);
        }
        backbone.repair(&w.positions, &w.priority, &mut roles, &w.grid);
        prop_assert_eq!(&roles, &w.reference_roles(&config), "after repopulation");
    }
}
