//! # wsn-power
//!
//! Power-management substrate for the MobiQuery reproduction.
//!
//! The paper assumes the sensor network runs a power-management protocol —
//! CCP (Coverage Configuration Protocol), SPAN or GAF — that keeps a small
//! **backbone** of always-active nodes providing connectivity (and, for CCP,
//! sensing coverage), while every other node duty-cycles its radio. MobiQuery
//! is evaluated on top of CCP + 802.11 PSM.
//!
//! This crate provides:
//!
//! * [`ccp`] — a CCP-style backbone election: a node may sleep only when its
//!   sensing area is already covered by other active nodes. With the paper's
//!   parameters (communication range ≥ 2 × sensing range) the resulting
//!   backbone is also connected, which is CCP's central theorem.
//! * [`raster`] — the incremental coverage raster backing the election:
//!   dense per-sample-point coverage counts built once per deployment, so a
//!   tentative demotion is an O(disk-points) pass with O(1) lookups instead
//!   of a grid range query per point.
//! * [`repair`] — incremental backbone repair under node churn: deaths and
//!   joins mark a dirty coverage region and only the perturbed nodes are
//!   re-elected, provably matching the full priority election bit for bit.
//! * [`span`] — a SPAN-style connectivity-only election, used by the ablation
//!   benchmarks to show the query service is not tied to one power protocol.
//! * [`energy`] — per-node radio energy accounting against a
//!   [`wsn_net::RadioPowerProfile`], producing the per-sleeping-node power
//!   numbers of the paper's Figure 8.
//! * [`plan`] — the combined "power plan" (role + sleep schedule per node)
//!   consumed by the protocol simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ccp;
pub mod energy;
pub mod plan;
pub mod raster;
pub mod repair;
pub mod span;

pub use ccp::{elect_backbone, elect_backbone_priority, elect_backbone_reference, CcpConfig};
pub use energy::EnergyLedger;
pub use plan::PowerPlan;
pub use raster::{CoverageRaster, DirtyRegion};
pub use repair::{RepairStats, RepairableBackbone};
pub use span::elect_backbone_span;
