//! The combined power plan: per-node roles and sleep schedules.

use serde::{Deserialize, Serialize};
use wsn_net::{NodeId, NodeRole, SleepSchedule};
use wsn_sim::{Duration, SimTime};

/// The output of a power-management protocol, as consumed by the protocol
/// simulation: which nodes form the always-awake backbone and what schedule
/// the remaining duty-cycled nodes follow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerPlan {
    roles: Vec<NodeRole>,
    schedule: SleepSchedule,
}

impl PowerPlan {
    /// Creates a plan from per-node roles and the shared duty-cycle schedule.
    pub fn new(roles: Vec<NodeRole>, schedule: SleepSchedule) -> Self {
        PowerPlan { roles, schedule }
    }

    /// A plan in which every node is a backbone node (no duty cycling);
    /// useful as a baseline and in unit tests.
    pub fn all_backbone(node_count: usize, schedule: SleepSchedule) -> Self {
        PowerPlan {
            roles: vec![NodeRole::Backbone; node_count],
            schedule,
        }
    }

    /// Number of nodes covered by the plan.
    pub fn node_count(&self) -> usize {
        self.roles.len()
    }

    /// The role of `node`.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node.index()]
    }

    /// Returns `true` when `node` is in the always-awake backbone.
    pub fn is_backbone(&self, node: NodeId) -> bool {
        self.roles[node.index()].is_backbone()
    }

    /// The duty-cycle schedule followed by non-backbone nodes.
    pub fn schedule(&self) -> SleepSchedule {
        self.schedule
    }

    /// All per-node roles, in node-id order.
    pub fn roles(&self) -> &[NodeRole] {
        &self.roles
    }

    /// Overwrites the role of `node` — the hook the incremental backbone
    /// repair uses to apply promotion/demotion flips in place instead of
    /// rebuilding the whole plan after every churn batch.
    pub fn set_role(&mut self, node: NodeId, role: NodeRole) {
        self.roles[node.index()] = role;
    }

    /// Mutable access to every per-node role, for
    /// [`crate::repair::RepairableBackbone::repair`] to apply its flips in
    /// place. Non-repair callers should use [`PowerPlan::set_role`].
    pub fn roles_mut(&mut self) -> &mut [NodeRole] {
        &mut self.roles
    }

    /// Iterator over backbone node ids.
    pub fn backbone_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_backbone().then_some(NodeId(i)))
    }

    /// Iterator over duty-cycled (sleeping) node ids.
    pub fn sleeping_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter_map(|(i, r)| (!r.is_backbone()).then_some(NodeId(i)))
    }

    /// Number of backbone nodes.
    pub fn backbone_count(&self) -> usize {
        self.roles.iter().filter(|r| r.is_backbone()).count()
    }

    /// Returns `true` when `node` is awake at time `t` under the plan's
    /// periodic schedule (backbone nodes are always awake).
    ///
    /// Protocol-requested wake overrides are tracked by the simulation on top
    /// of this baseline schedule.
    pub fn is_awake(&self, node: NodeId, t: SimTime) -> bool {
        self.is_backbone(node) || self.schedule.is_awake(t)
    }

    /// Delay before a frame handed off at `t` can be delivered to `node`
    /// (zero for backbone nodes, the PSM buffering delay otherwise).
    pub fn delivery_delay(&self, node: NodeId, t: SimTime) -> Duration {
        if self.is_backbone(node) {
            Duration::ZERO
        } else {
            self.schedule.delivery_delay(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PowerPlan {
        let roles = vec![
            NodeRole::Backbone,
            NodeRole::DutyCycled,
            NodeRole::DutyCycled,
            NodeRole::Backbone,
        ];
        PowerPlan::new(roles, SleepSchedule::paper_default(15.0))
    }

    #[test]
    fn role_queries() {
        let p = plan();
        assert_eq!(p.node_count(), 4);
        assert!(p.is_backbone(NodeId(0)));
        assert!(!p.is_backbone(NodeId(1)));
        assert_eq!(p.backbone_count(), 2);
        assert_eq!(
            p.backbone_nodes().collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(3)]
        );
        assert_eq!(
            p.sleeping_nodes().collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn backbone_nodes_are_always_awake() {
        let p = plan();
        for secs in [0u64, 1, 7, 14, 200] {
            assert!(p.is_awake(NodeId(0), SimTime::from_secs(secs)));
            assert_eq!(
                p.delivery_delay(NodeId(3), SimTime::from_secs(secs)),
                Duration::ZERO
            );
        }
    }

    #[test]
    fn sleeping_nodes_follow_the_schedule() {
        let p = plan();
        assert!(p.is_awake(NodeId(1), SimTime::from_millis(50)));
        assert!(!p.is_awake(NodeId(1), SimTime::from_secs(7)));
        assert_eq!(
            p.delivery_delay(NodeId(1), SimTime::from_secs(7)),
            Duration::from_secs(8)
        );
    }

    #[test]
    fn all_backbone_plan_never_sleeps() {
        let p = PowerPlan::all_backbone(3, SleepSchedule::paper_default(15.0));
        assert_eq!(p.backbone_count(), 3);
        assert_eq!(p.sleeping_nodes().count(), 0);
        assert!(p.is_awake(NodeId(2), SimTime::from_secs(7)));
    }
}
