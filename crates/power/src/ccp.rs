//! CCP-style backbone election based on sensing-coverage redundancy.
//!
//! The Coverage Configuration Protocol (Wang, Xing et al., SenSys 2003 — by
//! the same group as the MobiQuery paper) lets a node sleep only when its
//! sensing area is already K-covered by active neighbours; when the
//! communication range is at least twice the sensing range, preserving
//! coverage also preserves connectivity, so the active nodes form a connected
//! backbone.
//!
//! MobiQuery only needs CCP for the backbone it produces, not for CCP's own
//! protocol dynamics, so we run the eligibility rule as a centralised greedy
//! pass at deployment time (documented substitution in `DESIGN.md`): nodes are
//! visited in random order and put to sleep whenever the remaining active
//! nodes still cover their sensing disk. Coverage of a disk is evaluated on a
//! dense sample of points clipped to the deployment region, which is exact up
//! to the sampling resolution and considerably more robust than the
//! intersection-point rule in the presence of region boundaries.

//!
//! Coverage is evaluated on the sample-point [`Lattice`] anchored at the
//! region origin. The production election maintains an incremental
//! [`CoverageRaster`] of per-point coverage counts (built once, updated per
//! demotion); the original per-point range-query implementation is retained
//! as [`elect_backbone_reference`] and property-tested to produce
//! bit-identical roles.

use crate::plan::PowerPlan;
use crate::raster::CoverageRaster;
use serde::{Deserialize, Serialize};
use wsn_geom::{Circle, Lattice, Point, Rect, SpatialGrid};
use wsn_net::{NodeRole, SleepSchedule};
use wsn_sim::SimRng;

/// Parameters of the CCP-style election.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcpConfig {
    /// Sensing range of every node, in metres. Paper default: 50 m.
    pub sensing_range_m: f64,
    /// Required degree of coverage (K). The paper uses K = 1.
    pub coverage_degree: usize,
    /// Spacing of the sample lattice used for the coverage check, in metres.
    /// 5 m (a tenth of the sensing range) is ample for 50 m sensing disks.
    pub sample_spacing_m: f64,
}

impl CcpConfig {
    /// The evaluation settings of Section 6.1: 50 m sensing range, 1-coverage.
    pub fn paper_default() -> Self {
        CcpConfig {
            sensing_range_m: 50.0,
            coverage_degree: 1,
            sample_spacing_m: 5.0,
        }
    }
}

impl Default for CcpConfig {
    fn default() -> Self {
        CcpConfig::paper_default()
    }
}

/// Returns `true` when every sample point of `disk ∩ region` is within
/// `sensing_range` of at least `k` of the given active positions.
///
/// This is the reference coverage check: a spatial-grid range query per
/// sample point (short-circuited after `k` hits — dense cells hold far more
/// neighbours than the check needs). Sample points are enumerated through
/// the shared [`Lattice`] so the reference and the raster evaluate
/// predicates at bit-identical coordinates.
fn disk_covered(
    disk: Circle,
    lattice: &Lattice,
    active: &SpatialGrid,
    sensing_range: f64,
    k: usize,
) -> bool {
    // The lattice is anchored at the region origin so every coverage check
    // in a deployment evaluates the same global set of points. This makes the
    // greedy election's invariant exact on the lattice: if each removal keeps
    // the removed node's lattice points covered, the whole region's lattice
    // stays covered.
    let bb = disk.bounding_box();
    let Some((iy_lo, iy_hi)) = lattice.row_range(bb.min_y, bb.max_y) else {
        // The disk lies entirely outside the deployment region; nothing to cover.
        return true;
    };
    let Some((ix_lo, ix_hi)) = lattice.col_range(bb.min_x, bb.max_x) else {
        return true;
    };
    for iy in iy_lo..=iy_hi {
        for ix in ix_lo..=ix_hi {
            let p = lattice.point(ix, iy);
            if disk.contains(p) {
                let covers = active.query_range(p, sensing_range).take(k).count();
                if covers < k {
                    return false;
                }
            }
        }
    }
    true
}

/// Validates the election parameters shared by both implementations and
/// returns the shuffled visit order.
fn election_order(n: usize, config: &CcpConfig, rng: &mut SimRng) -> Vec<usize> {
    assert!(
        config.sensing_range_m > 0.0,
        "sensing range must be positive"
    );
    assert!(
        config.sample_spacing_m > 0.0,
        "sample spacing must be positive"
    );
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    order
}

/// Runs the CCP-style backbone election.
///
/// Nodes are considered in a random order (determined by `rng`, so the
/// election is reproducible per seed). A node is demoted to duty-cycled
/// operation when the sensing disks of the *other* currently-active nodes
/// still provide `coverage_degree`-coverage of its own sensing disk within
/// the deployment region; otherwise it stays in the backbone.
///
/// Eligibility is served by an incremental [`CoverageRaster`]: per-point
/// coverage counts built once in O(n · disk-points), after which each
/// tentative demotion touches only the candidate's own disk points with
/// O(1) lookups. The result is bit-identical to
/// [`elect_backbone_reference`] for every input (property-tested).
///
/// Returns one [`NodeRole`] per node, in node-id order.
///
/// # Panics
///
/// Panics if `config.sensing_range_m` or `config.sample_spacing_m` is not
/// strictly positive.
pub fn elect_backbone(
    positions: &[Point],
    region: Rect,
    config: &CcpConfig,
    rng: &mut SimRng,
) -> Vec<NodeRole> {
    let n = positions.len();
    let order = election_order(n, config, rng);
    let mut roles = vec![NodeRole::Backbone; n];
    if n == 0 {
        return roles;
    }
    let mut raster = CoverageRaster::build(
        positions,
        region,
        config.sensing_range_m,
        config.sample_spacing_m,
    );
    for i in order {
        if raster.try_demote(positions[i], config.coverage_degree) {
            roles[i] = NodeRole::DutyCycled;
        }
    }
    roles
}

/// The pre-raster election: identical greedy pass, but every eligibility
/// check re-runs a grid range query per sample point of the candidate's
/// disk.
///
/// Kept as the executable specification of the election: the `ccp_election`
/// criterion bench and the equivalence property tests pin
/// [`elect_backbone`]'s output byte-for-byte against this function across
/// seeds, densities and coverage degrees.
pub fn elect_backbone_reference(
    positions: &[Point],
    region: Rect,
    config: &CcpConfig,
    rng: &mut SimRng,
) -> Vec<NodeRole> {
    let n = positions.len();
    let order = election_order(n, config, rng);
    let mut roles = vec![NodeRole::Backbone; n];
    if n == 0 {
        return roles;
    }

    let lattice = Lattice::new(region, config.sample_spacing_m).expect("validated spacing");
    // Grid of currently-active nodes, updated as nodes are demoted.
    let mut active = SpatialGrid::new(region, config.sensing_range_m)
        .expect("positive sensing range yields a valid grid");
    for (i, &p) in positions.iter().enumerate() {
        active.insert(i, p);
    }

    for i in order {
        let p = positions[i];
        // Tentatively remove the node and test whether the rest still covers
        // its sensing disk.
        active.remove(i);
        let disk = Circle::new(p, config.sensing_range_m);
        if disk_covered(
            disk,
            &lattice,
            &active,
            config.sensing_range_m,
            config.coverage_degree,
        ) {
            roles[i] = NodeRole::DutyCycled;
        } else {
            active.insert(i, p);
        }
    }
    roles
}

/// Runs the CCP-style election over a slotted, partially-alive deployment in
/// **stable priority order** — the reference full re-election of churn mode.
///
/// Unlike [`elect_backbone`], whose shuffled visit order cannot be replayed
/// locally after the deployment changes, this variant visits the alive slots
/// in ascending `(priority[slot], slot)` order. The order is a pure function
/// of per-node values, so after a churn batch the incremental repair
/// (`crate::repair`) can re-evaluate just the perturbed nodes and provably
/// land on the same backbone this full pass elects — the equivalence the
/// repair property tests pin.
///
/// `positions` and `priority` are slot-indexed (dead slots may hold stale
/// values); only the slots listed in `alive_slots` participate. Returns one
/// role per slot; dead slots come back [`NodeRole::DutyCycled`].
///
/// # Panics
///
/// Panics if the config is invalid, a slot is listed twice or out of range.
pub fn elect_backbone_priority(
    positions: &[Point],
    priority: &[u64],
    alive_slots: &[usize],
    region: Rect,
    config: &CcpConfig,
) -> Vec<NodeRole> {
    elect_backbone_priority_with_raster(positions, priority, alive_slots, region, config).0
}

/// [`elect_backbone_priority`] plus the post-election coverage raster, whose
/// counts at that point are exactly "how many **backbone** nodes cover each
/// sample point" — the seed state of [`crate::repair::RepairableBackbone`].
pub(crate) fn elect_backbone_priority_with_raster(
    positions: &[Point],
    priority: &[u64],
    alive_slots: &[usize],
    region: Rect,
    config: &CcpConfig,
) -> (Vec<NodeRole>, CoverageRaster) {
    assert!(
        config.sensing_range_m > 0.0,
        "sensing range must be positive"
    );
    assert!(
        config.sample_spacing_m > 0.0,
        "sample spacing must be positive"
    );
    assert_eq!(positions.len(), priority.len(), "slot arrays must agree");
    let mut roles = vec![NodeRole::DutyCycled; positions.len()];
    for &s in alive_slots {
        assert!(
            !roles[s].is_backbone(),
            "slot {s} listed twice in alive_slots"
        );
        roles[s] = NodeRole::Backbone;
    }
    // Build bottom-to-top for memory locality, exactly like `build` (integer
    // adds commute, so counts do not depend on insertion order).
    let mut raster = CoverageRaster::new(region, config.sensing_range_m, config.sample_spacing_m);
    let mut by_y: Vec<usize> = alive_slots.to_vec();
    by_y.sort_unstable_by(|&a, &b| positions[a].y.total_cmp(&positions[b].y));
    for s in by_y {
        raster.add(positions[s]);
    }
    let mut order: Vec<usize> = alive_slots.to_vec();
    order.sort_unstable_by_key(|&s| (priority[s], s));
    for s in order {
        if raster.try_demote(positions[s], config.coverage_degree) {
            roles[s] = NodeRole::DutyCycled;
        }
    }
    (roles, raster)
}

/// Convenience wrapper: runs the election and packages the result as a
/// [`PowerPlan`] in which every duty-cycled node follows `schedule`.
pub fn elect_power_plan(
    positions: &[Point],
    region: Rect,
    config: &CcpConfig,
    schedule: SleepSchedule,
    rng: &mut SimRng,
) -> PowerPlan {
    let roles = elect_backbone(positions, region, config, rng);
    PowerPlan::new(roles, schedule)
}

/// Verifies that the nodes currently marked [`NodeRole::Backbone`] provide
/// `coverage_degree`-coverage of the whole deployment region.
///
/// Used by tests and by the simulation's self-checks; sampling resolution is
/// taken from `config.sample_spacing_m`.
pub fn backbone_covers_region(
    positions: &[Point],
    roles: &[NodeRole],
    region: Rect,
    config: &CcpConfig,
) -> bool {
    if !(config.sensing_range_m > 0.0 && config.sample_spacing_m > 0.0) {
        return false;
    }
    // Two rasters over the same lattice: coverage by the backbone, and
    // coverage by the whole deployment. A lattice point only *requires*
    // k-coverage where the original deployment could provide any coverage at
    // all (the region corners of a random deployment may simply contain no
    // node).
    let backbone_positions: Vec<Point> = positions
        .iter()
        .zip(roles)
        .filter(|(_, r)| r.is_backbone())
        .map(|(&p, _)| p)
        .collect();
    let backbone = CoverageRaster::build(
        &backbone_positions,
        region,
        config.sensing_range_m,
        config.sample_spacing_m,
    );
    let all = CoverageRaster::build(
        positions,
        region,
        config.sensing_range_m,
        config.sample_spacing_m,
    );
    let lattice = *all.lattice();
    let k = u32::try_from(config.coverage_degree).unwrap_or(u32::MAX);
    for iy in 0..lattice.rows() {
        for ix in 0..lattice.cols() {
            if all.count(ix, iy) > 0 && backbone.count(ix, iy) < k {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_deployment(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
            .collect()
    }

    #[test]
    fn dense_deployment_demotes_many_nodes() {
        let region = Rect::square(200.0);
        let positions = random_deployment(150, 200.0, 1);
        let mut rng = SimRng::seed_from_u64(2);
        let roles = elect_backbone(&positions, region, &CcpConfig::paper_default(), &mut rng);
        let backbone = roles.iter().filter(|r| r.is_backbone()).count();
        assert!(backbone < positions.len(), "some nodes must sleep");
        assert!(backbone > 0, "a backbone must remain");
        // In a deployment this dense most nodes are redundant.
        assert!(
            backbone < positions.len() / 2,
            "expected a small backbone, got {backbone}/{}",
            positions.len()
        );
    }

    #[test]
    fn backbone_preserves_coverage() {
        let region = Rect::square(300.0);
        let cfg = CcpConfig::paper_default();
        for seed in 0..3u64 {
            let positions = random_deployment(200, 300.0, seed * 7 + 1);
            let mut rng = SimRng::seed_from_u64(seed);
            let roles = elect_backbone(&positions, region, &cfg, &mut rng);
            assert!(
                backbone_covers_region(&positions, &roles, region, &cfg),
                "backbone must cover the region (seed {seed})"
            );
        }
    }

    #[test]
    fn sparse_deployment_keeps_everyone_active() {
        // Nodes far apart: nobody is redundant.
        let region = Rect::square(450.0);
        let positions = vec![
            Point::new(50.0, 50.0),
            Point::new(250.0, 50.0),
            Point::new(50.0, 250.0),
            Point::new(250.0, 250.0),
        ];
        let mut rng = SimRng::seed_from_u64(3);
        let roles = elect_backbone(&positions, region, &CcpConfig::paper_default(), &mut rng);
        assert!(roles.iter().all(|r| r.is_backbone()));
    }

    #[test]
    fn colocated_nodes_reduce_to_one_active() {
        let region = Rect::square(100.0);
        let positions = vec![Point::new(50.0, 50.0); 5];
        let mut rng = SimRng::seed_from_u64(4);
        let roles = elect_backbone(&positions, region, &CcpConfig::paper_default(), &mut rng);
        let backbone = roles.iter().filter(|r| r.is_backbone()).count();
        assert_eq!(backbone, 1);
    }

    #[test]
    fn higher_coverage_degree_keeps_more_nodes() {
        let region = Rect::square(200.0);
        let positions = random_deployment(150, 200.0, 9);
        let cfg1 = CcpConfig::paper_default();
        let cfg2 = CcpConfig {
            coverage_degree: 2,
            ..cfg1
        };
        let roles1 = elect_backbone(&positions, region, &cfg1, &mut SimRng::seed_from_u64(5));
        let roles2 = elect_backbone(&positions, region, &cfg2, &mut SimRng::seed_from_u64(5));
        let b1 = roles1.iter().filter(|r| r.is_backbone()).count();
        let b2 = roles2.iter().filter(|r| r.is_backbone()).count();
        assert!(
            b2 >= b1,
            "2-coverage backbone ({b2}) must be at least as large as 1-coverage ({b1})"
        );
    }

    #[test]
    fn election_is_reproducible_per_seed() {
        let region = Rect::square(200.0);
        let positions = random_deployment(100, 200.0, 11);
        let cfg = CcpConfig::paper_default();
        let a = elect_backbone(&positions, region, &cfg, &mut SimRng::seed_from_u64(42));
        let b = elect_backbone(&positions, region, &cfg, &mut SimRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn raster_election_is_bit_identical_to_reference() {
        let region = Rect::square(250.0);
        let cfg = CcpConfig::paper_default();
        for seed in 0..5u64 {
            let positions = random_deployment(180, 250.0, seed * 13 + 3);
            let fast = elect_backbone(
                &positions,
                region,
                &cfg,
                &mut SimRng::seed_from_u64(seed + 100),
            );
            let reference = elect_backbone_reference(
                &positions,
                region,
                &cfg,
                &mut SimRng::seed_from_u64(seed + 100),
            );
            assert_eq!(fast, reference, "seed {seed}");
        }
    }

    #[test]
    fn empty_deployment_is_fine() {
        let mut rng = SimRng::seed_from_u64(1);
        let roles = elect_backbone(
            &[],
            Rect::square(10.0),
            &CcpConfig::paper_default(),
            &mut rng,
        );
        assert!(roles.is_empty());
    }
}
