//! CCP-style backbone election based on sensing-coverage redundancy.
//!
//! The Coverage Configuration Protocol (Wang, Xing et al., SenSys 2003 — by
//! the same group as the MobiQuery paper) lets a node sleep only when its
//! sensing area is already K-covered by active neighbours; when the
//! communication range is at least twice the sensing range, preserving
//! coverage also preserves connectivity, so the active nodes form a connected
//! backbone.
//!
//! MobiQuery only needs CCP for the backbone it produces, not for CCP's own
//! protocol dynamics, so we run the eligibility rule as a centralised greedy
//! pass at deployment time (documented substitution in `DESIGN.md`): nodes are
//! visited in random order and put to sleep whenever the remaining active
//! nodes still cover their sensing disk. Coverage of a disk is evaluated on a
//! dense sample of points clipped to the deployment region, which is exact up
//! to the sampling resolution and considerably more robust than the
//! intersection-point rule in the presence of region boundaries.

use crate::plan::PowerPlan;
use serde::{Deserialize, Serialize};
use wsn_geom::{Circle, Point, Rect, SpatialGrid};
use wsn_net::{NodeRole, SleepSchedule};
use wsn_sim::SimRng;

/// Parameters of the CCP-style election.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcpConfig {
    /// Sensing range of every node, in metres. Paper default: 50 m.
    pub sensing_range_m: f64,
    /// Required degree of coverage (K). The paper uses K = 1.
    pub coverage_degree: usize,
    /// Spacing of the sample lattice used for the coverage check, in metres.
    /// 5 m (a tenth of the sensing range) is ample for 50 m sensing disks.
    pub sample_spacing_m: f64,
}

impl CcpConfig {
    /// The evaluation settings of Section 6.1: 50 m sensing range, 1-coverage.
    pub fn paper_default() -> Self {
        CcpConfig {
            sensing_range_m: 50.0,
            coverage_degree: 1,
            sample_spacing_m: 5.0,
        }
    }
}

impl Default for CcpConfig {
    fn default() -> Self {
        CcpConfig::paper_default()
    }
}

/// Returns `true` when every sample point of `disk ∩ region` is within
/// `sensing_range` of at least `k` of the given active positions.
fn disk_covered(
    disk: Circle,
    region: Rect,
    active: &SpatialGrid,
    sensing_range: f64,
    k: usize,
    spacing: f64,
) -> bool {
    let bb = disk.bounding_box();
    let min_x = bb.min_x.max(region.min_x);
    let max_x = bb.max_x.min(region.max_x);
    let min_y = bb.min_y.max(region.min_y);
    let max_y = bb.max_y.min(region.max_y);
    if min_x > max_x || min_y > max_y {
        // The disk lies entirely outside the deployment region; nothing to cover.
        return true;
    }
    // Anchor the sample lattice at the region origin so every coverage check
    // in a deployment evaluates the same global set of points. This makes the
    // greedy election's invariant exact on the lattice: if each removal keeps
    // the removed node's lattice points covered, the whole region's lattice
    // stays covered.
    let align = |v: f64, origin: f64| origin + ((v - origin) / spacing).ceil() * spacing;
    let start_x = align(min_x, region.min_x);
    let start_y = align(min_y, region.min_y);
    let mut y = start_y;
    while y <= max_y {
        let mut x = start_x;
        while x <= max_x {
            let p = Point::new(x, y);
            if disk.contains(p) {
                let covers = active.query_range(p, sensing_range).count();
                if covers < k {
                    return false;
                }
            }
            x += spacing;
        }
        y += spacing;
    }
    true
}

/// Runs the CCP-style backbone election.
///
/// Nodes are considered in a random order (determined by `rng`, so the
/// election is reproducible per seed). A node is demoted to duty-cycled
/// operation when the sensing disks of the *other* currently-active nodes
/// still provide `coverage_degree`-coverage of its own sensing disk within
/// the deployment region; otherwise it stays in the backbone.
///
/// Returns one [`NodeRole`] per node, in node-id order.
///
/// # Panics
///
/// Panics if `config.sensing_range_m` or `config.sample_spacing_m` is not
/// strictly positive.
pub fn elect_backbone(
    positions: &[Point],
    region: Rect,
    config: &CcpConfig,
    rng: &mut SimRng,
) -> Vec<NodeRole> {
    assert!(
        config.sensing_range_m > 0.0,
        "sensing range must be positive"
    );
    assert!(
        config.sample_spacing_m > 0.0,
        "sample spacing must be positive"
    );

    let n = positions.len();
    let mut roles = vec![NodeRole::Backbone; n];
    if n == 0 {
        return roles;
    }

    // Grid of currently-active nodes, updated as nodes are demoted.
    let mut active = SpatialGrid::new(region, config.sensing_range_m)
        .expect("positive sensing range yields a valid grid");
    for (i, &p) in positions.iter().enumerate() {
        active.insert(i, p);
    }

    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);

    for i in order {
        let p = positions[i];
        // Tentatively remove the node and test whether the rest still covers
        // its sensing disk.
        active.remove(i);
        let disk = Circle::new(p, config.sensing_range_m);
        if disk_covered(
            disk,
            region,
            &active,
            config.sensing_range_m,
            config.coverage_degree,
            config.sample_spacing_m,
        ) {
            roles[i] = NodeRole::DutyCycled;
        } else {
            active.insert(i, p);
        }
    }
    roles
}

/// Convenience wrapper: runs the election and packages the result as a
/// [`PowerPlan`] in which every duty-cycled node follows `schedule`.
pub fn elect_power_plan(
    positions: &[Point],
    region: Rect,
    config: &CcpConfig,
    schedule: SleepSchedule,
    rng: &mut SimRng,
) -> PowerPlan {
    let roles = elect_backbone(positions, region, config, rng);
    PowerPlan::new(roles, schedule)
}

/// Verifies that the nodes currently marked [`NodeRole::Backbone`] provide
/// `coverage_degree`-coverage of the whole deployment region.
///
/// Used by tests and by the simulation's self-checks; sampling resolution is
/// taken from `config.sample_spacing_m`.
pub fn backbone_covers_region(
    positions: &[Point],
    roles: &[NodeRole],
    region: Rect,
    config: &CcpConfig,
) -> bool {
    let mut active = match SpatialGrid::new(region, config.sensing_range_m) {
        Ok(g) => g,
        Err(_) => return false,
    };
    for (i, &p) in positions.iter().enumerate() {
        if roles[i].is_backbone() {
            active.insert(i, p);
        }
    }
    let spacing = config.sample_spacing_m;
    let mut y = region.min_y;
    while y <= region.max_y {
        let mut x = region.min_x;
        while x <= region.max_x {
            let p = Point::new(x, y);
            // Only require coverage where the original deployment could
            // provide it at all (the region corners of a random deployment may
            // simply contain no node).
            let possible = positions
                .iter()
                .any(|&q| q.distance_to(p) <= config.sensing_range_m);
            if possible {
                let covers = active.query_range(p, config.sensing_range_m).count();
                if covers < config.coverage_degree {
                    return false;
                }
            }
            x += spacing;
        }
        y += spacing;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_deployment(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
            .collect()
    }

    #[test]
    fn dense_deployment_demotes_many_nodes() {
        let region = Rect::square(200.0);
        let positions = random_deployment(150, 200.0, 1);
        let mut rng = SimRng::seed_from_u64(2);
        let roles = elect_backbone(&positions, region, &CcpConfig::paper_default(), &mut rng);
        let backbone = roles.iter().filter(|r| r.is_backbone()).count();
        assert!(backbone < positions.len(), "some nodes must sleep");
        assert!(backbone > 0, "a backbone must remain");
        // In a deployment this dense most nodes are redundant.
        assert!(
            backbone < positions.len() / 2,
            "expected a small backbone, got {backbone}/{}",
            positions.len()
        );
    }

    #[test]
    fn backbone_preserves_coverage() {
        let region = Rect::square(300.0);
        let cfg = CcpConfig::paper_default();
        for seed in 0..3u64 {
            let positions = random_deployment(200, 300.0, seed * 7 + 1);
            let mut rng = SimRng::seed_from_u64(seed);
            let roles = elect_backbone(&positions, region, &cfg, &mut rng);
            assert!(
                backbone_covers_region(&positions, &roles, region, &cfg),
                "backbone must cover the region (seed {seed})"
            );
        }
    }

    #[test]
    fn sparse_deployment_keeps_everyone_active() {
        // Nodes far apart: nobody is redundant.
        let region = Rect::square(450.0);
        let positions = vec![
            Point::new(50.0, 50.0),
            Point::new(250.0, 50.0),
            Point::new(50.0, 250.0),
            Point::new(250.0, 250.0),
        ];
        let mut rng = SimRng::seed_from_u64(3);
        let roles = elect_backbone(&positions, region, &CcpConfig::paper_default(), &mut rng);
        assert!(roles.iter().all(|r| r.is_backbone()));
    }

    #[test]
    fn colocated_nodes_reduce_to_one_active() {
        let region = Rect::square(100.0);
        let positions = vec![Point::new(50.0, 50.0); 5];
        let mut rng = SimRng::seed_from_u64(4);
        let roles = elect_backbone(&positions, region, &CcpConfig::paper_default(), &mut rng);
        let backbone = roles.iter().filter(|r| r.is_backbone()).count();
        assert_eq!(backbone, 1);
    }

    #[test]
    fn higher_coverage_degree_keeps_more_nodes() {
        let region = Rect::square(200.0);
        let positions = random_deployment(150, 200.0, 9);
        let cfg1 = CcpConfig::paper_default();
        let cfg2 = CcpConfig {
            coverage_degree: 2,
            ..cfg1
        };
        let roles1 = elect_backbone(&positions, region, &cfg1, &mut SimRng::seed_from_u64(5));
        let roles2 = elect_backbone(&positions, region, &cfg2, &mut SimRng::seed_from_u64(5));
        let b1 = roles1.iter().filter(|r| r.is_backbone()).count();
        let b2 = roles2.iter().filter(|r| r.is_backbone()).count();
        assert!(
            b2 >= b1,
            "2-coverage backbone ({b2}) must be at least as large as 1-coverage ({b1})"
        );
    }

    #[test]
    fn election_is_reproducible_per_seed() {
        let region = Rect::square(200.0);
        let positions = random_deployment(100, 200.0, 11);
        let cfg = CcpConfig::paper_default();
        let a = elect_backbone(&positions, region, &cfg, &mut SimRng::seed_from_u64(42));
        let b = elect_backbone(&positions, region, &cfg, &mut SimRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_deployment_is_fine() {
        let mut rng = SimRng::seed_from_u64(1);
        let roles = elect_backbone(
            &[],
            Rect::square(10.0),
            &CcpConfig::paper_default(),
            &mut rng,
        );
        assert!(roles.is_empty());
    }
}
