//! Incremental backbone repair under node churn.
//!
//! Re-running the full CCP election after every churn batch costs
//! O(n · disk-points) even when only a handful of nodes died or joined. The
//! [`RepairableBackbone`] instead re-elects **only over the lattice cells
//! whose coverage changed**: each death or join marks the node's sensing disk
//! in a [`DirtyRegion`], and the repair re-evaluates just the alive nodes
//! whose own disks touch a dirty cell, promoting or demoting a handful of
//! nodes instead of all n.
//!
//! ## Why repair ≡ full re-election, bit for bit
//!
//! The reference election ([`elect_backbone_priority`]) visits alive slots in
//! ascending `(priority, slot)` key order; a node demotes itself exactly when
//! the *other* nodes still active at its step `k`-cover its sensing disk. Two
//! facts make a local repair exact:
//!
//! 1. **Locality.** A node's decision depends only on coverage counts at the
//!    lattice points of its own disk. If no churn event's disk and no role
//!    flip's disk shares a lattice point with node `s`'s disk, every count
//!    `s` reads is unchanged, and so is its decision. The [`DirtyRegion`]
//!    records exactly the cells whose counts changed, so "disk touches a
//!    dirty cell" is a sound superset of "decision may have changed".
//! 2. **Monotone key order.** The repair pops candidates from an ordered
//!    worklist in ascending key. When candidate `s` is evaluated, every node
//!    with a smaller key either was already re-evaluated (its role is final)
//!    or provably kept its old decision — so `s` can reconstruct the exact
//!    active set of its reference step: node `j ≠ s` is active iff
//!    `key(j) > key(s)` (not yet demotable at `s`'s step) **or** `j` is
//!    currently backbone (smaller-key survivors are final). When `s` flips,
//!    the nodes whose steps could see the difference all have strictly larger
//!    keys and overlapping disks; the repair enqueues exactly those, and
//!    since inserted keys always exceed the key being popped, no slot is
//!    ever evaluated twice.
//!
//! ## The backbone-count fast path
//!
//! Evaluating a candidate point by grid query costs ~disk-points × range
//! query; done naively, moderate churn rates make repair *slower* than the
//! full election. The repair therefore maintains a persistent
//! [`CoverageRaster`] counting coverage **by current-backbone alive nodes
//! only** (seeded by the initial election, patched on every death, join and
//! flip). At any point `p` of candidate `s`'s disk, every current-backbone
//! node `j ≠ s` is active at `s`'s reference step (smaller-key backbone
//! survivors are final; larger-key nodes are active regardless of role), so
//! `backbone_count(p) − (s is backbone)` lower-bounds the active-others
//! count: when it already reaches `k`, the point is satisfied with an O(1)
//! lookup and no grid query at all. Only points near the churn events fall
//! through to the exact query.
//!
//! [`elect_backbone_priority`]: crate::ccp::elect_backbone_priority

use std::collections::BTreeSet;

use wsn_geom::{Point, Rect, SpatialGrid};
use wsn_net::NodeRole;

use crate::ccp::{elect_backbone_priority_with_raster, CcpConfig};
use crate::raster::{CoverageRaster, DirtyRegion};

/// Counters and role flips from one [`RepairableBackbone::repair`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Alive nodes seeded into the worklist because their disks touch a
    /// dirty cell.
    pub candidates: usize,
    /// Total worklist pops (candidates plus flip-propagated re-evaluations).
    pub evaluated: usize,
    /// Nodes promoted to the backbone.
    pub promoted: usize,
    /// Nodes demoted to duty cycling.
    pub demoted: usize,
    /// Lattice cells that were dirty when the repair started.
    pub dirty_cells: usize,
    /// Every role change applied, as `(slot, is_now_backbone)` in evaluation
    /// order — lets callers patch their own backbone indexes incrementally.
    pub flips: Vec<(u32, bool)>,
}

/// A CCP backbone that absorbs node churn by incremental repair instead of
/// full re-election, while provably electing the same backbone.
///
/// ## Protocol
///
/// 1. [`RepairableBackbone::new`] runs the full priority election once and
///    returns the roles; the caller keeps the slot-indexed `roles` array.
/// 2. Per churn event, call [`note_death`](RepairableBackbone::note_death)
///    **after** removing the slot from the alive grid (passing the role the
///    node held), or [`note_join`](RepairableBackbone::note_join) **after**
///    inserting it. The caller sets dead slots to [`NodeRole::DutyCycled`]
///    and starts joined slots as [`NodeRole::DutyCycled`] too — the repair
///    promotes them if the election would.
/// 3. After the batch, call [`repair`](RepairableBackbone::repair) with the
///    current slot arrays, the alive grid and the same `roles` array; it
///    applies promotions/demotions in place and returns [`RepairStats`].
///
/// The grid passed to `repair` must contain exactly the alive slots (it is
/// both the alive-set oracle and the spatial index), and `positions[s]` /
/// `priority[s]` must be stable for every alive slot between calls.
#[derive(Debug, Clone)]
pub struct RepairableBackbone {
    config: CcpConfig,
    /// Coverage counts over the **current backbone** only; see module docs.
    backbone: CoverageRaster,
    dirty: DirtyRegion,
    /// Centres of the deaths/joins recorded since the last repair.
    events: Vec<Point>,
    /// Worklist seeding radius: a node whose disk overlaps an event's disk
    /// is within `2r` of the event centre (plus slack for the lattice
    /// epsilon), so querying this range around each event over-approximates
    /// the touched set cheaply before the exact `DirtyRegion` filter.
    seed_radius: f64,
}

impl RepairableBackbone {
    /// Runs the full priority election over the alive slots and returns the
    /// repairable backbone plus the elected slot-indexed roles (dead slots
    /// are [`NodeRole::DutyCycled`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid config, mismatched slot arrays or a repeated
    /// alive slot, like [`elect_backbone_priority`].
    ///
    /// [`elect_backbone_priority`]: crate::ccp::elect_backbone_priority
    pub fn new(
        positions: &[Point],
        priority: &[u64],
        alive_slots: &[usize],
        region: Rect,
        config: &CcpConfig,
    ) -> (Self, Vec<NodeRole>) {
        let (roles, backbone) =
            elect_backbone_priority_with_raster(positions, priority, alive_slots, region, config);
        let dirty = DirtyRegion::new(region, config.sensing_range_m, config.sample_spacing_m);
        let repairable = RepairableBackbone {
            config: *config,
            backbone,
            dirty,
            events: Vec::new(),
            seed_radius: 2.0 * config.sensing_range_m + 1.0,
        };
        (repairable, roles)
    }

    /// Records the death of a node at `pos` that held `role`. Call after
    /// removing the slot from the alive grid and before setting its role to
    /// [`NodeRole::DutyCycled`].
    pub fn note_death(&mut self, pos: Point, role: NodeRole) {
        self.dirty.mark_disk(pos);
        if role.is_backbone() {
            self.backbone.remove(pos);
        }
        self.events.push(pos);
    }

    /// Records a node joining at `pos`. Call after inserting the slot into
    /// the alive grid; the caller starts the slot as [`NodeRole::DutyCycled`]
    /// (the repair promotes it if the election would keep it active).
    pub fn note_join(&mut self, pos: Point) {
        self.dirty.mark_disk(pos);
        self.events.push(pos);
    }

    /// Number of churn events recorded since the last repair.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Re-elects over the dirty region only, applying role changes to
    /// `roles` in place. After this call the backbone membership is
    /// bit-identical to [`elect_backbone_priority`] over the current alive
    /// slots (the equivalence the property tests pin).
    ///
    /// [`elect_backbone_priority`]: crate::ccp::elect_backbone_priority
    pub fn repair(
        &mut self,
        positions: &[Point],
        priority: &[u64],
        roles: &mut [NodeRole],
        alive: &SpatialGrid,
    ) -> RepairStats {
        let mut stats = RepairStats {
            dirty_cells: self.dirty.dirty_cells(),
            ..RepairStats::default()
        };
        if self.events.is_empty() {
            return stats;
        }
        // Seed: alive nodes near an event whose disks touch a dirty cell.
        let mut worklist: BTreeSet<(u64, usize)> = BTreeSet::new();
        for &event in &self.events {
            for s in alive.query_range(event, self.seed_radius) {
                if self.dirty.touches(positions[s]) {
                    worklist.insert((priority[s], s));
                }
            }
        }
        stats.candidates = worklist.len();
        while let Some((pri, s)) = worklist.pop_first() {
            stats.evaluated += 1;
            let pos = positions[s];
            let wants_backbone =
                self.needs_to_stay_active(s, (pri, s), pos, priority, roles, alive);
            if wants_backbone == roles[s].is_backbone() {
                continue;
            }
            if wants_backbone {
                roles[s] = NodeRole::Backbone;
                self.backbone.add(pos);
                stats.promoted += 1;
            } else {
                roles[s] = NodeRole::DutyCycled;
                self.backbone.remove(pos);
                stats.demoted += 1;
            }
            stats.flips.push((s as u32, wants_backbone));
            // The flip changes the counts on this node's disk; only nodes at
            // strictly later election steps with overlapping disks can see
            // the difference. Inserted keys always exceed the popped key, so
            // the ascending pop order never revisits a slot.
            for j in alive.query_range(pos, self.seed_radius) {
                if (priority[j], j) > (pri, s) {
                    worklist.insert((priority[j], j));
                }
            }
        }
        self.events.clear();
        self.dirty.clear();
        stats
    }

    /// Whether node `s` must stay active in the reference election: true iff
    /// some lattice point of its disk is not `k`-covered by the nodes active
    /// at `s`'s election step (`key(j) > key(s)`, or `j` currently backbone).
    fn needs_to_stay_active(
        &self,
        s: usize,
        key: (u64, usize),
        pos: Point,
        priority: &[u64],
        roles: &[NodeRole],
        alive: &SpatialGrid,
    ) -> bool {
        let k = self.config.coverage_degree;
        let own = u32::from(roles[s].is_backbone());
        let Some(points) = self.backbone.disk_points(pos) else {
            // A disk covering no lattice point is vacuously covered.
            return false;
        };
        for (p, backbone_count) in points {
            debug_assert!(backbone_count >= own, "backbone raster out of sync");
            // Fast path: backbone nodes other than s are all active at s's
            // step, so this lower bound reaching k settles the point.
            if (backbone_count - own) as usize >= k {
                continue;
            }
            let active_others = alive
                .query_range(p, self.config.sensing_range_m)
                .filter(|&j| j != s && ((priority[j], j) > key || roles[j].is_backbone()))
                .take(k)
                .count();
            if active_others < k {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccp::elect_backbone_priority;

    /// Splitmix64, enough PRNG for deterministic test layouts.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn uniform(state: &mut u64, hi: f64) -> f64 {
        (mix(state) >> 11) as f64 / (1u64 << 53) as f64 * hi
    }

    struct World {
        positions: Vec<Point>,
        priority: Vec<u64>,
        alive: Vec<usize>,
        grid: SpatialGrid,
        region: Rect,
        config: CcpConfig,
    }

    fn seed_world(n: usize, side: f64, rng: &mut u64) -> World {
        let region = Rect::square(side);
        let positions: Vec<Point> = (0..n)
            .map(|_| Point::new(uniform(rng, side), uniform(rng, side)))
            .collect();
        let priority: Vec<u64> = (0..n).map(|_| mix(rng)).collect();
        let mut grid = SpatialGrid::new(region, 50.0).unwrap();
        for (i, &p) in positions.iter().enumerate() {
            grid.insert(i, p);
        }
        World {
            positions,
            priority,
            alive: (0..n).collect(),
            grid,
            region,
            config: CcpConfig::default(),
        }
    }

    fn assert_equivalent(w: &World, roles: &[NodeRole], what: &str) {
        let reference =
            elect_backbone_priority(&w.positions, &w.priority, &w.alive, w.region, &w.config);
        assert_eq!(roles, reference.as_slice(), "{what}");
    }

    #[test]
    fn repair_matches_reference_across_churn_batches() {
        let mut rng = 0x5eed_u64;
        let mut w = seed_world(120, 400.0, &mut rng);
        let (mut backbone, mut roles) =
            RepairableBackbone::new(&w.positions, &w.priority, &w.alive, w.region, &w.config);
        assert_equivalent(&w, &roles, "initial election");
        for batch in 0..6 {
            // Kill three random alive nodes.
            for _ in 0..3 {
                let pick = (mix(&mut rng) as usize) % w.alive.len();
                let s = w.alive.swap_remove(pick);
                w.grid.remove(s);
                backbone.note_death(w.positions[s], roles[s]);
                roles[s] = NodeRole::DutyCycled;
            }
            // Join three new ones (fresh slots, fresh priorities).
            for _ in 0..3 {
                let s = w.positions.len();
                let p = Point::new(uniform(&mut rng, 400.0), uniform(&mut rng, 400.0));
                w.positions.push(p);
                w.priority.push(mix(&mut rng));
                roles.push(NodeRole::DutyCycled);
                w.alive.push(s);
                w.grid.insert(s, p);
                backbone.note_join(p);
            }
            w.alive.sort_unstable();
            let stats = backbone.repair(&w.positions, &w.priority, &mut roles, &w.grid);
            assert!(stats.dirty_cells > 0, "batch {batch} marked nothing");
            assert_eq!(
                stats.promoted + stats.demoted,
                stats.flips.len(),
                "flip log and counters disagree"
            );
            assert_equivalent(&w, &roles, &format!("after batch {batch}"));
        }
    }

    #[test]
    fn repair_without_events_is_a_no_op() {
        let mut rng = 7_u64;
        let w = seed_world(40, 200.0, &mut rng);
        let (mut backbone, mut roles) =
            RepairableBackbone::new(&w.positions, &w.priority, &w.alive, w.region, &w.config);
        let before = roles.clone();
        let stats = backbone.repair(&w.positions, &w.priority, &mut roles, &w.grid);
        assert_eq!(stats, RepairStats::default());
        assert_eq!(roles, before);
    }

    #[test]
    fn death_of_sole_cover_promotes_a_sleeper() {
        // Two colocated nodes: the election keeps one (the smaller key) and
        // demotes the other. Killing the survivor must wake the sleeper.
        let region = Rect::square(100.0);
        let p = Point::new(50.0, 50.0);
        let positions = vec![p, p];
        let priority = vec![1, 2];
        let alive = vec![0, 1];
        let config = CcpConfig::default();
        let mut grid = SpatialGrid::new(region, 50.0).unwrap();
        grid.insert(0, p);
        grid.insert(1, p);
        let (mut backbone, mut roles) =
            RepairableBackbone::new(&positions, &priority, &alive, region, &config);
        // Key order: node 0 first; node 1 still active covers its disk, so 0
        // sleeps and 1 (nobody left to cover it) stays.
        assert_eq!(roles, vec![NodeRole::DutyCycled, NodeRole::Backbone]);
        grid.remove(1);
        backbone.note_death(p, roles[1]);
        roles[1] = NodeRole::DutyCycled;
        let stats = backbone.repair(&positions, &priority, &mut roles, &grid);
        assert_eq!(roles, vec![NodeRole::Backbone, NodeRole::DutyCycled]);
        assert_eq!((stats.promoted, stats.demoted), (1, 0));
        assert_eq!(stats.flips, vec![(0, true)]);
    }

    #[test]
    fn join_on_top_of_backbone_matches_reference() {
        // A node joining on top of an existing backbone node adds coverage
        // that can let earlier-key incumbents demote themselves — a cascade
        // the repair must propagate exactly as the full election would.
        let mut rng = 99_u64;
        let mut w = seed_world(60, 250.0, &mut rng);
        let (mut backbone, mut roles) =
            RepairableBackbone::new(&w.positions, &w.priority, &w.alive, w.region, &w.config);
        let keeper = roles
            .iter()
            .position(|r| r.is_backbone())
            .expect("some backbone");
        let s = w.positions.len();
        w.positions.push(w.positions[keeper]);
        w.priority.push(u64::MAX); // evaluated last, after every incumbent
        roles.push(NodeRole::DutyCycled);
        w.alive.push(s);
        w.grid.insert(s, w.positions[keeper]);
        backbone.note_join(w.positions[keeper]);
        backbone.repair(&w.positions, &w.priority, &mut roles, &w.grid);
        assert_equivalent(&w, &roles, "after colocated join");
    }
}
