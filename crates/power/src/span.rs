//! SPAN-style backbone election based on connectivity redundancy.
//!
//! SPAN (Chen et al., MobiCom 2001) keeps a node awake as a *coordinator*
//! only when two of its neighbours cannot reach each other directly or via
//! one or two other coordinators. The MobiQuery paper lists SPAN as one of
//! the power-management protocols its design can sit on; we provide a
//! simplified election (a node may sleep when all pairs of its neighbours
//! remain connected through other active nodes) so the ablation benchmarks
//! can swap the coverage-based CCP backbone for a connectivity-only one.

use wsn_geom::Point;
use wsn_net::{NeighborTable, NodeId, NodeRole};
use wsn_sim::SimRng;

/// Runs the SPAN-style election: a node is demoted to duty-cycled operation
/// when, after its removal, every pair of its neighbours is still connected
/// either directly or through a single common active neighbour.
///
/// Returns one [`NodeRole`] per node, in node-id order.
pub fn elect_backbone_span(
    positions: &[Point],
    neighbors: &NeighborTable,
    rng: &mut SimRng,
) -> Vec<NodeRole> {
    let n = positions.len();
    let mut roles = vec![NodeRole::Backbone; n];
    if n == 0 {
        return roles;
    }
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);

    for i in order {
        if neighbor_pairs_connected_without(NodeId(i), neighbors, &roles) {
            roles[i] = NodeRole::DutyCycled;
        }
    }
    roles
}

/// Checks whether every pair of neighbours of `node` can communicate without
/// `node`: either they are direct neighbours, or they share an active common
/// neighbour other than `node`.
fn neighbor_pairs_connected_without(
    node: NodeId,
    neighbors: &NeighborTable,
    roles: &[NodeRole],
) -> bool {
    let nbrs = neighbors.neighbors_of(node);
    for (idx, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[idx + 1..] {
            if neighbors.are_neighbors(a, b) {
                continue;
            }
            let bridged = neighbors.neighbors_of(a).iter().any(|&c| {
                c != node && roles[c.index()].is_backbone() && neighbors.are_neighbors(c, b)
            });
            if !bridged {
                return false;
            }
        }
    }
    true
}

/// Returns `true` when the set of backbone nodes forms a single connected
/// component that every duty-cycled node can reach in one hop.
///
/// This is the property MobiQuery actually relies on: any node can hand its
/// traffic to a nearby always-awake relay.
pub fn backbone_is_connected_cover(neighbors: &NeighborTable, roles: &[NodeRole]) -> bool {
    let n = roles.len();
    if n == 0 {
        return true;
    }
    // Every duty-cycled node that has neighbours at all needs an active one.
    // Isolated nodes cannot be covered by any protocol and are exempt.
    for i in 0..n {
        if !roles[i].is_backbone() && neighbors.degree(NodeId(i)) > 0 {
            let has_active_neighbor = neighbors
                .neighbors_of(NodeId(i))
                .iter()
                .any(|&m| roles[m.index()].is_backbone());
            if !has_active_neighbor {
                return false;
            }
        }
    }
    // The backbone itself must be connected (single component), considering
    // only nodes that have any neighbours at all (isolated nodes cannot be
    // connected by any protocol).
    let backbone: Vec<usize> = (0..n).filter(|&i| roles[i].is_backbone()).collect();
    let Some(&start) = backbone.first() else {
        return true;
    };
    let mut visited = vec![false; n];
    let mut stack = vec![start];
    visited[start] = true;
    while let Some(u) = stack.pop() {
        for &v in neighbors.neighbors_of(NodeId(u)) {
            if roles[v.index()].is_backbone() && !visited[v.index()] {
                visited[v.index()] = true;
                stack.push(v.index());
            }
        }
    }
    backbone
        .iter()
        .all(|&i| visited[i] || neighbors.degree(NodeId(i)) == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Rect;

    fn random_deployment(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
            .collect()
    }

    #[test]
    fn dense_network_sheds_coordinators() {
        let positions = random_deployment(200, 300.0, 21);
        let table = NeighborTable::build(&positions, Rect::square(300.0), 105.0);
        let mut rng = SimRng::seed_from_u64(22);
        let roles = elect_backbone_span(&positions, &table, &mut rng);
        let backbone = roles.iter().filter(|r| r.is_backbone()).count();
        assert!(backbone < positions.len());
        assert!(backbone > 0);
    }

    #[test]
    fn backbone_remains_connected_cover() {
        for seed in 0..3u64 {
            let positions = random_deployment(200, 300.0, seed + 31);
            let table = NeighborTable::build(&positions, Rect::square(300.0), 105.0);
            let mut rng = SimRng::seed_from_u64(seed);
            let roles = elect_backbone_span(&positions, &table, &mut rng);
            assert!(
                backbone_is_connected_cover(&table, &roles),
                "SPAN backbone must stay a connected cover (seed {seed})"
            );
        }
    }

    #[test]
    fn two_isolated_nodes_both_stay_active() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(400.0, 400.0)];
        let table = NeighborTable::build(&positions, Rect::square(450.0), 105.0);
        let mut rng = SimRng::seed_from_u64(5);
        let roles = elect_backbone_span(&positions, &table, &mut rng);
        // A node with no neighbours has no pairs to bridge, so the rule lets
        // it sleep; it is its own cover. Either outcome keeps the (trivial)
        // cover property.
        assert!(backbone_is_connected_cover(&table, &roles));
    }

    #[test]
    fn line_topology_keeps_interior_relays() {
        // A 5-node line: interior nodes are articulation points and must stay.
        let positions: Vec<Point> = (0..5).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        let table = NeighborTable::build(&positions, Rect::square(450.0), 105.0);
        let mut rng = SimRng::seed_from_u64(6);
        let roles = elect_backbone_span(&positions, &table, &mut rng);
        for (i, role) in roles.iter().enumerate().take(4).skip(1) {
            assert!(
                role.is_backbone(),
                "interior node {i} of a line must remain a coordinator"
            );
        }
        assert!(backbone_is_connected_cover(&table, &roles));
    }

    #[test]
    fn empty_network_is_trivially_fine() {
        let positions: Vec<Point> = Vec::new();
        let table = NeighborTable::build(&positions, Rect::square(10.0), 50.0);
        let mut rng = SimRng::seed_from_u64(7);
        let roles = elect_backbone_span(&positions, &table, &mut rng);
        assert!(roles.is_empty());
        assert!(backbone_is_connected_cover(&table, &roles));
    }
}
