//! Per-node radio energy accounting.
//!
//! Figure 8 of the paper reports the *average power consumption per sleeping
//! node* under different sleep periods and advance times. The ledger in this
//! module integrates the time each node's radio spends in each state against
//! a [`RadioPowerProfile`], which is exactly how ns-2's energy model produces
//! those numbers.

use serde::{Deserialize, Serialize};
use wsn_net::{NodeId, RadioPowerProfile, RadioState};
use wsn_sim::{Duration, SimTime};

/// Accumulated radio-state residency and energy for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeEnergy {
    /// Time spent transmitting.
    pub tx_time: Duration,
    /// Time spent receiving.
    pub rx_time: Duration,
    /// Time spent idle-listening.
    pub idle_time: Duration,
    /// Time spent asleep.
    pub sleep_time: Duration,
}

impl NodeEnergy {
    /// Total time accounted for.
    pub fn total_time(&self) -> Duration {
        self.tx_time + self.rx_time + self.idle_time + self.sleep_time
    }

    /// Energy in millijoules under the given power profile.
    pub fn energy_mj(&self, profile: &RadioPowerProfile) -> f64 {
        profile.energy_mj(RadioState::Transmit, self.tx_time)
            + profile.energy_mj(RadioState::Receive, self.rx_time)
            + profile.energy_mj(RadioState::Idle, self.idle_time)
            + profile.energy_mj(RadioState::Sleep, self.sleep_time)
    }

    /// Average power in watts over the accounted time (0 if nothing recorded).
    pub fn average_power_w(&self, profile: &RadioPowerProfile) -> f64 {
        let t = self.total_time().as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.energy_mj(profile) / t / 1000.0
        }
    }
}

/// Records how long every node's radio spends in each state.
///
/// ```
/// use wsn_power::EnergyLedger;
/// use wsn_net::{NodeId, RadioPowerProfile, RadioState};
/// use wsn_sim::Duration;
///
/// let mut ledger = EnergyLedger::new(2, RadioPowerProfile::IEEE_802_11);
/// ledger.record(NodeId(0), RadioState::Sleep, Duration::from_secs(9));
/// ledger.record(NodeId(0), RadioState::Idle, Duration::from_secs(1));
/// let p = ledger.average_power_w(NodeId(0));
/// assert!(p > 0.13 && p < 0.83, "between pure sleep and pure idle, got {p}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    profile: RadioPowerProfile,
    nodes: Vec<NodeEnergy>,
}

impl EnergyLedger {
    /// Creates a ledger for `node_count` nodes using the given power profile.
    pub fn new(node_count: usize, profile: RadioPowerProfile) -> Self {
        EnergyLedger {
            profile,
            nodes: vec![NodeEnergy::default(); node_count],
        }
    }

    /// Number of nodes tracked.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The power profile used for energy conversion.
    pub fn profile(&self) -> &RadioPowerProfile {
        &self.profile
    }

    /// Adds `time` spent in `state` to `node`'s account.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn record(&mut self, node: NodeId, state: RadioState, time: Duration) {
        let entry = &mut self.nodes[node.index()];
        match state {
            RadioState::Transmit => entry.tx_time += time,
            RadioState::Receive => entry.rx_time += time,
            RadioState::Idle => entry.idle_time += time,
            RadioState::Sleep => entry.sleep_time += time,
        }
    }

    /// Convenience: charges a whole span `[from, to]` to one state.
    pub fn record_span(&mut self, node: NodeId, state: RadioState, from: SimTime, to: SimTime) {
        self.record(node, state, to.saturating_since(from));
    }

    /// The per-state residency of `node`.
    pub fn node(&self, node: NodeId) -> &NodeEnergy {
        &self.nodes[node.index()]
    }

    /// Total energy consumed by `node`, in millijoules.
    pub fn energy_mj(&self, node: NodeId) -> f64 {
        self.nodes[node.index()].energy_mj(&self.profile)
    }

    /// Average power of `node` over its accounted time, in watts.
    pub fn average_power_w(&self, node: NodeId) -> f64 {
        self.nodes[node.index()].average_power_w(&self.profile)
    }

    /// Mean of the average power over the given subset of nodes, in watts.
    ///
    /// This is the Figure 8 metric when the subset is "all sleeping (duty-
    /// cycled) nodes". Nodes with no accounted time are skipped.
    pub fn mean_power_w<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for id in nodes {
            let e = &self.nodes[id.index()];
            if e.total_time() > Duration::ZERO {
                sum += e.average_power_w(&self.profile);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(n: usize) -> EnergyLedger {
        EnergyLedger::new(n, RadioPowerProfile::IEEE_802_11)
    }

    #[test]
    fn pure_sleep_power_matches_profile() {
        let mut l = ledger(1);
        l.record(NodeId(0), RadioState::Sleep, Duration::from_secs(100));
        assert!((l.average_power_w(NodeId(0)) - 0.130).abs() < 1e-9);
        assert!((l.energy_mj(NodeId(0)) - 13_000.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_states_average_between_extremes() {
        let mut l = ledger(1);
        l.record(NodeId(0), RadioState::Sleep, Duration::from_secs(9));
        l.record(NodeId(0), RadioState::Idle, Duration::from_secs(1));
        let p = l.average_power_w(NodeId(0));
        // (9*130 + 1*830) / 10 = 200 mW
        assert!((p - 0.200).abs() < 1e-9);
    }

    #[test]
    fn record_span_equals_record_duration() {
        let mut a = ledger(1);
        let mut b = ledger(1);
        a.record(NodeId(0), RadioState::Receive, Duration::from_millis(250));
        b.record_span(
            NodeId(0),
            RadioState::Receive,
            SimTime::from_millis(1000),
            SimTime::from_millis(1250),
        );
        assert_eq!(a.node(NodeId(0)), b.node(NodeId(0)));
    }

    #[test]
    fn unrecorded_node_has_zero_power() {
        let l = ledger(2);
        assert_eq!(l.average_power_w(NodeId(1)), 0.0);
        assert_eq!(l.energy_mj(NodeId(1)), 0.0);
    }

    #[test]
    fn mean_power_skips_untouched_nodes() {
        let mut l = ledger(3);
        l.record(NodeId(0), RadioState::Sleep, Duration::from_secs(10));
        l.record(NodeId(2), RadioState::Idle, Duration::from_secs(10));
        let mean = l.mean_power_w([NodeId(0), NodeId(1), NodeId(2)]);
        assert!((mean - (0.130 + 0.830) / 2.0).abs() < 1e-9);
        assert_eq!(l.mean_power_w([NodeId(1)]), 0.0);
    }

    #[test]
    fn longer_sleep_periods_lower_average_power() {
        // Emulate a duty-cycled node: 100 ms idle per period, rest asleep.
        let power_for_period = |period_s: f64| {
            let mut l = ledger(1);
            let cycles = 20;
            for _ in 0..cycles {
                l.record(NodeId(0), RadioState::Idle, Duration::from_millis(100));
                l.record(
                    NodeId(0),
                    RadioState::Sleep,
                    Duration::from_secs_f64(period_s - 0.1),
                );
            }
            l.average_power_w(NodeId(0))
        };
        let p3 = power_for_period(3.0);
        let p9 = power_for_period(9.0);
        let p15 = power_for_period(15.0);
        assert!(
            p3 > p9 && p9 > p15,
            "power must fall with sleep period: {p3} {p9} {p15}"
        );
        // All should sit between the sleep floor and idle ceiling.
        for p in [p3, p9, p15] {
            assert!(p > 0.130 && p < 0.830);
        }
    }

    #[test]
    fn total_time_sums_components() {
        let mut l = ledger(1);
        l.record(NodeId(0), RadioState::Transmit, Duration::from_millis(5));
        l.record(NodeId(0), RadioState::Receive, Duration::from_millis(10));
        l.record(NodeId(0), RadioState::Idle, Duration::from_millis(15));
        l.record(NodeId(0), RadioState::Sleep, Duration::from_millis(70));
        assert_eq!(l.node(NodeId(0)).total_time(), Duration::from_millis(100));
    }
}
