//! Incremental coverage raster: dense per-sample-point coverage counts for
//! the CCP-style backbone election.
//!
//! The reference election re-runs a spatial-grid range query for every sample
//! point of every candidate's sensing disk — O(n · disk-points · query) over
//! the whole election, which made deployment setup ~50× slower than the event
//! loop at 20 000 nodes. The raster inverts that: build the per-point
//! coverage counts **once** in O(n · disk-points), then a tentative demotion
//! is a pass over the candidate's own disk points with O(1) lookups and no
//! grid queries at all.
//!
//! The design follows the multiresolution-aggregation idea (maintain
//! precomputed per-cell aggregates instead of recomputing from raw points):
//! the lattice cell aggregate here is "how many active nodes cover this
//! sample point", and demoting a node is a local decrement of its disk's
//! cells.
//!
//! ## Equality contract with the reference
//!
//! [`CoverageRaster`] is bit-identical to the reference per-point
//! implementation (`ccp::elect_backbone_reference`) by construction:
//!
//! * Sample points come from the shared [`wsn_geom::Lattice`], so both paths
//!   evaluate predicates at the exact same coordinates (index-multiplied,
//!   never accumulated).
//! * A node covers a sample point under the **same predicate** the reference
//!   grid query uses: `point.distance_sq_to(node) ≤ r² + 1e-9`. That is also
//!   exactly [`wsn_geom::Circle::contains`] for the node's sensing disk,
//!   which is what guarantees the count delta of removing a node is 1 on
//!   precisely the points the reference checks.
//! * Therefore `counts[p] - 1 ≥ k` on every disk point ⇔ the reference's
//!   "remaining actives still k-cover the disk", point for point.
//!
//! ## The span walker
//!
//! Within one lattice row, `dx² + dy² ≤ r² + 1e-9` is monotone in `|dx|`
//! even as evaluated in floating point (subtraction, squaring and adding a
//! row-constant are all monotone maps), so the covered columns of a row form
//! an exact interval around the column nearest the disk centre; and because
//! the per-column predicate is monotone in `dy²`, those intervals are nested
//! between rows. The internal `DiskSpans` walker exploits both facts: it walks the disk's rows
//! keeping the interval's endpoints up to date with a few predicate probes
//! per row (expand or shrink from the previous row's endpoints), clipped to
//! the disk's bounding-box columns exactly like the reference. Every column
//! inside the reported span is covered — the interior of a disk row is
//! processed as one branch-free slice operation with no per-point test at
//! all.

use wsn_geom::{Circle, DenseRaster, Lattice, Point, Rect};

/// Dense lattice of "how many active sensing disks cover this sample point"
/// counts, supporting O(disk-points) incremental updates.
#[derive(Debug, Clone)]
pub struct CoverageRaster {
    counts: DenseRaster<u32>,
    /// Cached x coordinate of every lattice column (`lattice.point(ix, 0).x`).
    xs: Vec<f64>,
    /// Cached y coordinate of every lattice row (`lattice.point(0, iy).y`).
    ys: Vec<f64>,
    sensing_range: f64,
    /// The shared coverage threshold [`wsn_geom::coverage_threshold`]
    /// (`sensing_range² + ε`), exactly the `Circle::contains` / grid
    /// `query_range` comparison value.
    r2e: f64,
}

impl CoverageRaster {
    /// Creates an empty raster (no active nodes) over `region` with the given
    /// sensing range and lattice spacing.
    ///
    /// # Panics
    ///
    /// Panics if `sensing_range` or `spacing` is not strictly positive and
    /// finite (the election validates its config before building a raster).
    pub fn new(region: Rect, sensing_range: f64, spacing: f64) -> Self {
        assert!(
            sensing_range.is_finite() && sensing_range > 0.0,
            "sensing range must be positive and finite"
        );
        let lattice = Lattice::new(region, spacing).expect("validated spacing");
        let xs = (0..lattice.cols())
            .map(|ix| lattice.point(ix, 0).x)
            .collect();
        let ys = (0..lattice.rows())
            .map(|iy| lattice.point(0, iy).y)
            .collect();
        CoverageRaster {
            counts: DenseRaster::new(lattice),
            xs,
            ys,
            sensing_range,
            r2e: wsn_geom::coverage_threshold(sensing_range),
        }
    }

    /// Builds the raster with every node in `positions` active:
    /// O(n · disk-points) total.
    pub fn build(positions: &[Point], region: Rect, sensing_range: f64, spacing: f64) -> Self {
        let mut raster = CoverageRaster::new(region, sensing_range, spacing);
        // Integer adds commute bit-for-bit, so the counts do not depend on
        // insertion order — sweep the disks bottom-to-top so consecutive
        // disks write overlapping row bands instead of jumping across the
        // whole raster (the build is memory-bound at deployment scale).
        let mut order: Vec<u32> = (0..positions.len() as u32).collect();
        order
            .sort_unstable_by(|&a, &b| positions[a as usize].y.total_cmp(&positions[b as usize].y));
        for i in order {
            raster.add(positions[i as usize]);
        }
        raster
    }

    /// The sample-point lattice the counts live on.
    pub fn lattice(&self) -> &Lattice {
        self.counts.lattice()
    }

    /// Coverage count at sample point `(ix, iy)`.
    pub fn count(&self, ix: usize, iy: usize) -> u32 {
        self.counts.get(ix, iy)
    }

    /// Marks a node at `center` active: increments every lattice point its
    /// sensing disk covers.
    pub fn add(&mut self, center: Point) {
        self.update_covered(center, 1);
    }

    /// Marks a node at `center` inactive: decrements every lattice point its
    /// sensing disk covers.
    ///
    /// # Panics
    ///
    /// Debug builds panic on underflow, i.e. removing a node that was never
    /// added.
    pub fn remove(&mut self, center: Point) {
        self.update_covered(center, 1u32.wrapping_neg());
    }

    /// Whether the *other* active nodes would still provide `k`-coverage of
    /// the sensing disk of an active node at `center` — the CCP sleep
    /// eligibility rule, evaluated with O(1) lookups.
    ///
    /// The node's disk covers exactly the lattice points its removal would
    /// decrement (same predicate), so eligibility is `count ≥ k + 1` on every
    /// covered point. A disk lying entirely outside the region covers no
    /// lattice point and is vacuously eligible, matching the reference.
    pub fn eligible_to_sleep(&self, center: Point, k: usize) -> bool {
        let threshold = u32::try_from(k).unwrap_or(u32::MAX).saturating_add(1);
        let Some(spans) = DiskSpans::over(&self.xs, &self.ys, center, self.r2e, self.sensing_range)
        else {
            return true;
        };
        for (iy, lo, hi) in spans {
            if self.counts.row(iy)[lo..=hi].iter().any(|&c| c < threshold) {
                return false;
            }
        }
        true
    }

    /// Demotes the active node at `center` if the remaining actives still
    /// `k`-cover its sensing disk; returns whether it was demoted. On success
    /// the raster is decremented; on failure it is left untouched.
    ///
    /// Check and decrement are fused row by row — each disk row is verified
    /// (`count ≥ k + 1` throughout) and immediately decremented while still
    /// cache-hot, so a successful demotion walks the disk once instead of
    /// twice. A failing row stops the walk before being modified, and the
    /// rows already decremented are rolled back by re-walking the same
    /// (deterministic) spans.
    pub fn try_demote(&mut self, center: Point, k: usize) -> bool {
        let threshold = u32::try_from(k).unwrap_or(u32::MAX).saturating_add(1);
        let CoverageRaster {
            counts,
            xs,
            ys,
            sensing_range,
            r2e,
        } = self;
        let Some(spans) = DiskSpans::over(xs, ys, center, *r2e, *sensing_range) else {
            return true;
        };
        let mut failed_row = None;
        for (iy, lo, hi) in spans {
            let row = &mut counts.row_mut(iy)[lo..=hi];
            if row.iter().any(|&c| c < threshold) {
                failed_row = Some(iy);
                break;
            }
            for c in row {
                *c -= 1;
            }
        }
        let Some(stop) = failed_row else {
            return true;
        };
        let rollback = DiskSpans::over(xs, ys, center, *r2e, *sensing_range).expect("walked above");
        for (iy, lo, hi) in rollback {
            if iy == stop {
                break;
            }
            for c in &mut counts.row_mut(iy)[lo..=hi] {
                *c += 1;
            }
        }
        false
    }

    /// Iterates `(sample point, coverage count)` over every lattice point the
    /// sensing disk at `center` covers, or `None` when the disk misses the
    /// lattice entirely. The incremental repair walks this to decide, point
    /// by point, whether a candidate's disk is already covered (count fast
    /// path) or needs a grid re-query.
    pub(crate) fn disk_points(
        &self,
        center: Point,
    ) -> Option<impl Iterator<Item = (Point, u32)> + '_> {
        let spans = DiskSpans::over(&self.xs, &self.ys, center, self.r2e, self.sensing_range)?;
        Some(spans.flat_map(move |(iy, lo, hi)| {
            let y = self.ys[iy];
            self.counts.row(iy)[lo..=hi]
                .iter()
                .enumerate()
                .map(move |(off, &c)| (Point::new(self.xs[lo + off], y), c))
        }))
    }

    /// Adds `delta` (wrapping; ±1 in practice) to every lattice point covered
    /// by the sensing disk at `center`.
    fn update_covered(&mut self, center: Point, delta: u32) {
        let CoverageRaster {
            counts,
            xs,
            ys,
            sensing_range,
            r2e,
        } = self;
        let Some(spans) = DiskSpans::over(xs, ys, center, *r2e, *sensing_range) else {
            return;
        };
        for (iy, lo, hi) in spans {
            for c in &mut counts.row_mut(iy)[lo..=hi] {
                debug_assert!(
                    delta != 1u32.wrapping_neg() || *c > 0,
                    "coverage count underflow: removing a node that was never added"
                );
                *c = c.wrapping_add(delta);
            }
        }
    }
}

/// Tracks which lattice cells' coverage changed across a churn batch: the
/// dirty region of the incremental backbone repair.
///
/// Every death, join or role flip marks the disk of the affected node; the
/// repair then restricts re-election to nodes whose sensing disk touches a
/// dirty cell ([`DirtyRegion::touches`]) — the precise "re-run the election
/// only over lattice cells whose coverage actually changed" filter. Marks
/// are counted per cell (`u8`, saturating) so overlapping events stack, and
/// [`DirtyRegion::clear`] resets the whole tracker between batches.
///
/// Uses the same lattice, disk-span walker and shared coverage predicate as
/// [`CoverageRaster`], so "the cells a node's death would decrement" and
/// "the cells its disk marks dirty" are the same set by construction.
#[derive(Debug, Clone)]
pub struct DirtyRegion {
    marks: DenseRaster<u8>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    radius: f64,
    r2e: f64,
    dirty: usize,
}

impl DirtyRegion {
    /// Creates a clean tracker over `region` for disks of `radius`, sampled
    /// at `spacing`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` or `spacing` is not strictly positive and finite.
    pub fn new(region: Rect, radius: f64, spacing: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "dirty-region radius must be positive and finite"
        );
        let lattice = Lattice::new(region, spacing).expect("validated spacing");
        let xs = (0..lattice.cols())
            .map(|ix| lattice.point(ix, 0).x)
            .collect();
        let ys = (0..lattice.rows())
            .map(|iy| lattice.point(0, iy).y)
            .collect();
        DirtyRegion {
            marks: DenseRaster::new(lattice),
            xs,
            ys,
            radius,
            r2e: wsn_geom::coverage_threshold(radius),
            dirty: 0,
        }
    }

    /// Marks every lattice cell covered by the disk at `center` as dirty.
    pub fn mark_disk(&mut self, center: Point) {
        let DirtyRegion {
            marks,
            xs,
            ys,
            radius,
            r2e,
            dirty,
        } = self;
        let Some(spans) = DiskSpans::over(xs, ys, center, *r2e, *radius) else {
            return;
        };
        for (iy, lo, hi) in spans {
            for m in &mut marks.row_mut(iy)[lo..=hi] {
                if *m == 0 {
                    *dirty += 1;
                }
                *m = m.saturating_add(1);
            }
        }
    }

    /// Returns `true` when the disk at `center` covers at least one dirty
    /// cell — i.e. when a node there could have had its election decision
    /// perturbed by the changes recorded so far.
    pub fn touches(&self, center: Point) -> bool {
        let Some(spans) = DiskSpans::over(&self.xs, &self.ys, center, self.r2e, self.radius) else {
            return false;
        };
        for (iy, lo, hi) in spans {
            if self.marks.row(iy)[lo..=hi].iter().any(|&m| m > 0) {
                return true;
            }
        }
        false
    }

    /// Number of cells currently marked dirty.
    pub fn dirty_cells(&self) -> usize {
        self.dirty
    }

    /// Resets every mark; the tracker is clean again.
    pub fn clear(&mut self) {
        if self.dirty > 0 {
            for iy in 0..self.marks.lattice().rows() {
                self.marks.row_mut(iy).fill(0);
            }
        }
        self.dirty = 0;
    }
}

/// Iterator over `(row, first_col, last_col)` of the exact covered column
/// interval of every non-empty lattice row of one sensing disk, clipped to
/// the disk's bounding box like the reference implementation. See the module
/// docs for why the intervals are exact and nested.
struct DiskSpans<'a> {
    xs: &'a [f64],
    ys: &'a [f64],
    center: Point,
    r2e: f64,
    /// Bounding-box column clip (inclusive).
    bx: (usize, usize),
    /// The in-box columns flanking `center.x` (inclusive range of at most
    /// three columns, found by exact binary search): a row's covered
    /// interval is centred on the disk centre, so a non-empty row always
    /// covers one of them — probing these decides row emptiness exactly and
    /// re-anchors the walk after an empty row.
    seed: (usize, usize),
    /// Next row to report and the last row of the disk (inclusive).
    iy: usize,
    iy_hi: usize,
    /// Covered interval of the previously visited row, if non-empty: the
    /// starting point for the next row's endpoint adjustment.
    prev: Option<(usize, usize)>,
}

impl<'a> DiskSpans<'a> {
    /// Sets up the walk for the disk at `center`; `None` when the disk's
    /// bounding box misses the lattice entirely.
    fn over(xs: &'a [f64], ys: &'a [f64], center: Point, r2e: f64, radius: f64) -> Option<Self> {
        let bb = Circle::new(center, radius).bounding_box();
        let (iy, iy_hi) = axis_range(ys, bb.min_y, bb.max_y)?;
        let bx = axis_range(xs, bb.min_x, bb.max_x)?;
        let above = xs.partition_point(|&x| x < center.x).min(bx.1);
        let seed = (above.saturating_sub(1).max(bx.0), (above + 1).min(bx.1));
        Some(DiskSpans {
            xs,
            ys,
            center,
            r2e,
            bx,
            seed,
            iy,
            iy_hi,
            prev: None,
        })
    }

    /// The exact coverage predicate at column `ix` for a row at squared
    /// vertical offset `dy2`: bit-for-bit the `Circle::contains` /
    /// `query_range` comparison.
    #[inline]
    fn covers(&self, ix: usize, dy2: f64) -> bool {
        let dx = self.xs[ix] - self.center.x;
        dx * dx + dy2 <= self.r2e
    }
}

impl Iterator for DiskSpans<'_> {
    type Item = (usize, usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        let (bx_lo, bx_hi) = self.bx;
        while self.iy <= self.iy_hi {
            let iy = self.iy;
            self.iy += 1;
            let dy = self.ys[iy] - self.center.y;
            let dy2 = dy * dy;
            // The covered columns of this row form an exact interval (the
            // predicate is monotone in |dx| even in floating point), and the
            // intervals of successive rows are nested (the predicate is
            // monotone in dy² too). Each endpoint therefore only needs a few
            // exact-predicate steps from the previous row's interval: expand
            // while the next column outward is covered, then shrink past
            // uncovered columns. Total endpoint movement over the whole disk
            // is O(perimeter).
            let span = match self.prev {
                Some((mut lo, mut hi)) => {
                    while lo > bx_lo && self.covers(lo - 1, dy2) {
                        lo -= 1;
                    }
                    while lo <= hi && !self.covers(lo, dy2) {
                        lo += 1;
                    }
                    if lo > hi {
                        None
                    } else {
                        while hi < bx_hi && self.covers(hi + 1, dy2) {
                            hi += 1;
                        }
                        while hi > lo && !self.covers(hi, dy2) {
                            hi -= 1;
                        }
                        Some((lo, hi))
                    }
                }
                None => {
                    // No previous interval: probe the seed columns around the
                    // disk centre and expand outward from the first hit.
                    (self.seed.0..=self.seed.1)
                        .find(|&ix| self.covers(ix, dy2))
                        .map(|hit| {
                            let mut lo = hit;
                            let mut hi = hit;
                            while lo > bx_lo && self.covers(lo - 1, dy2) {
                                lo -= 1;
                            }
                            while hi < bx_hi && self.covers(hi + 1, dy2) {
                                hi += 1;
                            }
                            (lo, hi)
                        })
                }
            };
            self.prev = span;
            if let Some((lo, hi)) = span {
                return Some((iy, lo, hi));
            }
        }
        None
    }
}

/// Inclusive index range of the sorted coordinate array `coords` whose
/// values lie in `[min_v, max_v]`; `None` when the interval misses them all.
///
/// Equivalent to [`Lattice::col_range`]/[`Lattice::row_range`] (the lattice
/// coordinates are strictly increasing), but binary-searched over the cached
/// coordinates so the walker performs no per-disk divisions.
fn axis_range(coords: &[f64], min_v: f64, max_v: f64) -> Option<(usize, usize)> {
    let lo = coords.partition_point(|&v| v < min_v);
    let hi = coords.partition_point(|&v| v <= max_v);
    if lo >= hi {
        None
    } else {
        Some((lo, hi - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_range_matches_lattice_col_range() {
        let lattice = Lattice::new(Rect::square(100.0), 2.5).unwrap();
        let xs: Vec<f64> = (0..lattice.cols())
            .map(|ix| lattice.point(ix, 0).x)
            .collect();
        let mut state: u64 = 7;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 130.0 - 15.0
        };
        for _ in 0..300 {
            let (a, b) = (next(), next());
            let (min_v, max_v) = if a <= b { (a, b) } else { (b, a) };
            assert_eq!(
                axis_range(&xs, min_v, max_v),
                lattice.col_range(min_v, max_v),
                "interval [{min_v}, {max_v}]"
            );
        }
    }

    #[test]
    fn add_then_remove_restores_all_counts() {
        let mut r = CoverageRaster::new(Rect::square(200.0), 50.0, 5.0);
        let p = Point::new(73.0, 121.0);
        r.add(p);
        r.remove(p);
        let lat = *r.lattice();
        for iy in 0..lat.rows() {
            for ix in 0..lat.cols() {
                assert_eq!(r.count(ix, iy), 0);
            }
        }
    }

    #[test]
    fn counts_match_brute_force_per_point() {
        let positions = [
            Point::new(10.0, 10.0),
            Point::new(60.0, 40.0),
            Point::new(60.0, 40.0), // duplicate: counts stack
            Point::new(199.0, 199.0),
            Point::new(-30.0, 100.0), // outside the region: clipped disk
        ];
        let region = Rect::square(200.0);
        let r = CoverageRaster::build(&positions, region, 50.0, 5.0);
        let lat = *r.lattice();
        for iy in 0..lat.rows() {
            for ix in 0..lat.cols() {
                let p = lat.point(ix, iy);
                let expected = positions
                    .iter()
                    .filter(|&&q| p.distance_sq_to(q) <= 50.0 * 50.0 + 1e-9)
                    .count() as u32;
                assert_eq!(r.count(ix, iy), expected, "at {p}");
            }
        }
    }

    #[test]
    fn counts_match_brute_force_at_awkward_spacings_and_offsets() {
        // Non-round spacing and centres sitting exactly on lattice points or
        // exactly one sensing range apart exercise the span walker's seeding
        // and boundary handling.
        let region = Rect::square(100.0);
        for spacing in [1.7, 2.5, 3.3, 60.0] {
            let positions = [
                Point::new(50.0, 50.0),
                Point::new(50.0 + 25.0, 50.0), // boundary of the first disk
                Point::new(0.0, 0.0),
                Point::new(33.3, 66.6),
                Point::new(120.0, 50.0), // bounding box clipped at the edge
            ];
            let r = CoverageRaster::build(&positions, region, 25.0, spacing);
            let lat = *r.lattice();
            for iy in 0..lat.rows() {
                for ix in 0..lat.cols() {
                    let p = lat.point(ix, iy);
                    let expected = positions
                        .iter()
                        .filter(|&&q| p.distance_sq_to(q) <= 25.0 * 25.0 + 1e-9)
                        .count() as u32;
                    assert_eq!(r.count(ix, iy), expected, "spacing {spacing}, at {p}");
                }
            }
        }
    }

    #[test]
    fn lone_node_is_not_eligible_but_colocated_pair_is() {
        let region = Rect::square(100.0);
        let p = Point::new(50.0, 50.0);
        let mut r = CoverageRaster::build(&[p], region, 50.0, 5.0);
        assert!(!r.eligible_to_sleep(p, 1), "sole cover must stay active");
        r.add(p);
        assert!(r.try_demote(p, 1), "a colocated twin makes it redundant");
        assert!(
            !r.try_demote(p, 1),
            "after one demotion the survivor is again the sole cover"
        );
    }

    #[test]
    fn disk_outside_region_is_vacuously_eligible() {
        let region = Rect::square(100.0);
        let far = Point::new(1000.0, 1000.0);
        let mut r = CoverageRaster::new(region, 50.0, 5.0);
        r.add(far); // covers no lattice point
        assert!(r.eligible_to_sleep(far, 3));
    }

    #[test]
    fn dirty_region_marks_touch_and_clear() {
        let region = Rect::square(200.0);
        let mut d = DirtyRegion::new(region, 50.0, 5.0);
        assert_eq!(d.dirty_cells(), 0);
        let event = Point::new(60.0, 60.0);
        assert!(!d.touches(event), "clean tracker touches nothing");
        d.mark_disk(event);
        assert!(d.dirty_cells() > 0);
        // A disk overlapping the event's disk touches; a far one does not.
        assert!(d.touches(Point::new(140.0, 60.0)), "overlapping disk");
        assert!(!d.touches(Point::new(180.0, 180.0)), "disjoint disk");
        // Marks match exactly the cells a CoverageRaster add would touch.
        let mut r = CoverageRaster::new(region, 50.0, 5.0);
        r.add(event);
        let lat = *r.lattice();
        let mut marked = 0;
        for iy in 0..lat.rows() {
            for ix in 0..lat.cols() {
                if r.count(ix, iy) > 0 {
                    marked += 1;
                }
            }
        }
        assert_eq!(d.dirty_cells(), marked);
        d.clear();
        assert_eq!(d.dirty_cells(), 0);
        assert!(!d.touches(event));
    }

    #[test]
    fn dirty_region_overlapping_marks_stack() {
        let mut d = DirtyRegion::new(Rect::square(100.0), 30.0, 5.0);
        d.mark_disk(Point::new(50.0, 50.0));
        let once = d.dirty_cells();
        d.mark_disk(Point::new(50.0, 50.0));
        assert_eq!(d.dirty_cells(), once, "re-marking adds no new dirty cells");
        d.mark_disk(Point::new(60.0, 50.0));
        assert!(d.dirty_cells() > once, "a shifted disk dirties new cells");
    }

    #[test]
    fn failed_demotion_leaves_counts_untouched() {
        let region = Rect::square(100.0);
        let a = Point::new(30.0, 50.0);
        let b = Point::new(70.0, 50.0);
        let mut r = CoverageRaster::build(&[a, b], region, 50.0, 5.0);
        let before = r.clone();
        assert!(!r.try_demote(a, 1), "b does not cover a's whole disk");
        let lat = *r.lattice();
        for iy in 0..lat.rows() {
            for ix in 0..lat.cols() {
                assert_eq!(r.count(ix, iy), before.count(ix, iy));
            }
        }
    }
}
