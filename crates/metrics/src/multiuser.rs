//! Per-user aggregation for multi-user trials.
//!
//! A multi-user run produces one [`QueryLog`] per user; figures and the
//! bench document need the per-user view (is *every* user served, not just
//! the average?) plus fleet-level aggregates. This module reduces the logs
//! to one [`UserSummary`] per user, keyed by the user's fleet index.

use crate::query::QueryLog;
use serde::{Deserialize, Serialize};

/// The per-user outcome of one multi-user trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserSummary {
    /// Fleet index of the user.
    pub user: usize,
    /// Number of queries the user issued (its lifetime window, in periods).
    pub queries: usize,
    /// Fraction of the user's queries that met deadline and fidelity
    /// threshold.
    pub success_ratio: f64,
    /// Mean per-query fidelity over the user's queries (1.0 for a user that
    /// issued none — nothing was missed).
    pub mean_fidelity: f64,
}

/// Summarises one log per user into per-user records, in fleet order.
pub fn summarize_users(logs: &[QueryLog], fidelity_threshold: f64) -> Vec<UserSummary> {
    logs.iter()
        .enumerate()
        .map(|(user, log)| UserSummary {
            user,
            queries: log.len(),
            success_ratio: log.success_ratio(fidelity_threshold),
            mean_fidelity: if log.is_empty() {
                1.0
            } else {
                log.fidelity_summary().mean()
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryRecord;
    use wsn_sim::SimTime;

    fn record(seq: u64, contributing: usize, total: usize, delivered: bool) -> QueryRecord {
        let deadline = SimTime::from_secs(2 * seq);
        QueryRecord {
            seq,
            deadline,
            delivered_at: delivered.then_some(deadline),
            contributing_nodes: contributing,
            nodes_in_area: total,
        }
    }

    #[test]
    fn summaries_follow_fleet_order_and_log_contents() {
        let mut perfect = QueryLog::new();
        perfect.push(record(1, 10, 10, true));
        perfect.push(record(2, 9, 9, true));
        let mut poor = QueryLog::new();
        poor.push(record(1, 1, 10, true));
        poor.push(record(2, 0, 8, false));
        let summaries = summarize_users(&[perfect, poor], 0.95);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].user, 0);
        assert_eq!(summaries[0].queries, 2);
        assert_eq!(summaries[0].success_ratio, 1.0);
        assert_eq!(summaries[0].mean_fidelity, 1.0);
        assert_eq!(summaries[1].user, 1);
        assert_eq!(summaries[1].success_ratio, 0.0);
        assert!(summaries[1].mean_fidelity < 0.1);
    }

    #[test]
    fn empty_log_counts_as_perfect_fidelity_but_zero_success() {
        let summaries = summarize_users(&[QueryLog::new()], 0.95);
        assert_eq!(summaries[0].queries, 0);
        assert_eq!(summaries[0].mean_fidelity, 1.0);
        assert_eq!(summaries[0].success_ratio, 0.0);
    }
}
