//! A minimal, deterministic JSON value tree and renderer.
//!
//! The build environment is offline (no `serde_json`), so the machine-readable
//! results path — `repro --format json`, `BENCH_repro.json` — is served by
//! this hand-rolled emitter instead. Two properties matter more than API
//! breadth:
//!
//! * **Determinism.** Object keys render in insertion order and numbers render
//!   via Rust's shortest-round-trip float formatting, so identical values
//!   produce identical bytes. CI diffs `--jobs 1` against `--jobs N` output
//!   byte-for-byte on the strength of this.
//! * **Validity.** Strings are escaped per RFC 8259 and non-finite floats
//!   (which JSON cannot represent) render as `null`.

use std::fmt;

/// A JSON value: the usual scalar/array/object tree.
///
/// Objects keep their keys in insertion order — deterministic output matters
/// more here than lookup speed, and the trees are tiny.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// An unsigned integer, rendered exactly (seeds exceed `f64` precision).
    UInt(u64),
    /// A string, escaped on render.
    Str(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object; keys render in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Creates an empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a key/value pair to an object and returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-object value.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> Self {
        match &mut self {
            JsonValue::Object(entries) => entries.push((key.into(), value.into())),
            other => panic!("JsonValue::with on non-object {other:?}"),
        }
        self
    }

    /// Renders with two-space indentation and a trailing newline — the format
    /// used for `--out` files and committed artifacts, where line-oriented
    /// diffs are the point.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) if !v.is_finite() => out.push_str("null"),
            JsonValue::Num(v) => out.push_str(&format!("{v}")),
            JsonValue::UInt(v) => out.push_str(&format!("{v}")),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Array(items) => {
                render_seq(out, indent, '[', ']', items.len(), |out, i, inner| {
                    items[i].render(out, inner)
                })
            }
            JsonValue::Object(entries) => {
                render_seq(out, indent, '{', '}', entries.len(), |out, i, inner| {
                    let (key, value) = &entries[i];
                    escape_into(key, out);
                    out.push(':');
                    if inner.is_some() {
                        out.push(' ');
                    }
                    value.render(out, inner);
                })
            }
        }
    }
}

/// Shared layout for arrays and objects: compact when `indent` is `None`,
/// one element per line otherwise.
fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut render_item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        render_item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    /// Compact single-line rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out, None);
        f.write_str(&out)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = JsonValue::object()
            .with("name", "fig4")
            .with("ok", true)
            .with("ratio", 0.5)
            .with("seed", u64::MAX)
            .with("tags", vec![JsonValue::from("a"), JsonValue::Null]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"fig4","ok":true,"ratio":0.5,"seed":18446744073709551615,"tags":["a",null]}"#
        );
    }

    #[test]
    fn pretty_rendering_is_line_oriented() {
        let v = JsonValue::object().with("xs", vec![JsonValue::from(1.0)]);
        assert_eq!(v.to_pretty_string(), "{\n  \"xs\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn strings_are_escaped() {
        let v = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_string(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integers_render_exactly() {
        // 2^53 + 1 is not representable as f64; UInt must not round-trip
        // through floats.
        assert_eq!(
            JsonValue::UInt(9007199254740993).to_string(),
            "9007199254740993"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::object().to_string(), "{}");
        assert_eq!(JsonValue::Array(Vec::new()).to_string(), "[]");
        assert_eq!(JsonValue::Array(Vec::new()).to_pretty_string(), "[]\n");
    }

    #[test]
    #[should_panic]
    fn with_on_non_object_panics() {
        let _ = JsonValue::Null.with("k", 1.0);
    }
}
