//! Deterministic latency percentiles for the query service.
//!
//! The batch experiments report means with confidence intervals
//! ([`crate::Summary`]); a long-lived service is judged by its tail, so the
//! load generator reports p50/p99 instead. Percentiles here use the
//! **nearest-rank** definition — `p_q = sorted[⌈q/100 · n⌉ - 1]` — which
//! always returns an actual sample: no interpolation, so the reported number
//! is bit-identical across job counts and platforms (the JSON determinism
//! gates rely on this).

/// Latency distribution of a sample set, summarised by its tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples the percentiles were computed over.
    pub count: usize,
    /// Median (50th percentile, nearest rank).
    pub p50: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencyStats {
    /// Summarises `samples` (any order; NaNs are rejected by debug assert).
    /// Returns `None` for an empty sample set — a service that answered
    /// nothing has no latency, not a zero latency.
    pub fn from_samples(samples: &[f64]) -> Option<LatencyStats> {
        if samples.is_empty() {
            return None;
        }
        debug_assert!(samples.iter().all(|s| !s.is_nan()), "NaN latency sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(LatencyStats {
            count: sorted.len(),
            p50: percentile_sorted(&sorted, 50.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample set:
/// the smallest sample with at least `q` percent of the set at or below it.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile rank {q} out of range"
    );
    let n = sorted.len();
    let rank = ((q / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_have_no_stats() {
        assert_eq!(LatencyStats::from_samples(&[]), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencyStats::from_samples(&[3.5]).unwrap();
        assert_eq!((s.count, s.p50, s.p99, s.max), (1, 3.5, 3.5, 3.5));
    }

    #[test]
    fn nearest_rank_matches_the_textbook_example() {
        // Classic nearest-rank worked example: 5 samples.
        let sorted = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile_sorted(&sorted, 30.0), 20.0);
        assert_eq!(percentile_sorted(&sorted, 40.0), 20.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 35.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 50.0);
        assert_eq!(percentile_sorted(&sorted, 0.0), 15.0);
    }

    #[test]
    fn p50_never_exceeds_p99_and_order_does_not_matter() {
        let shuffled = [9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 10.0];
        let mut sorted = shuffled;
        sorted.sort_by(f64::total_cmp);
        let a = LatencyStats::from_samples(&shuffled).unwrap();
        let b = LatencyStats::from_samples(&sorted).unwrap();
        assert_eq!(a, b);
        assert!(a.p50 <= a.p99 && a.p99 <= a.max);
        assert_eq!(a.p50, 5.0);
        assert_eq!(a.p99, 10.0);
    }

    #[test]
    fn percentiles_are_actual_samples() {
        let samples: Vec<f64> = (1..=97).map(|i| i as f64 + 0.25).collect();
        let stats = LatencyStats::from_samples(&samples).unwrap();
        assert!(samples.contains(&stats.p50));
        assert!(samples.contains(&stats.p99));
        assert_eq!(stats.max, 97.25);
    }
}
