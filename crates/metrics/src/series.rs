//! Labelled numeric series, the data behind the paper's line plots.

use serde::{Deserialize, Serialize};
use std::fmt;
use wsn_sim::stats::Summary;

/// A named series of `(x, y)` points, e.g. "MQ-JIT data fidelity per period".
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Summary statistics of the y values.
    pub fn y_summary(&self) -> Summary {
        self.points.iter().map(|&(_, y)| y).collect()
    }

    /// The y value at the given x, if a point with exactly that x exists.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// Renders the series as a JSON object `{name, points}` where `points` is
    /// an array of `[x, y]` pairs.
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        let points: Vec<JsonValue> = self
            .points
            .iter()
            .map(|&(x, y)| JsonValue::Array(vec![x.into(), y.into()]))
            .collect();
        JsonValue::object()
            .with("name", self.name.as_str())
            .with("points", points)
    }

    /// Renders the series as CSV lines `x,y` preceded by a header naming the
    /// series.
    pub fn to_csv(&self) -> String {
        let mut out = format!("x,{}\n", self.name);
        for &(x, y) in &self.points {
            out.push_str(&format!("{x},{y}\n"));
        }
        out
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} ({} points)", self.name, self.points.len())?;
        for &(x, y) in &self.points {
            writeln!(f, "{x:>10.3} {y:>10.4}")?;
        }
        Ok(())
    }
}

impl FromIterator<(f64, f64)> for Series {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        Series {
            name: String::from("series"),
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = Series::new("fidelity");
        s.push(1.0, 0.9);
        s.push(2.0, 1.0);
        assert_eq!(s.name(), "fidelity");
        assert_eq!(s.len(), 2);
        assert_eq!(s.y_at(2.0), Some(1.0));
        assert_eq!(s.y_at(3.0), None);
        assert!((s.y_summary().mean() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn csv_contains_header_and_rows() {
        let mut s = Series::new("mq-jit");
        s.push(1.0, 0.5);
        let csv = s.to_csv();
        assert!(csv.starts_with("x,mq-jit\n"));
        assert!(csv.contains("1,0.5"));
    }

    #[test]
    fn display_is_nonempty_even_when_empty() {
        let s = Series::new("empty");
        assert!(s.is_empty());
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut s: Series = vec![(1.0, 2.0)].into_iter().collect();
        s.extend(vec![(3.0, 4.0)]);
        assert_eq!(s.points(), &[(1.0, 2.0), (3.0, 4.0)]);
    }
}
