//! Per-batch records of node churn and incremental backbone repair.
//!
//! The churn-mode simulation applies one batch of deaths and joins at each
//! period boundary and repairs the backbone incrementally instead of
//! re-electing from scratch. One [`ChurnBatch`] captures what each batch did
//! and what the repair touched; [`ChurnSummary`] aggregates a run. The
//! deterministic fields (everything except the wall-clock timings) are what
//! the CI determinism gate compares across `--jobs` settings.

use serde::{Deserialize, Serialize};

/// What one churn batch did and what its incremental repair cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnBatch {
    /// Period boundary the batch fired at.
    pub boundary: u64,
    /// Nodes killed in the batch.
    pub deaths: usize,
    /// Nodes joined in the batch.
    pub joins: usize,
    /// Alive nodes seeded into the repair worklist (disks touching a dirty
    /// cell).
    pub candidates: usize,
    /// Total repair evaluations (candidates plus flip-propagated re-checks).
    pub evaluated: usize,
    /// Nodes the repair promoted to the backbone.
    pub promoted: usize,
    /// Nodes the repair demoted to duty cycling.
    pub demoted: usize,
    /// Lattice cells whose coverage the batch changed.
    pub dirty_cells: usize,
    /// Wall-clock spent applying the batch (grid and plan updates), in
    /// milliseconds. A timing observation, not simulation state.
    pub apply_ms: f64,
    /// Wall-clock spent in the incremental repair, in milliseconds.
    pub repair_ms: f64,
    /// Whether this batch's repaired backbone was verified bit-identical to
    /// a full re-election (`None` when verification was off).
    pub verified: Option<bool>,
}

/// Aggregate of a run's [`ChurnBatch`] records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSummary {
    /// Number of churn batches applied.
    pub batches: usize,
    /// Total deaths across the run.
    pub deaths: usize,
    /// Total joins across the run.
    pub joins: usize,
    /// Total repair evaluations across the run.
    pub evaluated: usize,
    /// Total promotions across the run.
    pub promoted: usize,
    /// Total demotions across the run.
    pub demoted: usize,
    /// Total wall-clock spent in incremental repair, in milliseconds.
    pub repair_ms: f64,
    /// Mean wall-clock per repair, in milliseconds.
    pub mean_repair_ms: f64,
}

impl ChurnSummary {
    /// Aggregates a run's batch records (all fields zero for an empty run).
    pub fn from_batches(batches: &[ChurnBatch]) -> Self {
        let repair_ms: f64 = batches.iter().map(|b| b.repair_ms).sum();
        ChurnSummary {
            batches: batches.len(),
            deaths: batches.iter().map(|b| b.deaths).sum(),
            joins: batches.iter().map(|b| b.joins).sum(),
            evaluated: batches.iter().map(|b| b.evaluated).sum(),
            promoted: batches.iter().map(|b| b.promoted).sum(),
            demoted: batches.iter().map(|b| b.demoted).sum(),
            repair_ms,
            mean_repair_ms: if batches.is_empty() {
                0.0
            } else {
                repair_ms / batches.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(boundary: u64, deaths: usize, repair_ms: f64) -> ChurnBatch {
        ChurnBatch {
            boundary,
            deaths,
            joins: deaths,
            candidates: 4 * deaths,
            evaluated: 5 * deaths,
            promoted: 1,
            demoted: 2,
            dirty_cells: 100,
            apply_ms: 0.1,
            repair_ms,
            verified: Some(true),
        }
    }

    #[test]
    fn summary_aggregates_batches() {
        let s = ChurnSummary::from_batches(&[batch(1, 3, 2.0), batch(2, 5, 4.0)]);
        assert_eq!(s.batches, 2);
        assert_eq!(s.deaths, 8);
        assert_eq!(s.joins, 8);
        assert_eq!(s.evaluated, 40);
        assert_eq!(s.promoted, 2);
        assert_eq!(s.demoted, 4);
        assert!((s.repair_ms - 6.0).abs() < 1e-12);
        assert!((s.mean_repair_ms - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = ChurnSummary::from_batches(&[]);
        assert_eq!(s.batches, 0);
        assert_eq!(s.mean_repair_ms, 0.0);
    }
}
