//! Plain-text result tables (aligned console output and CSV).
//!
//! Every experiment runner prints one of these per figure; keeping the
//! formatting here means the benches, the `repro` binary and the examples all
//! produce identical output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple rectangular table of strings with a header row.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: Vec<String>) -> Self {
        Table {
            title: title.into(),
            header,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor taking `&str` headers.
    pub fn with_columns(title: impl Into<String>, columns: &[&str]) -> Self {
        Table::new(title, columns.iter().map(|c| c.to_string()).collect())
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.header.len()
    }

    /// Adds a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match the number of columns.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Adds a row of numeric cells, formatted with 4 decimal places, after a
    /// leading label cell.
    pub fn push_labeled_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.push_row(cells);
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as a JSON object `{title, header, rows}` with the
    /// cells kept as their already-formatted strings.
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|row| JsonValue::Array(row.iter().map(|c| c.as_str().into()).collect()))
            .collect();
        JsonValue::object()
            .with("title", self.title.as_str())
            .with(
                "header",
                JsonValue::Array(self.header.iter().map(|h| h.as_str().into()).collect()),
            )
            .with("rows", rows)
    }

    /// Renders the table as CSV (header first, no title).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compute per-column widths over header and rows.
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:>width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::with_columns("Figure 4", &["scheme", "sleep=3s", "sleep=15s"]);
        t.push_labeled_row("MQ-JIT", &[0.99, 0.98]);
        t.push_labeled_row("NP", &[0.35, 0.1]);
        t
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.title(), "Figure 4");
        assert_eq!(t.column_count(), 3);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic]
    fn wrong_row_length_panics() {
        let mut t = Table::with_columns("x", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("scheme,sleep=3s,sleep=15s\n"));
        assert!(csv.contains("MQ-JIT,0.9900,0.9800"));
        assert!(csv.contains("NP,0.3500,0.1000"));
    }

    #[test]
    fn display_aligns_and_includes_everything() {
        let text = format!("{}", sample());
        assert!(text.contains("== Figure 4 =="));
        assert!(text.contains("MQ-JIT"));
        assert!(text.contains("0.3500"));
        // Header separator present.
        assert!(text.contains("---"));
    }

    #[test]
    fn empty_table_displays() {
        let t = Table::with_columns("empty", &["a"]);
        assert_eq!(t.row_count(), 0);
        assert!(!format!("{t}").is_empty());
        assert_eq!(t.to_csv(), "a\n");
    }
}
