//! Per-query outcome records and their aggregation.

use serde::{Deserialize, Serialize};
use wsn_sim::stats::Summary;
use wsn_sim::{Duration, SimTime};

/// The outcome of one periodic query (one pickup point).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Sequence number `k` of the query (1-based, as in the paper's
    /// "k-th result is due at k·Tperiod").
    pub seq: u64,
    /// The deadline `k · Tperiod`.
    pub deadline: SimTime,
    /// When the aggregated result reached the user, if it did.
    pub delivered_at: Option<SimTime>,
    /// Number of nodes whose readings were aggregated into the result.
    pub contributing_nodes: usize,
    /// Total number of nodes inside the query area at the pickup point.
    pub nodes_in_area: usize,
}

impl QueryRecord {
    /// A query that produced no result at all.
    pub fn missed(seq: u64, deadline: SimTime, nodes_in_area: usize) -> Self {
        QueryRecord {
            seq,
            deadline,
            delivered_at: None,
            contributing_nodes: 0,
            nodes_in_area,
        }
    }

    /// Data fidelity: contributing nodes over nodes in the area, in `[0, 1]`.
    ///
    /// An empty query area (no nodes) counts as fidelity 1: there was nothing
    /// to report and nothing was missed.
    pub fn fidelity(&self) -> f64 {
        if self.nodes_in_area == 0 {
            1.0
        } else {
            (self.contributing_nodes as f64 / self.nodes_in_area as f64).min(1.0)
        }
    }

    /// Returns `true` when a result was delivered by the deadline.
    pub fn met_deadline(&self) -> bool {
        matches!(self.delivered_at, Some(t) if t <= self.deadline)
    }

    /// Latency from the start of the query period to delivery, if delivered.
    pub fn latency(&self, period: Duration) -> Option<Duration> {
        let start = self.deadline.saturating_sub(period);
        self.delivered_at.map(|t| t.saturating_since(start))
    }

    /// Returns `true` when the query met its deadline **and** reached the
    /// given fidelity threshold — the paper's definition of a successful query.
    pub fn succeeded(&self, fidelity_threshold: f64) -> bool {
        self.met_deadline() && self.fidelity() >= fidelity_threshold
    }
}

/// The log of every query issued during one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryLog {
    records: Vec<QueryRecord>,
}

impl QueryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        QueryLog::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: QueryRecord) {
        self.records.push(record);
    }

    /// Reserves room for `additional` more records. Engines that know a
    /// user's whole query window up front call this once at admission so the
    /// per-period `push` never reallocates in the steady state.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Number of queries logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no queries were logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of queries that succeeded at the given fidelity threshold
    /// (0 when the log is empty).
    pub fn success_ratio(&self, fidelity_threshold: f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let ok = self
            .records
            .iter()
            .filter(|r| r.succeeded(fidelity_threshold))
            .count();
        ok as f64 / self.records.len() as f64
    }

    /// Fraction of queries that met their deadline.
    pub fn deadline_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let ok = self.records.iter().filter(|r| r.met_deadline()).count();
        ok as f64 / self.records.len() as f64
    }

    /// Summary of per-query fidelity.
    pub fn fidelity_summary(&self) -> Summary {
        self.records.iter().map(|r| r.fidelity()).collect()
    }

    /// Summary of delivery latency (in seconds) over delivered queries.
    pub fn latency_summary(&self, period: Duration) -> Summary {
        self.records
            .iter()
            .filter_map(|r| r.latency(period))
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// The per-query fidelity as a `(sequence number, fidelity)` series —
    /// the data behind Figure 5.
    pub fn fidelity_series(&self) -> Vec<(u64, f64)> {
        self.records.iter().map(|r| (r.seq, r.fidelity())).collect()
    }
}

impl FromIterator<QueryRecord> for QueryLog {
    fn from_iter<I: IntoIterator<Item = QueryRecord>>(iter: I) -> Self {
        QueryLog {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<QueryRecord> for QueryLog {
    fn extend<I: IntoIterator<Item = QueryRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_FIDELITY_THRESHOLD;

    fn record(
        seq: u64,
        delivered_offset_ms: Option<i64>,
        contributing: usize,
        total: usize,
    ) -> QueryRecord {
        let deadline = SimTime::from_secs(2 * seq);
        QueryRecord {
            seq,
            deadline,
            delivered_at: delivered_offset_ms.map(|off| {
                if off >= 0 {
                    deadline + Duration::from_millis(off as u64)
                } else {
                    deadline - Duration::from_millis((-off) as u64)
                }
            }),
            contributing_nodes: contributing,
            nodes_in_area: total,
        }
    }

    #[test]
    fn fidelity_is_ratio_of_contributors() {
        assert_eq!(record(1, Some(-10), 19, 20).fidelity(), 0.95);
        assert_eq!(record(1, Some(-10), 20, 20).fidelity(), 1.0);
        assert_eq!(record(1, None, 0, 20).fidelity(), 0.0);
    }

    #[test]
    fn empty_area_counts_as_full_fidelity() {
        assert_eq!(record(1, Some(-10), 0, 0).fidelity(), 1.0);
    }

    #[test]
    fn deadline_check_uses_delivery_time() {
        assert!(record(1, Some(0), 10, 10).met_deadline());
        assert!(record(1, Some(-500), 10, 10).met_deadline());
        assert!(!record(1, Some(1), 10, 10).met_deadline());
        assert!(!record(1, None, 10, 10).met_deadline());
    }

    #[test]
    fn success_requires_both_deadline_and_fidelity() {
        assert!(record(1, Some(-10), 19, 20).succeeded(PAPER_FIDELITY_THRESHOLD));
        assert!(!record(1, Some(-10), 18, 20).succeeded(PAPER_FIDELITY_THRESHOLD));
        assert!(!record(1, Some(10), 20, 20).succeeded(PAPER_FIDELITY_THRESHOLD));
    }

    #[test]
    fn latency_measured_from_period_start() {
        let r = record(3, Some(-500), 10, 10);
        // Period 2 s: deadline 6 s, delivered at 5.5 s, period started at 4 s.
        assert_eq!(
            r.latency(Duration::from_secs(2)),
            Some(Duration::from_millis(1500))
        );
        assert_eq!(record(3, None, 0, 10).latency(Duration::from_secs(2)), None);
    }

    #[test]
    fn log_aggregates() {
        let log: QueryLog = vec![
            record(1, Some(-10), 20, 20),
            record(2, Some(-10), 19, 20),
            record(3, Some(10), 20, 20),
            record(4, None, 0, 20),
        ]
        .into_iter()
        .collect();
        assert_eq!(log.len(), 4);
        assert_eq!(log.success_ratio(PAPER_FIDELITY_THRESHOLD), 0.5);
        assert_eq!(log.deadline_ratio(), 0.5);
        let fid = log.fidelity_summary();
        assert!((fid.mean() - (1.0 + 0.95 + 1.0 + 0.0) / 4.0).abs() < 1e-12);
        assert_eq!(log.fidelity_series().len(), 4);
        assert_eq!(log.latency_summary(Duration::from_secs(2)).count(), 3);
    }

    #[test]
    fn empty_log_ratios_are_zero() {
        let log = QueryLog::new();
        assert!(log.is_empty());
        assert_eq!(log.success_ratio(0.95), 0.0);
        assert_eq!(log.deadline_ratio(), 0.0);
    }

    #[test]
    fn missed_constructor_is_a_failure() {
        let r = QueryRecord::missed(7, SimTime::from_secs(14), 25);
        assert_eq!(r.fidelity(), 0.0);
        assert!(!r.met_deadline());
        assert!(!r.succeeded(0.5));
    }
}
