//! Per-boundary records of injected faults and protocol recovery.
//!
//! The fault-mode simulation advances a seeded fault schedule at every
//! period boundary (bursty link loss, mid-period crashes, blackouts) and —
//! with recovery armed — retries lost installs and repairs poisoned trees.
//! One [`FaultBatch`] captures what each boundary injected and what the
//! recovery machinery did about it; [`ResilienceSummary`] aggregates a run.
//! Every field is deterministic in the scenario seed (there are no
//! wall-clock timings here), so whole logs are compared byte-for-byte by
//! the CI chaos gate across `--jobs` settings.

use crate::query::QueryLog;
use serde::{Deserialize, Serialize};

/// What one boundary's fault batch injected and what recovery did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultBatch {
    /// Period boundary the batch fired at.
    pub boundary: u64,
    /// Node slots whose Gilbert–Elliott channel sits in the bad state after
    /// this boundary's transition.
    pub link_bad: usize,
    /// Nodes crashed mid-period by this batch (they reboot at the next
    /// boundary).
    pub crashes: usize,
    /// Whether the configured region blackout covers this boundary.
    pub blackout: bool,
    /// Install transmissions attempted at this boundary (first attempts and
    /// retries).
    pub install_attempts: u64,
    /// Install retransmissions (attempts beyond each install's first).
    pub retries: u64,
    /// Installs abandoned after exhausting every attempt — the query misses
    /// its whole period.
    pub install_failures: u64,
    /// Poisoned shared trees rebuilt around crashed nodes (recovery on).
    pub trees_rebuilt: u64,
    /// Poisoned trees degraded to per-user naive trees because their root
    /// crashed (recovery on).
    pub naive_fallbacks: u64,
    /// Energy drained by install retransmissions at this boundary, in
    /// joules. A deterministic sum of fixed per-retry costs.
    pub retry_energy_j: f64,
}

/// Aggregate of a run's [`FaultBatch`] records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSummary {
    /// Number of fault batches applied (one per boundary).
    pub batches: usize,
    /// Sum over boundaries of bad-channel node counts (node-periods spent
    /// in the bad state).
    pub link_bad_node_periods: usize,
    /// Total mid-period crashes across the run.
    pub crashes: usize,
    /// Boundaries covered by a blackout window.
    pub blackout_boundaries: usize,
    /// Total install transmissions.
    pub install_attempts: u64,
    /// Total install retransmissions.
    pub retries: u64,
    /// Total abandoned installs.
    pub install_failures: u64,
    /// Total poisoned-tree rebuilds.
    pub trees_rebuilt: u64,
    /// Total naive-tree fallbacks.
    pub naive_fallbacks: u64,
    /// Total retransmission energy, in joules.
    pub retry_energy_j: f64,
}

impl ResilienceSummary {
    /// Aggregates a run's batch records (all fields zero for an empty run).
    pub fn from_batches(batches: &[FaultBatch]) -> Self {
        ResilienceSummary {
            batches: batches.len(),
            link_bad_node_periods: batches.iter().map(|b| b.link_bad).sum(),
            crashes: batches.iter().map(|b| b.crashes).sum(),
            blackout_boundaries: batches.iter().filter(|b| b.blackout).count(),
            install_attempts: batches.iter().map(|b| b.install_attempts).sum(),
            retries: batches.iter().map(|b| b.retries).sum(),
            install_failures: batches.iter().map(|b| b.install_failures).sum(),
            trees_rebuilt: batches.iter().map(|b| b.trees_rebuilt).sum(),
            naive_fallbacks: batches.iter().map(|b| b.naive_fallbacks).sum(),
            retry_energy_j: batches.iter().map(|b| b.retry_energy_j).sum(),
        }
    }

    /// Retransmissions paid per delivered result — the overhead recovery
    /// charges for the success it buys (0 when nothing was delivered).
    pub fn retries_per_delivered(&self, delivered: usize) -> f64 {
        if delivered == 0 {
            0.0
        } else {
            self.retries as f64 / delivered as f64
        }
    }
}

/// How long the service takes to climb back after faults knock a user's
/// results out: the lengths of maximal streaks of undelivered periods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryLatency {
    /// Number of outages (maximal missed-period streaks) across all users.
    pub outages: usize,
    /// Mean outage length in periods (0 when there were no outages).
    pub mean_periods: f64,
    /// Longest outage in periods.
    pub max_periods: u64,
}

/// Scans per-user period logs for maximal runs of records that missed their
/// deadline. Each run is one outage and its length is the recovery latency
/// in periods — how long until the next delivered result. A streak still
/// open at the end of a user's window counts with its observed length (the
/// user never saw the service recover).
pub fn recovery_latency(logs: &[QueryLog]) -> RecoveryLatency {
    let mut outages = 0usize;
    let mut total = 0u64;
    let mut max = 0u64;
    for log in logs {
        let mut streak = 0u64;
        for record in log.records() {
            if record.met_deadline() {
                if streak > 0 {
                    outages += 1;
                    total += streak;
                    max = max.max(streak);
                    streak = 0;
                }
            } else {
                streak += 1;
            }
        }
        if streak > 0 {
            outages += 1;
            total += streak;
            max = max.max(streak);
        }
    }
    RecoveryLatency {
        outages,
        mean_periods: if outages == 0 {
            0.0
        } else {
            total as f64 / outages as f64
        },
        max_periods: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryRecord;
    use wsn_sim::SimTime;

    fn batch(boundary: u64, crashes: usize, retries: u64) -> FaultBatch {
        FaultBatch {
            boundary,
            link_bad: 3,
            crashes,
            blackout: boundary == 2,
            install_attempts: 10 + retries,
            retries,
            install_failures: 1,
            trees_rebuilt: crashes as u64,
            naive_fallbacks: 0,
            retry_energy_j: retries as f64 * 0.002,
        }
    }

    #[test]
    fn summary_aggregates_batches() {
        let s = ResilienceSummary::from_batches(&[batch(1, 2, 4), batch(2, 3, 6)]);
        assert_eq!(s.batches, 2);
        assert_eq!(s.link_bad_node_periods, 6);
        assert_eq!(s.crashes, 5);
        assert_eq!(s.blackout_boundaries, 1);
        assert_eq!(s.install_attempts, 30);
        assert_eq!(s.retries, 10);
        assert_eq!(s.install_failures, 2);
        assert_eq!(s.trees_rebuilt, 5);
        assert!((s.retry_energy_j - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = ResilienceSummary::from_batches(&[]);
        assert_eq!(s.batches, 0);
        assert_eq!(s.retries, 0);
        assert_eq!(s.retries_per_delivered(0), 0.0);
    }

    #[test]
    fn retries_per_delivered_divides() {
        let s = ResilienceSummary::from_batches(&[batch(1, 0, 6)]);
        assert!((s.retries_per_delivered(3) - 2.0).abs() < 1e-12);
    }

    fn record(seq: u64, delivered: bool) -> QueryRecord {
        let deadline = SimTime::from_secs(2 * seq);
        QueryRecord {
            seq,
            deadline,
            delivered_at: delivered.then_some(deadline),
            contributing_nodes: if delivered { 5 } else { 0 },
            nodes_in_area: 5,
        }
    }

    #[test]
    fn latency_finds_maximal_missed_streaks() {
        // User 0: hit, miss, miss, hit, miss  → outages of 2 and 1 (open).
        let a: QueryLog = [true, false, false, true, false]
            .iter()
            .enumerate()
            .map(|(i, &d)| record(i as u64 + 1, d))
            .collect();
        // User 1: all delivered → no outage.
        let b: QueryLog = (1..4).map(|s| record(s, true)).collect();
        let lat = recovery_latency(&[a, b]);
        assert_eq!(lat.outages, 2);
        assert_eq!(lat.max_periods, 2);
        assert!((lat.mean_periods - 1.5).abs() < 1e-12);
    }

    #[test]
    fn latency_of_clean_logs_is_zero() {
        let clean: QueryLog = (1..5).map(|s| record(s, true)).collect();
        let lat = recovery_latency(&[clean, QueryLog::new()]);
        assert_eq!(lat.outages, 0);
        assert_eq!(lat.mean_periods, 0.0);
        assert_eq!(lat.max_periods, 0);
    }
}
