//! # wsn-metrics
//!
//! Metrics collection and reporting for the MobiQuery reproduction.
//!
//! The paper evaluates three metrics (Section 6):
//!
//! 1. **Data fidelity** — the fraction of nodes in a query area that
//!    contribute to the query result.
//! 2. **Success ratio** — the fraction of queries that meet their deadline
//!    *and* reach a fidelity threshold (95 % in the paper).
//! 3. **Power consumption** — average power per sleeping node (computed by
//!    [`wsn_power::EnergyLedger`](https://docs.rs) in the power crate; this
//!    crate only aggregates the resulting numbers).
//!
//! [`QueryRecord`]/[`QueryLog`] capture per-query outcomes, [`Series`] holds
//! the per-period time series of Figure 5, and [`Table`] renders the aligned
//! text/CSV tables the experiment harness prints for every figure. The
//! [`json`] module is the deterministic JSON emitter behind
//! `repro --format json` and the committed bench trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod json;
pub mod latency;
pub mod multiuser;
pub mod query;
pub mod resilience;
pub mod series;
pub mod table;

pub use churn::{ChurnBatch, ChurnSummary};
pub use json::JsonValue;
pub use latency::{percentile_sorted, LatencyStats};
pub use multiuser::{summarize_users, UserSummary};
pub use query::{QueryLog, QueryRecord};
pub use resilience::{recovery_latency, FaultBatch, RecoveryLatency, ResilienceSummary};
pub use series::Series;
pub use table::Table;
pub use wsn_sim::stats::Summary;

/// The fidelity threshold used for the paper's success-ratio metric (95 %).
pub const PAPER_FIDELITY_THRESHOLD: f64 = 0.95;
