//! Offline miniature stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim implements the
//! small slice of proptest's API that the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for numeric [`Range`]s and
//!   tuples of strategies,
//! * [`collection::vec()`] and [`any`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`] macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds:
//! each test runs a fixed number of cases (`PROPTEST_CASES`, default 128)
//! drawn from a deterministic splitmix64 stream, so failures reproduce
//! run-to-run. Swapping the real crate back in is a manifest-only change.

use std::marker::PhantomData;
use std::ops::Range;

/// Number of generated cases per property, overridable via the
/// `PROPTEST_CASES` environment variable (mirroring real proptest).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Deterministic splitmix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator for one test case; `case` indexes the case within
    /// the property so every case sees an independent stream.
    pub fn for_case(property: &str, case: u32) -> Self {
        // FNV-1a over the property name keeps streams distinct per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in property.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values for one property argument. Mirror of
/// `proptest::strategy::Strategy`, minus shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every drawn value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                if span == 0 {
                    self.start
                } else {
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        }
    )*};
}

uint_range_strategy!(u8, u16, u32, u64, usize);

// Signed ranges can span more than the type's positive half (e.g.
// `i32::MIN..i32::MAX`), so the width and the offset add are computed with
// wrapping arithmetic; the result still lands in `[start, end)`.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                if span == 0 {
                    self.start
                } else {
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Strategy for the full range of a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Types [`any`] knows how to generate.
pub trait ArbitraryValue {
    /// Draw an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Error type carried by a failing `prop_assert!` before it is turned into a
/// panic by the [`proptest!`] harness.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Outcome of one generated case: pass, assumption-rejected, or failed.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError,
    };
}

/// Define property tests. Each function runs [`case_count`] generated cases;
/// the first failing case panics with the rendered assertion message.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::case_count();
            for case in 0..cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {}/{}: {}", stringify!($name), case, cases, e);
                }
            }
        }
    )*};
}

/// Fail the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fail the current generated case unless the two operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Skip the current generated case (count it as passing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}
