//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! crates.io is unreachable from this build environment, so this shim keeps
//! the workspace's nine `[[bench]]` targets compiling and runnable with the
//! API subset they use (`Criterion::bench_function`, `benchmark_group`,
//! `sample_size`, `criterion_group!`, `criterion_main!`). Instead of
//! criterion's statistical machinery it runs each benchmark for a warm-up
//! iteration plus `sample_size` timed iterations and prints the mean and
//! best wall-clock time per iteration. Swapping real criterion back in is a
//! manifest-only change; the bench sources need no edits.

use std::time::{Duration, Instant};

/// Default number of timed iterations when a bench does not call
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLES: usize = 10;

/// Entry point handed to every benchmark function; mirror of
/// `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Time a single benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.as_ref(), DEFAULT_SAMPLES, &mut f);
        self
    }

    /// Open a named group of benchmarks sharing a sample-size setting.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named collection of benchmarks; mirror of `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Time a single benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.as_ref(), self.samples, &mut f);
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method is the
/// timed region.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    best: Duration,
}

impl Bencher {
    /// Run `routine` once as warm-up and `samples` more times under the
    /// clock, recording mean and best iteration time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(routine());
        let mut best = Duration::MAX;
        let start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            best = best.min(t0.elapsed());
        }
        self.total = start.elapsed();
        self.best = best;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        best: Duration::MAX,
    };
    f(&mut b);
    if b.total == Duration::ZERO {
        println!("  {name}: no measurement (Bencher::iter never called)");
    } else {
        println!(
            "  {name}: mean {:?} / best {:?} over {} iters",
            b.total / samples as u32,
            b.best,
            samples
        );
    }
}

/// Collect benchmark functions into a runnable group; mirror of
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for a bench binary; mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
