//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal API-compatible subset of the external
//! crates it names (see `crates/shims/`). This proc-macro crate accepts the
//! `#[derive(Serialize, Deserialize)]` attributes used throughout the source
//! tree and expands to nothing: the types stay annotated exactly as they
//! would be against real serde, and swapping the real crates back in is a
//! one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op replacement for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
