//! Offline stand-in for `serde`.
//!
//! crates.io is unreachable from this build environment, so the workspace
//! vendors the tiny slice of serde's API the source tree actually touches:
//! the `Serialize` / `Deserialize` trait names and their derive macros. The
//! derives expand to nothing and the traits carry no methods — nothing in the
//! repository serializes yet; the annotations exist so the data model is
//! ready for a real wire format the moment the genuine crate is swapped back
//! in via `[workspace.dependencies]`.

/// Marker trait mirroring `serde::Serialize`.
///
/// The vendored derive emits no impl; the trait exists so code written
/// against real serde (trait bounds, fully-qualified paths) keeps compiling.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
