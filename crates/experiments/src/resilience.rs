//! The resilience sweep: how gracefully does the query service degrade under
//! injected faults, and how much success does protocol recovery buy back?
//!
//! Every trial runs the stepped engine with a seed-derived fault schedule
//! (Gilbert–Elliott bursty link loss, optional mid-period crashes) twice per
//! configuration point — once with recovery armed (install retries with
//! exponential backoff, poisoned-tree rebuilds, naive fallback) and once
//! without — across a ladder of loss rates, so the output directly compares
//! the two protocol variants the tentpole exists to separate.
//!
//! Deterministic outputs (`--format json resilience`) deliberately exclude
//! every wall-clock field so the bytes are identical for every `--jobs`
//! setting; the CI chaos gate `cmp`s them across job counts. The `--bench`
//! section is where `check_bench.py` holds recovery-on to strictly higher
//! mean delivery than recovery-off at every nonzero loss rate.

use crate::runner::trial_seed;
use crate::scale::scale_scenario;
use crate::ExperimentConfig;
use mobiquery::config::Scheme;
use mobiquery::sim::{FaultConfig, MultiUserOutput, QuerySet, SteppedSim, TreeSharing};
use std::time::Instant;
use wsn_metrics::{recovery_latency, JsonValue, ResilienceSummary, Table};
use wsn_sim::pool;

/// The loss ladder swept for a top rate `R`: the sweep compares recovery
/// on/off at `R/4`, `R/2` and `R` so one `--fault-loss` flag yields a
/// degradation curve, not a single point.
pub fn loss_ladder(top: f64) -> [f64; 3] {
    [top * 0.25, top * 0.5, top]
}

/// One resilience trial: one deployment size, one fault configuration, one
/// recovery setting, walked to the end. All fields except `elapsed_ms` are
/// deterministic in `(nodes, fault, users, seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePoint {
    /// Deployment size of the trial.
    pub nodes: usize,
    /// Stationary per-node bad-channel probability injected.
    pub loss: f64,
    /// Mean bad-state dwell in periods (Gilbert–Elliott burst length).
    pub burst: f64,
    /// Fraction of nodes crashed mid-period at every boundary.
    pub crash_rate: f64,
    /// Whether recovery (retries, rebuilds, fallbacks) was armed.
    pub recovery: bool,
    /// Fleet size sharing the service during the walk.
    pub users: usize,
    /// Seed the trial ran under.
    pub seed: u64,
    /// Fault batches applied (one per boundary).
    pub batches: usize,
    /// Node-periods spent with a bad channel.
    pub link_bad_node_periods: usize,
    /// Total mid-period crashes.
    pub crashes: usize,
    /// Total install transmissions (first attempts and retries).
    pub install_attempts: u64,
    /// Install retransmissions beyond each install's first attempt.
    pub retries: u64,
    /// Installs abandoned after every attempt — whole periods lost.
    pub install_failures: u64,
    /// Poisoned shared trees rebuilt around crashed nodes.
    pub trees_rebuilt: u64,
    /// Poisoned trees degraded to per-user naive trees.
    pub naive_fallbacks: u64,
    /// Energy drained by retransmissions, in joules.
    pub retry_energy_j: f64,
    /// Query results delivered by their deadline across the fleet.
    pub delivered: usize,
    /// Retransmissions paid per delivered result.
    pub retries_per_delivered: f64,
    /// Outages: maximal streaks of undelivered periods across users.
    pub outages: usize,
    /// Mean outage length in periods (recovery latency).
    pub mean_outage_periods: f64,
    /// Longest outage in periods.
    pub max_outage_periods: u64,
    /// Fleet-mean paper success ratio (deadline + 95% fidelity).
    pub mean_success_ratio: f64,
    /// Fleet-mean per-query fidelity.
    pub mean_fidelity: f64,
    /// Fleet-mean fraction of periods whose result arrived by deadline —
    /// the "query success" the recovery machinery defends.
    pub mean_delivery_ratio: f64,
    /// Wall-clock of the walk (bench only; excluded from JSON points).
    pub elapsed_ms: f64,
}

fn mean_delivery(out: &MultiUserOutput) -> f64 {
    if out.logs.is_empty() {
        return 0.0;
    }
    let total: f64 = out
        .logs
        .iter()
        .map(wsn_metrics::QueryLog::deadline_ratio)
        .sum();
    total / out.logs.len() as f64
}

/// Runs one resilience trial to completion.
///
/// # Panics
///
/// Panics if the fault config fails validation or the walk errors —
/// experiment code builds its configs from CLI-validated rates, so a
/// failure here is a programming error, not user input.
pub fn run_point(nodes: usize, fault: FaultConfig, users: usize, seed: u64) -> ResiliencePoint {
    let scenario = scale_scenario(nodes, Scheme::JustInTime, seed);
    let set = QuerySet::generate(&scenario, users);
    let start = Instant::now();
    let mut sim = SteppedSim::with_faults(scenario, set, TreeSharing::Shared, fault)
        .expect("resilience fault configs are valid by construction");
    sim.run_to_end().expect("fault walks complete");
    let summary = ResilienceSummary::from_batches(sim.fault_log());
    let out = sim.finish();
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let delivered: usize = out
        .logs
        .iter()
        .flat_map(|log| log.records())
        .filter(|r| r.met_deadline())
        .count();
    let latency = recovery_latency(&out.logs);
    ResiliencePoint {
        nodes,
        loss: fault.loss,
        burst: fault.burst,
        crash_rate: fault.crash_rate,
        recovery: fault.recovery,
        users,
        seed,
        batches: summary.batches,
        link_bad_node_periods: summary.link_bad_node_periods,
        crashes: summary.crashes,
        install_attempts: summary.install_attempts,
        retries: summary.retries,
        install_failures: summary.install_failures,
        trees_rebuilt: summary.trees_rebuilt,
        naive_fallbacks: summary.naive_fallbacks,
        retry_energy_j: summary.retry_energy_j,
        delivered,
        retries_per_delivered: summary.retries_per_delivered(delivered),
        outages: latency.outages,
        mean_outage_periods: latency.mean_periods,
        max_outage_periods: latency.max_periods,
        mean_success_ratio: out.mean_success_ratio(),
        mean_fidelity: out.mean_fidelity(),
        mean_delivery_ratio: mean_delivery(&out),
        elapsed_ms,
    }
}

/// Runs every (scale × ladder loss × recovery × replicate) trial — fanned
/// out over `config.jobs` workers — in deterministic trial order. The seed
/// depends on the (scale, loss) point and replicate but NOT on the recovery
/// flag, so each on/off pair faces the identical fault schedule.
pub fn run_points(
    config: &ExperimentConfig,
    scales: &[usize],
    fault: FaultConfig,
) -> Vec<ResiliencePoint> {
    let runs = config.runs.max(1);
    let mut trials = Vec::new();
    let mut point = 0usize;
    for &nodes in scales {
        for &loss in &loss_ladder(fault.loss) {
            for replicate in 0..runs {
                let seed = trial_seed(config.base_seed, point, replicate);
                for recovery in [true, false] {
                    let config = FaultConfig {
                        loss,
                        recovery,
                        ..fault
                    };
                    trials.push((nodes, config, seed));
                }
            }
            point += 1;
        }
    }
    pool::run_indexed(config.jobs, trials, |_, (nodes, fault, seed)| {
        run_point(nodes, fault, config.users, seed)
    })
}

fn table_from_points(points: &[ResiliencePoint]) -> Table {
    let mut table = Table::with_columns(
        "Resilience: recovery-on vs recovery-off across a loss ladder",
        &[
            "nodes", "loss", "recovery", "crashes", "retries", "failures", "rebuilt", "fallback",
            "delivery", "fidelity",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.nodes.to_string(),
            format!("{:.4}", p.loss),
            if p.recovery { "on" } else { "off" }.to_string(),
            p.crashes.to_string(),
            p.retries.to_string(),
            p.install_failures.to_string(),
            p.trees_rebuilt.to_string(),
            p.naive_fallbacks.to_string(),
            format!("{:.3}", p.mean_delivery_ratio),
            format!("{:.3}", p.mean_fidelity),
        ]);
    }
    table
}

/// Runs the sweep and formats it as a table (rows: scale × loss × recovery
/// × replicate).
pub fn run(config: &ExperimentConfig, scales: &[usize], fault: FaultConfig) -> Table {
    table_from_points(&run_points(config, scales, fault))
}

/// The deterministic JSON view of one point: every field except wall-clock.
fn point_json(p: &ResiliencePoint) -> JsonValue {
    JsonValue::object()
        .with("nodes", p.nodes)
        .with("loss", p.loss)
        .with("burst", p.burst)
        .with("crash_rate", p.crash_rate)
        .with("recovery", p.recovery)
        .with("users", p.users)
        .with("seed", p.seed)
        .with("batches", p.batches)
        .with("link_bad_node_periods", p.link_bad_node_periods)
        .with("crashes", p.crashes)
        .with("install_attempts", p.install_attempts as usize)
        .with("retries", p.retries as usize)
        .with("install_failures", p.install_failures as usize)
        .with("trees_rebuilt", p.trees_rebuilt as usize)
        .with("naive_fallbacks", p.naive_fallbacks as usize)
        .with("retry_energy_j", p.retry_energy_j)
        .with("delivered", p.delivered)
        .with("retries_per_delivered", p.retries_per_delivered)
        .with("outages", p.outages)
        .with("mean_outage_periods", p.mean_outage_periods)
        .with("max_outage_periods", p.max_outage_periods as usize)
        .with("mean_success_ratio", p.mean_success_ratio)
        .with("mean_fidelity", p.mean_fidelity)
        .with("mean_delivery_ratio", p.mean_delivery_ratio)
}

/// Runs the sweep and renders it as JSON with **no timing fields**, so the
/// bytes are identical for every `--jobs` setting — the CI chaos gate
/// `cmp`s this output across job counts.
pub fn run_json(config: &ExperimentConfig, scales: &[usize], fault: FaultConfig) -> JsonValue {
    let points = run_points(config, scales, fault);
    table_from_points(&points)
        .to_json()
        .with("loss", fault.loss)
        .with("burst", fault.burst)
        .with(
            "points",
            points.iter().map(point_json).collect::<Vec<JsonValue>>(),
        )
}

/// The `--bench` resilience section: at one deployment size, sweep a fixed
/// loss ladder with recovery on and off on the identical fault schedule.
/// `check_bench.py` holds recovery-on to strictly higher
/// `mean_delivery_ratio` than recovery-off at every nonzero loss.
pub fn bench_sweep(nodes: usize, losses: &[f64], users: usize, base_seed: u64) -> JsonValue {
    let mut entries = Vec::new();
    for (point, &loss) in losses.iter().enumerate() {
        let seed = trial_seed(base_seed, point, 0);
        for recovery in [true, false] {
            eprintln!(
                "resilience bench: {nodes} nodes at loss {loss}, recovery {}",
                if recovery { "on" } else { "off" }
            );
            let p = run_point(
                nodes,
                FaultConfig::new(loss).with_recovery(recovery),
                users,
                seed,
            );
            entries.push(
                JsonValue::object()
                    .with("nodes", p.nodes)
                    .with("loss", p.loss)
                    .with("recovery", p.recovery)
                    .with("retries", p.retries as usize)
                    .with("install_failures", p.install_failures as usize)
                    .with("retries_per_delivered", round4(p.retries_per_delivered))
                    .with("mean_outage_periods", round4(p.mean_outage_periods))
                    .with("mean_success_ratio", round4(p.mean_success_ratio))
                    .with("mean_fidelity", round4(p.mean_fidelity))
                    .with("mean_delivery_ratio", round4(p.mean_delivery_ratio))
                    .with("elapsed_ms", round2(p.elapsed_ms)),
            );
        }
    }
    JsonValue::Array(entries)
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_scales_with_the_top_rate() {
        let ladder = loss_ladder(0.4);
        assert_eq!(ladder, [0.1, 0.2, 0.4]);
    }

    #[test]
    fn point_reports_fault_and_recovery_counters() {
        let p = run_point(200, FaultConfig::new(0.3), 2, 7);
        assert!(p.batches > 0);
        assert!(
            p.link_bad_node_periods > 0,
            "30% loss must mark channels bad"
        );
        assert!(p.install_attempts > 0);
        assert!(p.recovery);
        assert!(p.mean_delivery_ratio > 0.0 && p.mean_delivery_ratio <= 1.0);
    }

    #[test]
    fn recovery_on_beats_recovery_off_on_the_same_schedule() {
        let on = run_point(200, FaultConfig::new(0.3), 3, 11);
        let off = run_point(200, FaultConfig::new(0.3).with_recovery(false), 3, 11);
        assert!(on.retries > 0, "recovery must actually retry under loss");
        assert_eq!(off.retries, 0, "no retries with recovery off");
        assert!(
            on.mean_delivery_ratio > off.mean_delivery_ratio,
            "retries must buy delivery: on={} off={}",
            on.mean_delivery_ratio,
            off.mean_delivery_ratio
        );
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        let config = ExperimentConfig {
            users: 2,
            ..ExperimentConfig::quick()
        };
        let fault = FaultConfig::new(0.2);
        let strip = |points: Vec<ResiliencePoint>| {
            points
                .into_iter()
                .map(|p| point_json(&p).to_string())
                .collect::<Vec<_>>()
        };
        let serial = strip(run_points(&config.with_jobs(1), &[150], fault));
        let parallel = strip(run_points(&config.with_jobs(4), &[150], fault));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 3 * 2, "ladder of three, on and off each");
    }

    #[test]
    fn bench_sweep_reports_on_off_pairs_per_loss() {
        let doc = bench_sweep(150, &[0.1, 0.3], 2, 11);
        let JsonValue::Array(entries) = doc else {
            panic!("resilience bench must be an array");
        };
        assert_eq!(entries.len(), 4, "two losses, on and off each");
        let text = entries[0].to_string();
        for field in [
            "\"loss\"",
            "\"recovery\"",
            "\"retries\"",
            "\"mean_delivery_ratio\"",
            "\"mean_outage_periods\"",
            "\"elapsed_ms\"",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}
