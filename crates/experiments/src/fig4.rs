//! Figure 4 — success ratio of MQ-JIT, MQ-GP and NP across sleep periods and
//! user speeds, under accurate (oracle) motion profiles.
//!
//! Paper setting: 400 s runs, the user changes direction/speed every 50 s,
//! speed ranges {3–5, 6–10, 16–20} m/s, sleep periods {3, 6, 9, 12, 15} s,
//! success threshold 95 % fidelity, averaged over 3 topologies.

use crate::runner::TrialPlan;
use crate::ExperimentConfig;
use mobiquery::config::Scheme;
use wsn_metrics::{JsonValue, Table};
use wsn_mobility::ProfileSource;

/// The sleep periods swept in the figure, in seconds.
pub fn sleep_periods(config: &ExperimentConfig) -> Vec<f64> {
    if config.quick {
        vec![3.0, 9.0, 15.0]
    } else {
        vec![3.0, 6.0, 9.0, 12.0, 15.0]
    }
}

/// The user speed ranges swept in the figure, in m/s.
pub fn speed_ranges(config: &ExperimentConfig) -> Vec<(f64, f64)> {
    if config.quick {
        vec![(3.0, 5.0), (16.0, 20.0)]
    } else {
        vec![(3.0, 5.0), (6.0, 10.0), (16.0, 20.0)]
    }
}

/// The schemes compared in the figure.
pub const SCHEMES: [Scheme; 3] = [Scheme::JustInTime, Scheme::Greedy, Scheme::None];

/// One data point of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// The prefetching scheme.
    pub scheme: Scheme,
    /// Duty-cycle sleep period in seconds.
    pub sleep_period_s: f64,
    /// Lower bound of the user speed range (m/s).
    pub speed_min: f64,
    /// Upper bound of the user speed range (m/s).
    pub speed_max: f64,
    /// Mean success ratio over the replicated runs.
    pub success_ratio: f64,
    /// 95 % confidence half-interval of the success ratio.
    pub ci95: f64,
}

/// Runs the full sweep — all (speed × sleep × scheme × replicate) trials fan
/// out over `config.jobs` workers — and returns every data point.
pub fn run_points(config: &ExperimentConfig) -> Vec<Fig4Point> {
    let mut plan = TrialPlan::new();
    let mut coords = Vec::new();
    for &(speed_min, speed_max) in &speed_ranges(config) {
        for &sleep in &sleep_periods(config) {
            for &scheme in &SCHEMES {
                plan.push_point(
                    config,
                    config
                        .base_scenario()
                        .with_sleep_period_secs(sleep)
                        .with_speed_range(speed_min, speed_max)
                        .with_profile_source(ProfileSource::Oracle)
                        .with_scheme(scheme),
                );
                coords.push((scheme, sleep, speed_min, speed_max));
            }
        }
    }
    let summaries = plan.run_summaries(config.jobs, |o| o.success_ratio);
    coords
        .into_iter()
        .zip(summaries)
        .map(
            |((scheme, sleep_period_s, speed_min, speed_max), summary)| Fig4Point {
                scheme,
                sleep_period_s,
                speed_min,
                speed_max,
                success_ratio: summary.mean(),
                ci95: summary.ci95(),
            },
        )
        .collect()
}

/// Runs the sweep and formats it as the paper's Figure 4 table
/// (rows: scheme × speed range, columns: sleep period).
pub fn run(config: &ExperimentConfig) -> Table {
    table_from_points(config, &run_points(config))
}

/// Formats already-computed points as the Figure 4 table.
fn table_from_points(config: &ExperimentConfig, points: &[Fig4Point]) -> Table {
    let sleeps = sleep_periods(config);
    let mut columns = vec!["scheme / speed (m/s)".to_string()];
    columns.extend(sleeps.iter().map(|s| format!("sleep={s}s")));
    let mut table = Table::new(
        "Figure 4: success ratio vs sleep period and user speed (oracle motion profile)",
        columns,
    );
    for &(lo, hi) in &speed_ranges(config) {
        for &scheme in &SCHEMES {
            let values: Vec<f64> = sleeps
                .iter()
                .map(|&s| {
                    points
                        .iter()
                        .find(|p| {
                            p.scheme == scheme
                                && p.sleep_period_s == s
                                && p.speed_min == lo
                                && p.speed_max == hi
                        })
                        .map(|p| p.success_ratio)
                        .unwrap_or(f64::NAN)
                })
                .collect();
            table.push_labeled_row(format!("{} {lo}-{hi}", scheme.label()), &values);
        }
    }
    table
}

/// Runs the sweep and renders it as JSON: the formatted table plus every raw
/// data point at full float precision.
pub fn run_json(config: &ExperimentConfig) -> JsonValue {
    let computed = run_points(config);
    let points: Vec<JsonValue> = computed
        .iter()
        .map(|p| {
            JsonValue::object()
                .with("scheme", p.scheme.label())
                .with("sleep_period_s", p.sleep_period_s)
                .with("speed_min", p.speed_min)
                .with("speed_max", p.speed_max)
                .with("success_ratio", p.success_ratio)
                .with("ci95", p.ci95)
        })
        .collect();
    table_from_points(config, &computed)
        .to_json()
        .with("points", points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_dimensions_match_config() {
        let quick = ExperimentConfig::quick();
        let full = ExperimentConfig::full();
        assert_eq!(sleep_periods(&full).len(), 5);
        assert_eq!(speed_ranges(&full).len(), 3);
        assert!(sleep_periods(&quick).len() < 5);
    }
}
