//! Scheduler micro-comparison: the calendar-queue [`EventQueue`] against the
//! retired [`HeapEventQueue`] reference, on a hold-model workload.
//!
//! The hold model is the classic priority-queue benchmark shape and matches
//! what the protocol simulation does: keep roughly `hold` events resident,
//! popping the earliest and scheduling replacements a bounded offset into the
//! future. Every run drives both queues over the same deterministic offset
//! stream and asserts the popped `(time, seq, payload)` traces are identical
//! before any timing is reported — a wrong-but-fast scheduler can never land
//! in the bench document.

use std::hint::black_box;
use std::time::Instant;
use wsn_metrics::JsonValue;
use wsn_sim::{EventQueue, HeapEventQueue, SimRng, SimTime};

/// Offsets (µs ahead of the queue's clock) of the deterministic workload.
/// A heavy share of ties and sub-day offsets mirrors the simulation's mix:
/// most traffic lands inside the current period, a few events far out.
fn offsets(events: usize, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..events)
        .map(|_| {
            let draw = rng.gen_range_f64(0.0, 1.0);
            if draw < 0.05 {
                // Far future: several wheel revolutions ahead.
                rng.gen_range_f64(1e6, 5e8) as u64
            } else if draw < 0.25 {
                // Exact tie with the current instant (FIFO pressure).
                0
            } else {
                rng.gen_range_f64(0.0, 50_000.0) as u64
            }
        })
        .collect()
}

/// Drives one queue through the hold model over `offs`, returning the popped
/// trace. Written as a macro because the two queue types are API twins
/// without a shared trait (the heap is kept only as a reference).
macro_rules! drive {
    ($queue:expr, $offs:expr, $hold:expr) => {{
        let mut queue = $queue;
        let offs: &[u64] = $offs;
        let mut popped: Vec<(SimTime, u64, u32)> = Vec::with_capacity(offs.len());
        let mut next = 0usize;
        while popped.len() < offs.len() {
            if next < offs.len() && queue.len() < $hold {
                let at = SimTime::from_micros(queue.now().as_micros() + offs[next]);
                queue.schedule_at(at, next as u32);
                next += 1;
                continue;
            }
            let ev = queue.pop().expect("pending events remain");
            popped.push((ev.time, ev.seq, ev.event));
        }
        assert!(queue.pop().is_none(), "hold model drains the queue");
        popped
    }};
}

/// Best-of-3 ns per operation (one op = one schedule or one pop) of `f`.
fn time_ns_per_op(ops: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / ops as f64);
    }
    best
}

/// Calendar vs heap at one hold size, equality-asserted.
fn compare_at(events: usize, hold: usize, seed: u64) -> JsonValue {
    let offs = offsets(events, seed);
    let calendar_trace = drive!(EventQueue::<u32>::new(), &offs, hold);
    let heap_trace = drive!(HeapEventQueue::<u32>::new(), &offs, hold);
    assert_eq!(
        calendar_trace, heap_trace,
        "calendar queue diverged from the heap reference at hold {hold}"
    );
    let ops = events * 2; // every event is scheduled once and popped once
    let calendar_ns = time_ns_per_op(ops, || {
        black_box(drive!(EventQueue::<u32>::new(), &offs, hold));
    });
    let heap_ns = time_ns_per_op(ops, || {
        black_box(drive!(HeapEventQueue::<u32>::new(), &offs, hold));
    });
    JsonValue::object()
        .with("hold", hold)
        .with("events", events)
        .with("calendar_ns_per_op", round2(calendar_ns))
        .with("heap_ns_per_op", round2(heap_ns))
        .with("speedup", round2(heap_ns / calendar_ns.max(1e-9)))
}

/// The `event_queue` section of the bench document: the hold-model
/// comparison at a small and a large resident-set size.
pub fn bench_compare(events: usize, seed: u64) -> JsonValue {
    let mut entries = Vec::new();
    for hold in [64usize, 4096] {
        let hold = hold.min(events.max(1));
        eprintln!("event queue bench: {events} events at hold {hold}, calendar vs heap");
        entries.push(compare_at(events, hold, seed));
    }
    JsonValue::Array(entries)
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_agree_and_sections_carry_both_timings() {
        let doc = bench_compare(2_000, 7);
        let JsonValue::Array(entries) = doc else {
            panic!("event queue bench must be an array");
        };
        assert_eq!(entries.len(), 2);
        for entry in &entries {
            let text = entry.to_string();
            for field in ["\"hold\"", "\"calendar_ns_per_op\"", "\"heap_ns_per_op\""] {
                assert!(text.contains(field), "missing {field} in {text}");
            }
        }
    }

    #[test]
    fn workload_mixes_ties_and_far_future() {
        let offs = offsets(10_000, 3);
        assert!(offs.iter().filter(|&&o| o == 0).count() > 1_000);
        assert!(offs.iter().any(|&o| o > 1_000_000));
    }
}
