//! Figure 6 — success ratio of MQ-JIT versus the advance time `Ta` of motion
//! profiles, for several sleep periods.
//!
//! Paper setting: the user changes motion every 70 s over a 500 s run at
//! walking speed; a planner-style profile for each change is delivered `Ta`
//! seconds before (or, for negative `Ta`, after) the change. The success
//! ratio grows with `Ta` and approaches 100 % once `Ta` exceeds the warm-up
//! threshold of Equation 16; shorter sleep periods need less advance notice.

use crate::runner::TrialPlan;
use crate::ExperimentConfig;
use mobiquery::analysis;
use mobiquery::config::Scheme;
use wsn_metrics::{JsonValue, Table};

/// The advance times swept, in seconds.
pub fn advance_times(config: &ExperimentConfig) -> Vec<f64> {
    if config.quick {
        vec![-6.0, 6.0, 18.0]
    } else {
        vec![-6.0, 0.0, 6.0, 12.0, 18.0]
    }
}

/// The sleep periods swept, in seconds.
pub fn sleep_periods(config: &ExperimentConfig) -> Vec<f64> {
    if config.quick {
        vec![3.0, 15.0]
    } else {
        vec![3.0, 9.0, 15.0]
    }
}

/// One data point: success ratio for a (sleep period, advance time) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Point {
    /// Sleep period in seconds.
    pub sleep_period_s: f64,
    /// Advance time `Ta` in seconds.
    pub advance_s: f64,
    /// Mean success ratio.
    pub success_ratio: f64,
    /// The Eq.-16 warm-up bound for this point, in seconds (printed alongside
    /// the simulation results, as the paper's Section 5.3 cross-check).
    pub warmup_bound_s: f64,
}

/// Runs the sweep (all trials fanned out over `config.jobs` workers) and
/// returns every data point.
pub fn run_points(config: &ExperimentConfig) -> Vec<Fig6Point> {
    let mut plan = TrialPlan::new();
    let mut coords = Vec::new();
    for &sleep in &sleep_periods(config) {
        for &ta in &advance_times(config) {
            let scenario = config
                .base_scenario()
                .with_sleep_period_secs(sleep)
                .with_speed_range(3.0, 5.0)
                .with_motion_change_interval(70.0)
                .with_duration_secs(if config.quick { 140.0 } else { 500.0 })
                .with_planner_advance(ta)
                .with_scheme(Scheme::JustInTime);
            let warmup = analysis::warmup_interval_approx_s(&scenario.analysis_params(), ta);
            plan.push_point(config, scenario);
            coords.push((sleep, ta, warmup));
        }
    }
    let summaries = plan.run_summaries(config.jobs, |o| o.success_ratio);
    coords
        .into_iter()
        .zip(summaries)
        .map(
            |((sleep_period_s, advance_s, warmup_bound_s), summary)| Fig6Point {
                sleep_period_s,
                advance_s,
                success_ratio: summary.mean(),
                warmup_bound_s,
            },
        )
        .collect()
}

/// Runs the sweep and formats it as a table (rows: sleep period, columns: Ta).
pub fn run(config: &ExperimentConfig) -> Table {
    table_from_points(config, &run_points(config))
}

/// Runs the sweep and renders it as JSON: the formatted table plus every raw
/// data point (success ratio and Eq.-16 warm-up bound) at full precision.
pub fn run_json(config: &ExperimentConfig) -> JsonValue {
    let computed = run_points(config);
    let points: Vec<JsonValue> = computed
        .iter()
        .map(|p| {
            JsonValue::object()
                .with("sleep_period_s", p.sleep_period_s)
                .with("advance_s", p.advance_s)
                .with("success_ratio", p.success_ratio)
                .with("warmup_bound_s", p.warmup_bound_s)
        })
        .collect();
    table_from_points(config, &computed)
        .to_json()
        .with("points", points)
}

/// Formats already-computed points as the Figure 6 table.
fn table_from_points(config: &ExperimentConfig, points: &[Fig6Point]) -> Table {
    let tas = advance_times(config);
    let mut columns = vec!["sleep period".to_string()];
    columns.extend(tas.iter().map(|t| format!("Ta={t}s")));
    let mut table = Table::new(
        "Figure 6: MQ-JIT success ratio vs advance time of motion profiles",
        columns,
    );
    for &sleep in &sleep_periods(config) {
        let values: Vec<f64> = tas
            .iter()
            .map(|&ta| {
                points
                    .iter()
                    .find(|p| p.sleep_period_s == sleep && p.advance_s == ta)
                    .map(|p| p.success_ratio)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        table.push_labeled_row(format!("{sleep}s"), &values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_bound_decreases_with_advance_time() {
        let config = ExperimentConfig::quick();
        let scenario = config.base_scenario().with_sleep_period_secs(9.0);
        let p = scenario.analysis_params();
        assert!(
            analysis::warmup_interval_approx_s(&p, -6.0)
                > analysis::warmup_interval_approx_s(&p, 18.0)
        );
    }
}
