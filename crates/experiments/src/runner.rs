//! The trial-execution subsystem: declarative plans of independent
//! simulation trials, executed serially or fanned out across worker threads
//! with bit-identical results either way.
//!
//! Every figure sweep is the same shape — a grid of *points* (one scenario
//! each), each point replicated over a few independent topologies — and the
//! trials are embarrassingly parallel because the simulator is deliberately
//! single-threaded per run. This module makes that structure explicit:
//!
//! 1. a figure module *flattens* its nested parameter loops into a
//!    [`TrialPlan`] (a `Vec<TrialSpec>` of scenario + derived seed + point
//!    coordinates) instead of running anything inline,
//! 2. the plan executes on the [`wsn_sim::pool`] work-stealing pool with
//!    up to [`ExperimentConfig::jobs`] workers, and
//! 3. results come back grouped by point **in plan order**, regardless of
//!    worker count or scheduling.
//!
//! Determinism hinges on the seeds: each trial's seed is a pure function
//! [`trial_seed`]`(base_seed, point_index, replicate)` — not a function of
//! which thread ran it or when — so `--jobs 1` and `--jobs N` produce
//! byte-identical figures, which CI enforces by diffing JSON output.

use crate::{run_scenario, ExperimentConfig};
use mobiquery::config::Scenario;
use mobiquery::sim::SimulationOutput;
use wsn_sim::pool;
use wsn_sim::stats::Summary;

/// Derives the RNG seed for one trial from the experiment's base seed and
/// the trial's plan coordinates.
///
/// The derivation is [`wsn_sim::mix_seed`] — a SplitMix64-style finalizer
/// over the three inputs, so nearby coordinates (adjacent points, adjacent
/// replicates) still get statistically independent streams — unlike the
/// additive `base_seed + r` scheme this replaces, which reused the same seeds
/// at every point. The function is pure: the seed depends only on
/// `(base_seed, point_index, replicate)`, never on execution order, which is
/// what makes parallel and serial execution bit-identical. The multi-user
/// simulation derives its per-user and per-query streams through the same
/// mixer (with distinct stream tags), so one scheme covers the whole
/// workspace; the exact output is pinned by `tests/parallel_determinism.rs`.
pub fn trial_seed(base_seed: u64, point_index: usize, replicate: u64) -> u64 {
    wsn_sim::mix_seed(
        base_seed,
        &[0x9E37_79B9_7F4A_7C15, point_index as u64, replicate],
    )
}

/// One simulation trial: a fully configured scenario plus the plan
/// coordinates it was flattened from.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSpec {
    /// Index of the data point this trial belongs to (plan order).
    pub point_index: usize,
    /// Replicate number within the point, `0..runs`.
    pub replicate: u64,
    /// The derived RNG seed, `trial_seed(base_seed, point_index, replicate)`.
    pub seed: u64,
    /// The scenario to simulate (seed already applied).
    pub scenario: Scenario,
}

/// A declarative batch of independent trials, grouped into data points.
///
/// Build one by [`push_point`](TrialPlan::push_point)-ing each scenario of a
/// sweep in figure order, then execute the whole batch at once with
/// [`run_map`](TrialPlan::run_map) or
/// [`run_summaries`](TrialPlan::run_summaries).
///
/// ```
/// use mobiquery_experiments::runner::TrialPlan;
/// use mobiquery_experiments::ExperimentConfig;
///
/// let config = ExperimentConfig::quick();
/// let mut plan = TrialPlan::new();
/// for sleep in [3.0, 15.0] {
///     plan.push_point(&config, config.base_scenario().with_sleep_period_secs(sleep));
/// }
/// assert_eq!(plan.point_count(), 2);
/// assert_eq!(plan.trial_count(), 2 * config.runs as usize);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrialPlan {
    points: usize,
    trials: Vec<TrialSpec>,
}

impl TrialPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        TrialPlan::default()
    }

    /// Appends one data point: `config.runs` replicates of `scenario`, each
    /// with its own derived seed. Returns the point's index.
    pub fn push_point(&mut self, config: &ExperimentConfig, scenario: Scenario) -> usize {
        let point_index = self.points;
        self.points += 1;
        for replicate in 0..config.runs.max(1) {
            let seed = trial_seed(config.base_seed, point_index, replicate);
            self.trials.push(TrialSpec {
                point_index,
                replicate,
                seed,
                scenario: scenario.clone().with_seed(seed),
            });
        }
        point_index
    }

    /// Number of data points pushed so far.
    pub fn point_count(&self) -> usize {
        self.points
    }

    /// Total number of trials (points × their replicates).
    pub fn trial_count(&self) -> usize {
        self.trials.len()
    }

    /// The flattened trials, in plan order.
    pub fn trials(&self) -> &[TrialSpec] {
        &self.trials
    }

    /// Runs every trial on up to `jobs` worker threads, reduces each trial's
    /// output through `extract`, and returns the extracted values grouped by
    /// point in plan order.
    ///
    /// `extract` runs on the worker thread that simulated the trial, so heavy
    /// outputs (query logs, series) can be reduced to small values before
    /// crossing back; what it returns must not depend on anything but the
    /// trial itself, or determinism across job counts is lost.
    pub fn run_map<R, F>(self, jobs: usize, extract: F) -> Vec<Vec<R>>
    where
        R: Send,
        F: Fn(&TrialSpec, &SimulationOutput) -> R + Sync,
    {
        let points = self.points;
        let extracted = pool::run_indexed(jobs, self.trials, |_, spec| {
            let output = run_scenario(spec.scenario.clone());
            (spec.point_index, extract(&spec, &output))
        });
        let mut grouped: Vec<Vec<R>> = (0..points).map(|_| Vec::new()).collect();
        for (point_index, value) in extracted {
            grouped[point_index].push(value);
        }
        grouped
    }

    /// Runs every trial and summarises a single scalar `metric` per point:
    /// the parallel successor of the old serial `run_replicated` loop.
    pub fn run_summaries(
        self,
        jobs: usize,
        metric: impl Fn(&SimulationOutput) -> f64 + Sync,
    ) -> Vec<Summary> {
        self.run_map(jobs, |_, output| metric(output))
            .into_iter()
            .map(|values| values.into_iter().collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seed_is_deterministic_and_spread() {
        assert_eq!(trial_seed(42, 3, 1), trial_seed(42, 3, 1));
        // Any two distinct coordinates must give distinct seeds, including
        // the pairs an additive scheme would collide on.
        let coords = [(42, 0, 0), (42, 0, 1), (42, 1, 0), (42, 1, 1), (43, 0, 0)];
        let seeds: Vec<u64> = coords
            .iter()
            .map(|&(b, p, r)| trial_seed(b, p, r))
            .collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision in {seeds:?}");
    }

    #[test]
    fn plan_flattening_matches_points_times_runs() {
        let config = ExperimentConfig {
            runs: 3,
            ..ExperimentConfig::quick()
        };
        let mut plan = TrialPlan::new();
        for sleep in [3.0, 9.0, 15.0] {
            plan.push_point(
                &config,
                config.base_scenario().with_sleep_period_secs(sleep),
            );
        }
        assert_eq!(plan.point_count(), 3);
        assert_eq!(plan.trial_count(), 9);
        for (i, spec) in plan.trials().iter().enumerate() {
            assert_eq!(spec.point_index, i / 3);
            assert_eq!(spec.replicate, (i % 3) as u64);
            assert_eq!(
                spec.seed,
                trial_seed(config.base_seed, spec.point_index, spec.replicate)
            );
            assert_eq!(spec.scenario.seed, spec.seed, "seed applied to scenario");
        }
    }

    #[test]
    fn run_summaries_groups_by_point() {
        let config = ExperimentConfig {
            runs: 2,
            ..ExperimentConfig::quick()
        };
        let mut plan = TrialPlan::new();
        plan.push_point(&config, config.base_scenario().with_duration_secs(20.0));
        plan.push_point(&config, config.base_scenario().with_duration_secs(20.0));
        let summaries = plan.run_summaries(2, |o| o.mean_fidelity);
        assert_eq!(summaries.len(), 2);
        for s in &summaries {
            assert_eq!(s.count(), 2);
        }
    }

    #[test]
    fn parallel_and_serial_plans_agree() {
        let config = ExperimentConfig {
            runs: 2,
            ..ExperimentConfig::quick()
        };
        let build = || {
            let mut plan = TrialPlan::new();
            for sleep in [3.0, 15.0] {
                plan.push_point(
                    &config,
                    config
                        .base_scenario()
                        .with_duration_secs(20.0)
                        .with_sleep_period_secs(sleep),
                );
            }
            plan
        };
        let serial = build().run_summaries(1, |o| o.success_ratio);
        let parallel = build().run_summaries(4, |o| o.success_ratio);
        assert_eq!(serial, parallel);
    }
}
