//! The multi-user multiplexing sweep: how does the query service scale from
//! one mobile user to a fleet, and how many flood trees does the shared
//! `TreeCache` save over the naive one-tree-per-user
//! deployment?
//!
//! Every trial runs **both** sharing modes and asserts their per-user query
//! logs equal before reporting anything — the reference-equivalence check of
//! the tree cache rides inside the experiment itself, so a sweep that
//! completes *is* the proof that sharing changed no user's results, in the
//! style of the `elect_backbone_reference` cross-check.

use crate::runner::trial_seed;
use crate::ExperimentConfig;
use mobiquery::config::Scenario;
use mobiquery::sim::{MultiSimulation, MultiUserOutput, TreeSharing};
use std::time::Instant;
use wsn_metrics::{JsonValue, Table, UserSummary};
use wsn_sim::pool;

/// The fleet sizes swept by the figure: powers of two from a single user up
/// to and including `config.users`.
pub fn user_ladder(config: &ExperimentConfig) -> Vec<usize> {
    let mut ladder = Vec::new();
    let mut users = 1;
    while users < config.users {
        ladder.push(users);
        users *= 2;
    }
    ladder.push(config.users.max(1));
    ladder
}

/// One data point of the multi-user sweep: one fleet size, aggregated over
/// the configured replicates, with the shared and naive tree economies side
/// by side.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiuserPoint {
    /// Fleet size of the point.
    pub users: usize,
    /// Mean (over replicates) of the fleet-mean success ratio.
    pub mean_success_ratio: f64,
    /// Worst per-user success ratio seen in any replicate.
    pub min_success_ratio: f64,
    /// Mean (over replicates) of the fleet-mean fidelity.
    pub mean_fidelity: f64,
    /// Total query installs across the replicates.
    pub installs: u64,
    /// Trees built by the shared cache across the replicates.
    pub trees_built_shared: u64,
    /// Trees the naive one-tree-per-user baseline built (= installs).
    pub trees_built_naive: u64,
    /// `trees_built_shared / trees_built_naive` — below 1.0 means the cache
    /// multiplexed overlapping queries onto common trees.
    pub sharing_ratio: f64,
    /// Cache acquisitions served by an existing tree.
    pub shared_hits: u64,
    /// Most trees simultaneously live under sharing (any replicate).
    pub peak_live_trees: usize,
    /// Sleeping-node wake seconds paid under sharing.
    pub node_wake_seconds_shared: f64,
    /// Sleeping-node wake seconds the naive baseline pays.
    pub node_wake_seconds_naive: f64,
    /// Per-user summaries of the first replicate (fleet order).
    pub per_user: Vec<UserSummary>,
}

/// Runs one scenario under both sharing modes and asserts the shared run is
/// result-identical per user to the naive reference.
///
/// # Panics
///
/// Panics if any user's query log differs between the modes — that would
/// mean the tree cache changed protocol results, which the whole design
/// forbids.
pub fn run_equivalent_pair(
    scenario: &Scenario,
    users: usize,
) -> (MultiUserOutput, MultiUserOutput) {
    let shared = MultiSimulation::new(scenario.clone(), users, TreeSharing::Shared)
        .expect("experiment scenarios are valid by construction")
        .run();
    let naive = MultiSimulation::new(scenario.clone(), users, TreeSharing::Naive)
        .expect("experiment scenarios are valid by construction")
        .run();
    assert_eq!(
        shared.logs, naive.logs,
        "tree sharing changed per-user results at {users} users (seed {})",
        scenario.seed
    );
    (shared, naive)
}

/// Runs the sweep — every (fleet size × replicate) trial fans out over
/// `config.jobs` workers — and returns one aggregated point per fleet size.
pub fn run_points(config: &ExperimentConfig) -> Vec<MultiuserPoint> {
    let ladder = user_ladder(config);
    let runs = config.runs.max(1);
    let mut trials = Vec::new();
    for (point, &users) in ladder.iter().enumerate() {
        for replicate in 0..runs {
            trials.push((point, users, trial_seed(config.base_seed, point, replicate)));
        }
    }
    let outputs = pool::run_indexed(config.jobs, trials, |_, (point, users, seed)| {
        let scenario = config.base_scenario().with_seed(seed);
        let (shared, naive) = run_equivalent_pair(&scenario, users);
        (point, shared, naive)
    });

    ladder
        .iter()
        .enumerate()
        .map(|(point, &users)| {
            let replicates: Vec<&(usize, MultiUserOutput, MultiUserOutput)> =
                outputs.iter().filter(|(p, _, _)| *p == point).collect();
            let n = replicates.len() as f64;
            let installs: u64 = replicates.iter().map(|(_, s, _)| s.installs).sum();
            let trees_built_shared: u64 = replicates.iter().map(|(_, s, _)| s.trees_built).sum();
            let trees_built_naive: u64 = replicates.iter().map(|(_, _, nv)| nv.trees_built).sum();
            MultiuserPoint {
                users,
                mean_success_ratio: replicates
                    .iter()
                    .map(|(_, s, _)| s.mean_success_ratio())
                    .sum::<f64>()
                    / n,
                min_success_ratio: replicates
                    .iter()
                    .map(|(_, s, _)| s.min_success_ratio())
                    .fold(f64::INFINITY, f64::min),
                mean_fidelity: replicates
                    .iter()
                    .map(|(_, s, _)| s.mean_fidelity())
                    .sum::<f64>()
                    / n,
                installs,
                trees_built_shared,
                trees_built_naive,
                sharing_ratio: trees_built_shared as f64 / trees_built_naive.max(1) as f64,
                shared_hits: replicates.iter().map(|(_, s, _)| s.shared_hits).sum(),
                peak_live_trees: replicates
                    .iter()
                    .map(|(_, s, _)| s.peak_live_trees)
                    .max()
                    .unwrap_or(0),
                node_wake_seconds_shared: replicates
                    .iter()
                    .map(|(_, s, _)| s.node_wake_seconds)
                    .sum(),
                node_wake_seconds_naive: replicates
                    .iter()
                    .map(|(_, s, _)| s.node_wake_seconds_naive)
                    .sum(),
                per_user: replicates
                    .first()
                    .map(|(_, s, _)| s.per_user.clone())
                    .unwrap_or_default(),
            }
        })
        .collect()
}

/// Runs the sweep and formats it as a table (rows: fleet size).
pub fn run(config: &ExperimentConfig) -> Table {
    table_from_points(&run_points(config))
}

fn table_from_points(points: &[MultiuserPoint]) -> Table {
    let mut table = Table::with_columns(
        "Multi-user multiplexing: shared flood trees vs one tree per user",
        &[
            "users",
            "mean success",
            "min success",
            "mean fidelity",
            "trees shared",
            "trees naive",
            "sharing ratio",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.users.to_string(),
            format!("{:.3}", p.mean_success_ratio),
            format!("{:.3}", p.min_success_ratio),
            format!("{:.3}", p.mean_fidelity),
            p.trees_built_shared.to_string(),
            p.trees_built_naive.to_string(),
            format!("{:.3}", p.sharing_ratio),
        ]);
    }
    table
}

fn point_json(p: &MultiuserPoint) -> JsonValue {
    let per_user: Vec<JsonValue> = p
        .per_user
        .iter()
        .map(|u| {
            JsonValue::object()
                .with("user", u.user)
                .with("queries", u.queries)
                .with("success_ratio", u.success_ratio)
                .with("mean_fidelity", u.mean_fidelity)
        })
        .collect();
    JsonValue::object()
        .with("users", p.users)
        .with("mean_success_ratio", p.mean_success_ratio)
        .with("min_success_ratio", p.min_success_ratio)
        .with("mean_fidelity", p.mean_fidelity)
        .with("installs", p.installs)
        .with("trees_built_shared", p.trees_built_shared)
        .with("trees_built_naive", p.trees_built_naive)
        .with("sharing_ratio", p.sharing_ratio)
        .with("shared_hits", p.shared_hits)
        .with("peak_live_trees", p.peak_live_trees)
        .with("node_wake_seconds_shared", p.node_wake_seconds_shared)
        .with("node_wake_seconds_naive", p.node_wake_seconds_naive)
        .with("per_user", per_user)
}

/// Runs the sweep and renders it as JSON: the formatted table plus every
/// data point at full float precision (including per-user summaries of the
/// first replicate). Deliberately excludes timing so the bytes are identical
/// for every job count.
pub fn run_json(config: &ExperimentConfig) -> JsonValue {
    let points = run_points(config);
    table_from_points(&points)
        .to_json()
        .with(
            "points",
            points.iter().map(point_json).collect::<Vec<JsonValue>>(),
        )
        .with("users_max", config.users)
}

/// The `--bench` multi-user section: at one deployment size, sweep fleet
/// sizes and time the shared run against the naive one-tree-per-user run —
/// asserting, per entry, that they are result-identical per user.
///
/// Timings are a trajectory snapshot (machine-dependent), best-of-3 per
/// sharing mode — the engine is deterministic, so repeats do identical work
/// and the minimum is the least-noisy estimate; the tree counts and
/// per-user aggregates are deterministic.
pub fn bench_sweep(scenario_for: impl Fn(u64) -> Scenario, users_list: &[usize]) -> JsonValue {
    fn best_of_3(
        scenario: &Scenario,
        users: usize,
        sharing: TreeSharing,
    ) -> (MultiUserOutput, f64) {
        let mut best: Option<(MultiUserOutput, f64)> = None;
        for _ in 0..3 {
            let start = Instant::now();
            let out = MultiSimulation::new(scenario.clone(), users, sharing)
                .expect("bench scenarios are valid by construction")
                .run();
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            if best.as_ref().map_or(true, |(_, ms)| elapsed < *ms) {
                best = Some((out, elapsed));
            }
        }
        best.expect("three timed runs happened")
    }

    let mut entries = Vec::new();
    for (point, &users) in users_list.iter().enumerate() {
        let scenario = scenario_for(point as u64);
        eprintln!("multiuser bench: {users} users, shared vs naive");
        let (shared, shared_ms) = best_of_3(&scenario, users, TreeSharing::Shared);
        let (naive, naive_ms) = best_of_3(&scenario, users, TreeSharing::Naive);
        assert_eq!(
            shared.logs, naive.logs,
            "tree sharing changed per-user results at {users} users in the bench sweep"
        );
        entries.push(
            JsonValue::object()
                .with("users", users)
                .with("installs", shared.installs)
                .with("trees_built_shared", shared.trees_built)
                .with("trees_built_naive", naive.trees_built)
                .with("sharing_ratio", shared.sharing_ratio())
                .with("shared_hits", shared.shared_hits)
                .with("peak_live_trees", shared.peak_live_trees)
                .with("mean_success_ratio", shared.mean_success_ratio())
                .with("min_success_ratio", shared.min_success_ratio())
                .with("mean_fidelity", shared.mean_fidelity())
                .with("node_wake_seconds_shared", shared.node_wake_seconds)
                .with("node_wake_seconds_naive", shared.node_wake_seconds_naive)
                .with("shared_ms", round2(shared_ms))
                .with("naive_ms", round2(naive_ms))
                .with(
                    "events_per_sec",
                    round2(shared.events_processed as f64 / (shared_ms / 1e3).max(1e-9)),
                )
                .with("speedup", round2(naive_ms / shared_ms.max(1e-9))),
        );
    }
    JsonValue::Array(entries)
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_doubles_up_to_the_configured_fleet() {
        let config = ExperimentConfig::quick();
        assert_eq!(user_ladder(&config), vec![1, 2, 4, 8]);
        let six = ExperimentConfig {
            users: 6,
            ..ExperimentConfig::quick()
        };
        assert_eq!(user_ladder(&six), vec![1, 2, 4, 6]);
        let one = ExperimentConfig {
            users: 1,
            ..ExperimentConfig::quick()
        };
        assert_eq!(user_ladder(&one), vec![1]);
    }

    #[test]
    fn sweep_is_jobs_invariant_and_shares_trees() {
        let config = ExperimentConfig {
            users: 4,
            ..ExperimentConfig::quick()
        };
        let serial = run_points(&config.with_jobs(1));
        let parallel = run_points(&config.with_jobs(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 3, "ladder 1, 2, 4");
        // The naive baseline builds one tree per install, always.
        for p in &serial {
            assert_eq!(p.trees_built_naive, p.installs);
            assert!(p.sharing_ratio <= 1.0);
        }
        // By 4 users on the quick 2×2 lattice, sharing must have kicked in.
        let last = serial.last().unwrap();
        assert!(
            last.trees_built_shared < last.trees_built_naive,
            "expected shared < naive trees at {} users",
            last.users
        );
        assert_eq!(last.per_user.len(), 4);
    }

    #[test]
    fn bench_sweep_reports_one_entry_per_fleet_size() {
        let doc = bench_sweep(
            |point| {
                ExperimentConfig::quick()
                    .base_scenario()
                    .with_duration_secs(30.0)
                    .with_seed(trial_seed(11, point as usize, 0))
            },
            &[1, 3],
        );
        let JsonValue::Array(entries) = doc else {
            panic!("bench sweep must be an array");
        };
        assert_eq!(entries.len(), 2);
        let text = entries[1].to_string();
        for field in [
            "\"users\"",
            "\"trees_built_shared\"",
            "\"trees_built_naive\"",
            "\"sharing_ratio\"",
            "\"min_success_ratio\"",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}
