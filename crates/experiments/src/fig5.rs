//! Figure 5 — dynamic behaviour: per-period data fidelity of MQ-JIT and
//! MQ-GP at each pickup point.
//!
//! Paper setting: sleep period 15 s, walking user (3–5 m/s), oracle motion
//! profile, 200 query periods. MQ-JIT reaches 100 % fidelity after an initial
//! warm-up of about five periods; MQ-GP shows large variance caused by
//! congestion losses.

use crate::runner::TrialPlan;
use crate::ExperimentConfig;
use mobiquery::config::Scheme;
use wsn_metrics::{JsonValue, Series};
use wsn_mobility::ProfileSource;

/// Per-scheme fidelity time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Output {
    /// Per-period fidelity of just-in-time prefetching.
    pub jit: Series,
    /// Per-period fidelity of greedy prefetching.
    pub greedy: Series,
}

impl Fig5Output {
    /// Mean fidelity of MQ-JIT after the warm-up phase (periods > `skip`).
    pub fn jit_steady_state_mean(&self, skip: usize) -> f64 {
        steady_mean(&self.jit, skip)
    }

    /// Mean fidelity of MQ-GP after the warm-up phase.
    pub fn greedy_steady_state_mean(&self, skip: usize) -> f64 {
        steady_mean(&self.greedy, skip)
    }
}

fn steady_mean(series: &Series, skip: usize) -> f64 {
    let pts: Vec<f64> = series.points().iter().skip(skip).map(|&(_, y)| y).collect();
    if pts.is_empty() {
        0.0
    } else {
        pts.iter().sum::<f64>() / pts.len() as f64
    }
}

/// Runs the two schemes (one trial each, in parallel when `config.jobs > 1`)
/// and returns their fidelity series.
pub fn run(config: &ExperimentConfig) -> Fig5Output {
    let base = config
        .base_scenario()
        .with_sleep_period_secs(15.0)
        .with_speed_range(3.0, 5.0)
        .with_profile_source(ProfileSource::Oracle);

    // The figure is a single dynamic trace per scheme, so the plan has one
    // replicate per point whatever `config.runs` says.
    let single = ExperimentConfig { runs: 1, ..*config };
    let mut plan = TrialPlan::new();
    for scheme in [Scheme::JustInTime, Scheme::Greedy] {
        plan.push_point(&single, base.clone().with_scheme(scheme));
    }
    let mut traces = plan.run_map(config.jobs, |_, output| output.fidelity_series());

    let mut out = Fig5Output {
        jit: Series::new("MQ-JIT"),
        greedy: Series::new("MQ-GP"),
    };
    let greedy_trace = traces.pop().and_then(|mut t| t.pop()).unwrap_or_default();
    let jit_trace = traces.pop().and_then(|mut t| t.pop()).unwrap_or_default();
    for (trace, series) in [(jit_trace, &mut out.jit), (greedy_trace, &mut out.greedy)] {
        for (k, fidelity) in trace {
            series.push(k as f64, fidelity);
        }
    }
    out
}

/// Runs the two schemes and renders the series plus steady-state means as
/// JSON.
pub fn run_json(config: &ExperimentConfig) -> JsonValue {
    let out = run(config);
    JsonValue::object()
        .with("jit", out.jit.to_json())
        .with("greedy", out.greedy.to_json())
        .with("jit_steady_state_mean", out.jit_steady_state_mean(10))
        .with("greedy_steady_state_mean", out.greedy_steady_state_mean(10))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_mean_skips_warmup() {
        let mut s = Series::new("x");
        s.push(1.0, 0.0);
        s.push(2.0, 0.0);
        s.push(3.0, 1.0);
        s.push(4.0, 1.0);
        assert_eq!(steady_mean(&s, 2), 1.0);
        assert_eq!(steady_mean(&s, 10), 0.0);
    }
}
