//! Figure 5 — dynamic behaviour: per-period data fidelity of MQ-JIT and
//! MQ-GP at each pickup point.
//!
//! Paper setting: sleep period 15 s, walking user (3–5 m/s), oracle motion
//! profile, 200 query periods. MQ-JIT reaches 100 % fidelity after an initial
//! warm-up of about five periods; MQ-GP shows large variance caused by
//! congestion losses.

use crate::{run_scenario, ExperimentConfig};
use mobiquery::config::Scheme;
use wsn_metrics::Series;
use wsn_mobility::ProfileSource;

/// Per-scheme fidelity time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Output {
    /// Per-period fidelity of just-in-time prefetching.
    pub jit: Series,
    /// Per-period fidelity of greedy prefetching.
    pub greedy: Series,
}

impl Fig5Output {
    /// Mean fidelity of MQ-JIT after the warm-up phase (periods > `skip`).
    pub fn jit_steady_state_mean(&self, skip: usize) -> f64 {
        steady_mean(&self.jit, skip)
    }

    /// Mean fidelity of MQ-GP after the warm-up phase.
    pub fn greedy_steady_state_mean(&self, skip: usize) -> f64 {
        steady_mean(&self.greedy, skip)
    }
}

fn steady_mean(series: &Series, skip: usize) -> f64 {
    let pts: Vec<f64> = series.points().iter().skip(skip).map(|&(_, y)| y).collect();
    if pts.is_empty() {
        0.0
    } else {
        pts.iter().sum::<f64>() / pts.len() as f64
    }
}

/// Runs the two schemes and returns their fidelity series.
pub fn run(config: &ExperimentConfig) -> Fig5Output {
    let base = config
        .base_scenario()
        .with_sleep_period_secs(15.0)
        .with_speed_range(3.0, 5.0)
        .with_profile_source(ProfileSource::Oracle)
        .with_seed(config.base_seed);

    let mut out = Fig5Output {
        jit: Series::new("MQ-JIT"),
        greedy: Series::new("MQ-GP"),
    };
    for (scheme, series) in [
        (Scheme::JustInTime, &mut out.jit),
        (Scheme::Greedy, &mut out.greedy),
    ] {
        let result = run_scenario(base.clone().with_scheme(scheme));
        for (k, fidelity) in result.fidelity_series() {
            series.push(k as f64, fidelity);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_mean_skips_warmup() {
        let mut s = Series::new("x");
        s.push(1.0, 0.0);
        s.push(2.0, 0.0);
        s.push(3.0, 1.0);
        s.push(4.0, 1.0);
        assert_eq!(steady_mean(&s, 2), 1.0);
        assert_eq!(steady_mean(&s, 10), 0.0);
    }
}
