//! Figure 8 — average power consumption per sleeping (duty-cycled) node
//! versus the sleep period, for CCP alone and for MQ-JIT with early and late
//! motion profiles.
//!
//! Paper setting: the user changes motion every 70 s over a 400 s run; the
//! radio power profile is 1400/1000/830/130 mW (tx/rx/idle/sleep). Power
//! falls as the sleep period grows; MobiQuery adds less than 0.05 W over CCP,
//! and a late profile (`Ta = −3 s`) costs slightly *less* energy than an
//! early one (`Ta = 9 s`) because warm-up periods wake fewer nodes.

use crate::{run_replicated, ExperimentConfig};
use mobiquery::config::Scheme;
use wsn_metrics::Table;

/// The sleep periods swept, in seconds.
pub fn sleep_periods(config: &ExperimentConfig) -> Vec<f64> {
    if config.quick {
        vec![3.0, 15.0]
    } else {
        vec![3.0, 9.0, 15.0]
    }
}

/// One data point: per-sleeping-node power for a sleep period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// Sleep period in seconds.
    pub sleep_period_s: f64,
    /// CCP baseline power (no query), in watts.
    pub ccp_power_w: f64,
    /// MQ-JIT with a late profile (`Ta = −3 s`), in watts.
    pub jit_late_power_w: f64,
    /// MQ-JIT with an early profile (`Ta = 9 s`), in watts.
    pub jit_early_power_w: f64,
}

/// Runs the sweep and returns every data point.
pub fn run_points(config: &ExperimentConfig) -> Vec<Fig8Point> {
    let mut points = Vec::new();
    for &sleep in &sleep_periods(config) {
        let base = config
            .base_scenario()
            .with_sleep_period_secs(sleep)
            .with_speed_range(3.0, 5.0)
            .with_motion_change_interval(70.0)
            .with_duration_secs(if config.quick { 120.0 } else { 400.0 })
            .with_scheme(Scheme::JustInTime);

        let late = base.clone().with_planner_advance(-3.0);
        let early = base.clone().with_planner_advance(9.0);
        let late_power = run_replicated(config, &late, |o| o.mean_sleeping_power_w);
        let early_power = run_replicated(config, &early, |o| o.mean_sleeping_power_w);
        // The CCP baseline (no query) is the duty-cycle-only power, reported
        // by every run; take it from the late-profile run.
        let ccp_power = run_replicated(config, &late, |o| o.baseline_sleeping_power_w);

        points.push(Fig8Point {
            sleep_period_s: sleep,
            ccp_power_w: ccp_power.mean(),
            jit_late_power_w: late_power.mean(),
            jit_early_power_w: early_power.mean(),
        });
    }
    points
}

/// Runs the sweep and formats it as a table (rows: configuration, columns:
/// sleep period).
pub fn run(config: &ExperimentConfig) -> Table {
    let sleeps = sleep_periods(config);
    let points = run_points(config);
    let mut columns = vec!["configuration".to_string()];
    columns.extend(sleeps.iter().map(|s| format!("sleep={s}s")));
    let mut table = Table::new("Figure 8: power consumption per sleeping node (W)", columns);
    let row = |f: &dyn Fn(&Fig8Point) -> f64| -> Vec<f64> {
        sleeps
            .iter()
            .map(|&s| {
                points
                    .iter()
                    .find(|p| p.sleep_period_s == s)
                    .map(f)
                    .unwrap_or(f64::NAN)
            })
            .collect()
    };
    table.push_labeled_row("CCP (no query)", &row(&|p| p.ccp_power_w));
    table.push_labeled_row("MQ-JIT, Ta=-3s", &row(&|p| p.jit_late_power_w));
    table.push_labeled_row("MQ-JIT, Ta=9s", &row(&|p| p.jit_early_power_w));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_requested_periods() {
        assert_eq!(
            sleep_periods(&ExperimentConfig::full()),
            vec![3.0, 9.0, 15.0]
        );
        assert_eq!(sleep_periods(&ExperimentConfig::quick()).len(), 2);
    }
}
