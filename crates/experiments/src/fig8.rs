//! Figure 8 — average power consumption per sleeping (duty-cycled) node
//! versus the sleep period, for CCP alone and for MQ-JIT with early and late
//! motion profiles.
//!
//! Paper setting: the user changes motion every 70 s over a 400 s run; the
//! radio power profile is 1400/1000/830/130 mW (tx/rx/idle/sleep). Power
//! falls as the sleep period grows; MobiQuery adds less than 0.05 W over CCP,
//! and a late profile (`Ta = −3 s`) costs slightly *less* energy than an
//! early one (`Ta = 9 s`) because warm-up periods wake fewer nodes.

use crate::runner::TrialPlan;
use crate::ExperimentConfig;
use mobiquery::config::Scheme;
use wsn_metrics::{JsonValue, Table};
use wsn_sim::stats::Summary;

/// The sleep periods swept, in seconds.
pub fn sleep_periods(config: &ExperimentConfig) -> Vec<f64> {
    if config.quick {
        vec![3.0, 15.0]
    } else {
        vec![3.0, 9.0, 15.0]
    }
}

/// One data point: per-sleeping-node power for a sleep period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// Sleep period in seconds.
    pub sleep_period_s: f64,
    /// CCP baseline power (no query), in watts.
    pub ccp_power_w: f64,
    /// MQ-JIT with a late profile (`Ta = −3 s`), in watts.
    pub jit_late_power_w: f64,
    /// MQ-JIT with an early profile (`Ta = 9 s`), in watts.
    pub jit_early_power_w: f64,
}

/// Runs the sweep (all trials fanned out over `config.jobs` workers) and
/// returns every data point.
///
/// Each sleep period contributes two plan points — a late profile
/// (`Ta = −3 s`) and an early one (`Ta = 9 s`) — and every trial reports both
/// its query power and its duty-cycle-only baseline, so the CCP curve comes
/// from the late-profile runs without simulating them a second time.
pub fn run_points(config: &ExperimentConfig) -> Vec<Fig8Point> {
    let sleeps = sleep_periods(config);
    let mut plan = TrialPlan::new();
    for &sleep in &sleeps {
        let base = config
            .base_scenario()
            .with_sleep_period_secs(sleep)
            .with_speed_range(3.0, 5.0)
            .with_motion_change_interval(70.0)
            .with_duration_secs(if config.quick { 120.0 } else { 400.0 })
            .with_scheme(Scheme::JustInTime);
        plan.push_point(config, base.clone().with_planner_advance(-3.0));
        plan.push_point(config, base.with_planner_advance(9.0));
    }

    let per_point = plan.run_map(config.jobs, |_, o| {
        (o.mean_sleeping_power_w, o.baseline_sleeping_power_w)
    });
    sleeps
        .iter()
        .zip(per_point.chunks_exact(2))
        .map(|(&sleep, pair)| {
            let summarize = |trials: &[(f64, f64)], pick: fn(&(f64, f64)) -> f64| -> Summary {
                trials.iter().map(pick).collect()
            };
            Fig8Point {
                sleep_period_s: sleep,
                ccp_power_w: summarize(&pair[0], |t| t.1).mean(),
                jit_late_power_w: summarize(&pair[0], |t| t.0).mean(),
                jit_early_power_w: summarize(&pair[1], |t| t.0).mean(),
            }
        })
        .collect()
}

/// Runs the sweep and formats it as a table (rows: configuration, columns:
/// sleep period).
pub fn run(config: &ExperimentConfig) -> Table {
    table_from_points(config, &run_points(config))
}

/// Runs the sweep and renders it as JSON: the formatted table plus every raw
/// data point at full precision.
pub fn run_json(config: &ExperimentConfig) -> JsonValue {
    let computed = run_points(config);
    let points: Vec<JsonValue> = computed
        .iter()
        .map(|p| {
            JsonValue::object()
                .with("sleep_period_s", p.sleep_period_s)
                .with("ccp_power_w", p.ccp_power_w)
                .with("jit_late_power_w", p.jit_late_power_w)
                .with("jit_early_power_w", p.jit_early_power_w)
        })
        .collect();
    table_from_points(config, &computed)
        .to_json()
        .with("points", points)
}

/// Formats already-computed points as the Figure 8 table.
fn table_from_points(config: &ExperimentConfig, points: &[Fig8Point]) -> Table {
    let sleeps = sleep_periods(config);
    let mut columns = vec!["configuration".to_string()];
    columns.extend(sleeps.iter().map(|s| format!("sleep={s}s")));
    let mut table = Table::new("Figure 8: power consumption per sleeping node (W)", columns);
    let row = |f: &dyn Fn(&Fig8Point) -> f64| -> Vec<f64> {
        sleeps
            .iter()
            .map(|&s| {
                points
                    .iter()
                    .find(|p| p.sleep_period_s == s)
                    .map(f)
                    .unwrap_or(f64::NAN)
            })
            .collect()
    };
    table.push_labeled_row("CCP (no query)", &row(&|p| p.ccp_power_w));
    table.push_labeled_row("MQ-JIT, Ta=-3s", &row(&|p| p.jit_late_power_w));
    table.push_labeled_row("MQ-JIT, Ta=9s", &row(&|p| p.jit_early_power_w));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_requested_periods() {
        assert_eq!(
            sleep_periods(&ExperimentConfig::full()),
            vec![3.0, 9.0, 15.0]
        );
        assert_eq!(sleep_periods(&ExperimentConfig::quick()).len(), 2);
    }
}
