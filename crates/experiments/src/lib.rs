//! # mobiquery-experiments
//!
//! The experiment harness that regenerates every figure of the MobiQuery
//! paper's evaluation (Section 6) and the worked analytical examples of
//! Section 5.
//!
//! Each `figN` module exposes a `run(&ExperimentConfig)` function returning
//! the corresponding table or series; the `repro` binary prints them, the
//! Criterion benches time them, and the integration tests assert the
//! qualitative shapes (who wins, how trends go) that the paper reports.
//!
//! Experiments come in two sizes:
//!
//! * **full** — the paper's settings (200 nodes, 450 m field, 400–500 s
//!   runs, several topologies per point); minutes of CPU per figure.
//! * **quick** — a scaled-down variant (fewer nodes, shorter runs, fewer
//!   parameter points) that preserves the qualitative comparisons; used by
//!   benches and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis_tables;
pub mod churn;
pub mod eventq;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod multiuser;
pub mod resilience;
pub mod runner;
pub mod scale;

use mobiquery::config::Scenario;
use mobiquery::sim::{Simulation, SimulationOutput};
use runner::TrialPlan;
use wsn_sim::stats::Summary;

/// Controls how heavy each experiment is and how many worker threads run it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Run the paper-scale version (`false`) or the scaled-down quick
    /// version (`true`).
    pub quick: bool,
    /// Number of independent topologies/runs averaged per data point.
    pub runs: u64,
    /// Base RNG seed; trial `r` of point `p` uses
    /// [`runner::trial_seed`]`(base_seed, p, r)`.
    pub base_seed: u64,
    /// Worker threads for cross-trial fan-out (see [`wsn_sim::pool`]).
    /// Results do not depend on this; only wall-clock does.
    pub jobs: usize,
    /// Largest fleet size of the [`multiuser`] sweep (`--users`); the sweep
    /// ladders up to it in powers of two.
    pub users: usize,
}

impl ExperimentConfig {
    /// The paper-scale configuration (3 runs per point, as in Figure 4).
    pub fn full() -> Self {
        ExperimentConfig {
            quick: false,
            runs: 3,
            base_seed: 42,
            jobs: 1,
            users: 64,
        }
    }

    /// The scaled-down configuration used by benches and CI.
    pub fn quick() -> Self {
        ExperimentConfig {
            quick: true,
            runs: 1,
            base_seed: 42,
            jobs: 1,
            users: 8,
        }
    }

    /// Returns the configuration with `jobs` worker threads for trial
    /// fan-out. Pass [`wsn_sim::pool::available_jobs`] to use every core.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Returns the configuration with the multi-user sweep laddering up to
    /// `users` concurrent users.
    pub fn with_users(mut self, users: usize) -> Self {
        self.users = users.max(1);
        self
    }

    /// The base scenario for this configuration: the paper's Section 6.1
    /// settings, or a smaller field/population/duration in quick mode.
    pub fn base_scenario(&self) -> Scenario {
        if self.quick {
            Scenario::paper_default()
                .with_node_count(90)
                .with_region_side(300.0)
                .with_duration_secs(80.0)
        } else {
            Scenario::paper_default()
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::full()
    }
}

/// Runs one scenario and returns its output.
///
/// # Panics
///
/// Panics if the scenario fails validation — experiment code constructs its
/// scenarios from [`ExperimentConfig::base_scenario`], so a failure here is a
/// programming error, not user input.
pub fn run_scenario(scenario: Scenario) -> SimulationOutput {
    Simulation::new(scenario)
        .expect("experiment scenarios are valid by construction")
        .run()
}

/// Runs `config.runs` independent repetitions of `scenario` (differing only
/// in seed) and returns the summary of the value extracted by `metric`.
///
/// This is a one-point [`TrialPlan`]: the replicates fan out over
/// `config.jobs` workers and the seeds are `runner::trial_seed(base_seed, 0,
/// r)`. Figure sweeps should build a full plan instead so *all* their trials
/// share one fan-out.
pub fn run_replicated(
    config: &ExperimentConfig,
    scenario: &Scenario,
    metric: impl Fn(&SimulationOutput) -> f64 + Sync,
) -> Summary {
    let mut plan = TrialPlan::new();
    plan.push_point(config, scenario.clone());
    plan.run_summaries(config.jobs, metric)
        .pop()
        .expect("one point in, one summary out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiquery::config::Scheme;

    #[test]
    fn quick_config_shrinks_the_scenario() {
        let quick = ExperimentConfig::quick().base_scenario();
        let full = ExperimentConfig::full().base_scenario();
        assert!(quick.node_count < full.node_count);
        assert!(quick.motion.duration < full.motion.duration);
    }

    #[test]
    fn replicated_runs_average_the_metric() {
        let config = ExperimentConfig {
            runs: 2,
            base_seed: 7,
            ..ExperimentConfig::quick()
        };
        let scenario = config
            .base_scenario()
            .with_duration_secs(30.0)
            .with_scheme(Scheme::JustInTime);
        let summary = run_replicated(&config, &scenario, |o| o.mean_fidelity);
        assert_eq!(summary.count(), 2);
        assert!(summary.mean() > 0.0 && summary.mean() <= 1.0);
    }
}
