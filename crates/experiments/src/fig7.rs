//! Figure 7 — success ratio of MQ-JIT versus the interval between unexpected
//! motion changes, under different advance times and GPS location errors.
//!
//! Paper setting: sleep period 9 s, walking user; the interval between motion
//! changes varies from 42 s to 210 s. Curves: `Ta = 6 s`, `Ta = 0 s`,
//! `Ta = −8 s` (late planner), and the history-based predictor (δ = 8 s,
//! hence `Ta = −8 s`) with GPS errors of 5 m and 10 m. The success ratio
//! grows with the interval; larger errors cost a few per cent.

use crate::runner::TrialPlan;
use crate::ExperimentConfig;
use mobiquery::config::{Scenario, Scheme};
use wsn_metrics::{JsonValue, Table};

/// The motion-change intervals swept, in seconds.
pub fn change_intervals(config: &ExperimentConfig) -> Vec<f64> {
    if config.quick {
        vec![42.0, 105.0]
    } else {
        vec![42.0, 52.0, 70.0, 105.0, 210.0]
    }
}

/// One curve of the figure: how the motion profile is produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fig7Variant {
    /// Planner profile delivered `Ta` seconds before each change.
    Planner {
        /// Advance time in seconds (may be negative).
        advance_s: f64,
    },
    /// History-based predictor with the given GPS error bound (δ = 8 s).
    Predictor {
        /// Maximum GPS location error in metres.
        gps_error_m: f64,
    },
}

impl Fig7Variant {
    /// Label used in the output table (matches the paper's legend).
    pub fn label(&self) -> String {
        match self {
            Fig7Variant::Planner { advance_s } => format!("TAdv={advance_s}s"),
            Fig7Variant::Predictor { gps_error_m } => {
                format!("TAdv=-8s, err={gps_error_m}m")
            }
        }
    }

    fn apply(&self, scenario: Scenario) -> Scenario {
        match self {
            Fig7Variant::Planner { advance_s } => scenario.with_planner_advance(*advance_s),
            Fig7Variant::Predictor { gps_error_m } => scenario.with_predictor(8.0, *gps_error_m),
        }
    }
}

/// The curves of the figure.
pub fn variants(config: &ExperimentConfig) -> Vec<Fig7Variant> {
    if config.quick {
        vec![
            Fig7Variant::Planner { advance_s: 6.0 },
            Fig7Variant::Predictor { gps_error_m: 10.0 },
        ]
    } else {
        vec![
            Fig7Variant::Planner { advance_s: 6.0 },
            Fig7Variant::Planner { advance_s: 0.0 },
            Fig7Variant::Planner { advance_s: -8.0 },
            Fig7Variant::Predictor { gps_error_m: 5.0 },
            Fig7Variant::Predictor { gps_error_m: 10.0 },
        ]
    }
}

/// One data point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Point {
    /// The curve this point belongs to.
    pub variant: Fig7Variant,
    /// Interval between motion changes, in seconds.
    pub change_interval_s: f64,
    /// Mean success ratio.
    pub success_ratio: f64,
}

/// Runs the sweep (all trials fanned out over `config.jobs` workers) and
/// returns every data point.
pub fn run_points(config: &ExperimentConfig) -> Vec<Fig7Point> {
    let mut plan = TrialPlan::new();
    let mut coords = Vec::new();
    for variant in variants(config) {
        for &interval in &change_intervals(config) {
            let scenario = variant.apply(
                config
                    .base_scenario()
                    .with_sleep_period_secs(9.0)
                    .with_speed_range(3.0, 5.0)
                    .with_motion_change_interval(interval)
                    .with_duration_secs(if config.quick { 130.0 } else { 500.0 })
                    .with_scheme(Scheme::JustInTime),
            );
            plan.push_point(config, scenario);
            coords.push((variant, interval));
        }
    }
    let summaries = plan.run_summaries(config.jobs, |o| o.success_ratio);
    coords
        .into_iter()
        .zip(summaries)
        .map(|((variant, change_interval_s), summary)| Fig7Point {
            variant,
            change_interval_s,
            success_ratio: summary.mean(),
        })
        .collect()
}

/// Runs the sweep and formats it as a table (rows: variant, columns: interval).
pub fn run(config: &ExperimentConfig) -> Table {
    table_from_points(config, &run_points(config))
}

/// Runs the sweep and renders it as JSON: the formatted table plus every raw
/// data point at full precision.
pub fn run_json(config: &ExperimentConfig) -> JsonValue {
    let computed = run_points(config);
    let points: Vec<JsonValue> = computed
        .iter()
        .map(|p| {
            JsonValue::object()
                .with("variant", p.variant.label())
                .with("change_interval_s", p.change_interval_s)
                .with("success_ratio", p.success_ratio)
        })
        .collect();
    table_from_points(config, &computed)
        .to_json()
        .with("points", points)
}

/// Formats already-computed points as the Figure 7 table.
fn table_from_points(config: &ExperimentConfig, points: &[Fig7Point]) -> Table {
    let intervals = change_intervals(config);
    let mut columns = vec!["profile source".to_string()];
    columns.extend(intervals.iter().map(|i| format!("interval={i}s")));
    let mut table = Table::new(
        "Figure 7: MQ-JIT success ratio vs motion-change interval (sleep 9 s)",
        columns,
    );
    for variant in variants(config) {
        let values: Vec<f64> = intervals
            .iter()
            .map(|&i| {
                points
                    .iter()
                    .find(|p| p.variant == variant && p.change_interval_s == i)
                    .map(|p| p.success_ratio)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        table.push_labeled_row(variant.label(), &values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels_are_distinct() {
        let config = ExperimentConfig::full();
        let labels: Vec<String> = variants(&config).iter().map(|v| v.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
