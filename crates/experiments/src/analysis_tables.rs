//! The worked analytical examples of Section 5, reproduced as tables.
//!
//! * the `vprfh ≈ 469 mph` prefetch-speed estimate (Section 5.2),
//! * the storage-cost example — 4 trees ahead under JIT versus ~58 under
//!   greedy prefetching (Equations 11–13),
//! * the contention example — about 4 interfering trees under JIT versus 35
//!   under greedy, and the speed threshold `v* ≈ 131 mph` (Section 5.4),
//! * the warm-up bound of Equation 16 for a range of advance times.

use mobiquery::analysis::{
    contention_speed_threshold_mps, interference_length_greedy, interference_length_jit,
    interference_length_jit_n, paper_prefetch_speed_mph, prefetch_length_greedy,
    prefetch_length_jit, shared_interference_length_jit, storage_crossover_lifetime_s,
    warmup_interval_approx_s, warmup_interval_s, AnalysisParams,
};
use wsn_geom::mps_to_mph;
use wsn_metrics::{JsonValue, Table};
use wsn_sim::pool;

/// The Section 5.2 storage-cost example as a table.
pub fn storage_table() -> Table {
    let p = AnalysisParams::storage_example();
    let mut t = Table::with_columns(
        "Section 5.2: worst-case prefetch length (storage cost)",
        &["quantity", "value"],
    );
    t.push_row(vec![
        "prefetch speed vprfh (mph)".into(),
        format!("{:.1}", paper_prefetch_speed_mph()),
    ]);
    t.push_row(vec![
        "PL_jit (Eq. 12)".into(),
        prefetch_length_jit(&p).to_string(),
    ]);
    t.push_row(vec![
        "PL_gp (Eq. 11)".into(),
        prefetch_length_greedy(&p).to_string(),
    ]);
    t.push_row(vec![
        "storage ratio gp/jit".into(),
        format!(
            "{:.1}",
            prefetch_length_greedy(&p) as f64 / prefetch_length_jit(&p) as f64
        ),
    ]);
    t.push_row(vec![
        "crossover lifetime Td (Eq. 13, s)".into(),
        format!("{:.1}", storage_crossover_lifetime_s(&p)),
    ]);
    t
}

/// The Section 5.4 contention example as a table.
pub fn contention_table() -> Table {
    let p = AnalysisParams::contention_example();
    let mut t = Table::with_columns(
        "Section 5.4: interference length (network contention)",
        &["quantity", "value"],
    );
    t.push_row(vec![
        "M_jit (interfering trees, JIT)".into(),
        interference_length_jit(&p).to_string(),
    ]);
    t.push_row(vec![
        "M_gp (interfering trees, greedy)".into(),
        interference_length_greedy(&p).to_string(),
    ]);
    t.push_row(vec![
        "v* speed threshold (mph)".into(),
        format!("{:.1}", mps_to_mph(contention_speed_threshold_mps(&p))),
    ]);
    t
}

/// The Equation 16 warm-up bound for a sweep of advance times, using the
/// paper's evaluation parameters (Tperiod 2 s, Tfresh 1 s, sleep 9 s).
pub fn warmup_table() -> Table {
    let p = AnalysisParams {
        period_s: 2.0,
        freshness_s: 1.0,
        sleep_s: 9.0,
        lifetime_s: 500.0,
        user_speed_mps: 4.0,
        prefetch_speed_mps: 200.0,
        query_radius_m: 150.0,
        comm_range_m: 105.0,
    };
    let mut t = Table::with_columns(
        "Section 5.3: warm-up interval bound (Eq. 16), sleep 9 s",
        &["advance time Ta (s)", "Tw exact (s)", "Tw approx (s)"],
    );
    for ta in [-8.0, -6.0, -3.0, 0.0, 6.0, 12.0, 18.0] {
        t.push_row(vec![
            format!("{ta}"),
            format!("{:.1}", warmup_interval_s(&p, ta)),
            format!("{:.1}", warmup_interval_approx_s(&p, ta)),
        ]);
    }
    t
}

/// The N-user extension of the Section 5.4 contention example: interfering
/// JIT trees for a fleet of co-located users, one tree per user (naive)
/// versus multiplexed through the shared tree cache.
pub fn multiuser_contention_table() -> Table {
    let p = AnalysisParams::contention_example();
    let mut t = Table::with_columns(
        "Section 5.4 (N users): interfering JIT trees, naive vs shared cache",
        &["users", "M_jit naive", "M_jit shared"],
    );
    for n in [1u64, 10, 100] {
        t.push_row(vec![
            n.to_string(),
            interference_length_jit_n(&p, n).to_string(),
            shared_interference_length_jit(&p).to_string(),
        ]);
    }
    t
}

/// All analytical tables, in presentation order.
pub fn run() -> Vec<Table> {
    run_parallel(1)
}

/// All analytical tables, computed on up to `jobs` workers.
///
/// These are closed-form (no simulation), so the fan-out is symbolic at
/// today's table count — but it keeps the analysis target on the same
/// execution path as the figure sweeps, and the output is independent of
/// `jobs` by the pool's input-order guarantee.
pub fn run_parallel(jobs: usize) -> Vec<Table> {
    pool::run_indexed(jobs, vec![0, 1, 2, 3], |_, which| match which {
        0 => storage_table(),
        1 => contention_table(),
        2 => multiuser_contention_table(),
        _ => warmup_table(),
    })
}

/// All analytical tables rendered as a JSON array, in presentation order.
pub fn run_json(jobs: usize) -> JsonValue {
    JsonValue::Array(run_parallel(jobs).iter().map(Table::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_contain_the_papers_headline_numbers() {
        let storage = storage_table().to_csv();
        assert!(storage.contains("PL_jit (Eq. 12),4"));
        let contention = contention_table().to_csv();
        // v* ≈ 131 mph appears in the table.
        assert!(contention.contains("v*"));
        assert_eq!(run().len(), 4);
    }

    #[test]
    fn multiuser_contention_table_pins_the_shared_advantage() {
        let csv = multiuser_contention_table().to_csv();
        // Naive interference scales with the fleet; the shared cache stays
        // at the single-user Mjit = 3 whatever n is.
        assert!(csv.contains("100,300,3"), "unexpected table: {csv}");
        assert!(csv.contains("1,3,3"));
    }

    #[test]
    fn warmup_table_has_a_row_per_advance_time() {
        assert_eq!(warmup_table().row_count(), 7);
    }
}
