//! The `--scale` sweep: does the per-query hot path stay flat as the
//! deployment grows from hundreds to tens of thousands of nodes?
//!
//! Two measurements per deployment size, at constant node density (the
//! paper's 200 nodes per 450 m × 450 m field):
//!
//! * **End-to-end wall-clock** of a full simulation run (setup and event
//!   loop timed separately, with setup further broken down into
//!   `neighbor_ms` / `ccp_ms` / `plan_ms`) for both the just-in-time
//!   prefetching scheme and the No-Prefetching baseline — the numbers the
//!   spatial-index and coverage-raster work are meant to keep from growing
//!   superlinearly.
//! * **A nearest-backbone micro-comparison**: the same lookup served by a
//!   linear scan over every backbone node (the pre-index implementation)
//!   versus the backbone [`SpatialGrid`]'s expanding-ring search, reported
//!   as ns/lookup and a speedup factor.
//!
//! Results feed the `scale` section of the `mobiquery-repro/bench/v3`
//! document (`BENCH_repro.json`). Timings are machine-dependent by nature;
//! unlike `--format json` output they are a trajectory snapshot, not a
//! determinism artifact.

use mobiquery::config::{Scenario, Scheme};
use mobiquery::sim::Simulation;
use std::hint::black_box;
use std::time::Instant;
use wsn_geom::{Point, SpatialGrid};
use wsn_metrics::JsonValue;
use wsn_sim::SimRng;

/// Density-preserving scenario for a deployment of `nodes` nodes: the region
/// side grows with √nodes so radio degree, backbone fraction and query-area
/// population stay at the paper's values while the network scales.
pub fn scale_scenario(nodes: usize, scheme: Scheme, seed: u64) -> Scenario {
    let side = 450.0 * (nodes as f64 / 200.0).sqrt();
    Scenario::paper_default()
        .with_node_count(nodes)
        .with_region_side(side)
        .with_duration_secs(60.0)
        .with_scheme(scheme)
        .with_seed(seed)
}

/// Wall-clock of one scheme at one scale: build and run split out — with the
/// setup side broken down into its phases — plus the event count as a sanity
/// anchor that the run actually did protocol work. The run phase is
/// best-of-3 (the event loop is deterministic, so repeats do identical work
/// and the minimum is the least-noisy estimate — same discipline as the
/// lookup micro-comparison below); setup is timed once, its regression
/// bound has order-of-magnitude headroom.
fn timed_run(nodes: usize, scheme: Scheme, seed: u64) -> JsonValue {
    let scenario = scale_scenario(nodes, scheme, seed);
    let start = Instant::now();
    let sim = Simulation::new(scenario.clone()).expect("scale scenarios are valid by construction");
    let setup_ms = start.elapsed().as_secs_f64() * 1e3;
    let phases = sim.setup_breakdown();
    let start = Instant::now();
    let mut out = sim.run();
    let mut run_ms = start.elapsed().as_secs_f64() * 1e3;
    for _ in 0..2 {
        let sim = Simulation::new(scenario.clone()).expect("scenario validated above");
        let start = Instant::now();
        let repeat = sim.run();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        if elapsed < run_ms {
            run_ms = elapsed;
            out = repeat;
        }
    }
    JsonValue::object()
        .with("setup_ms", round2(setup_ms))
        .with(
            "setup",
            JsonValue::object()
                .with("neighbor_ms", round2(phases.neighbor_ms))
                .with("ccp_ms", round2(phases.ccp_ms))
                .with("plan_ms", round2(phases.plan_ms)),
        )
        .with("run_ms", round2(run_ms))
        .with("events", out.events_processed)
        .with(
            "events_per_sec",
            round2(out.events_processed as f64 / (run_ms / 1e3).max(1e-9)),
        )
        .with("trees_built", out.trees_built)
        .with("backbone", out.backbone_count)
}

/// Synthetic deployment for the lookup micro-comparison: uniform positions
/// at paper density with every third node in the "backbone" (about the
/// fraction CCP elects), which is all the lookup primitives care about.
fn lookup_fixture(nodes: usize, seed: u64) -> (Vec<Point>, Vec<usize>, SpatialGrid, Vec<Point>) {
    let side = 450.0 * (nodes as f64 / 200.0).sqrt();
    let mut rng = SimRng::seed_from_u64(seed);
    let positions: Vec<Point> = (0..nodes)
        .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
        .collect();
    let backbone: Vec<usize> = (0..nodes).step_by(3).collect();
    let region = wsn_geom::Rect::square(side);
    let mut grid = SpatialGrid::new(region, 105.0).expect("positive cell size");
    for &i in &backbone {
        grid.insert(i, positions[i]);
    }
    let probes: Vec<Point> = (0..128)
        .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
        .collect();
    (positions, backbone, grid, probes)
}

/// Best-of-3 mean ns per call of `f` over all probes.
fn time_ns_per_call(probes: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / probes as f64);
    }
    best
}

/// The nearest-backbone lookup, linear scan vs spatial grid, at one scale.
fn lookup_comparison(nodes: usize, seed: u64) -> JsonValue {
    let (positions, backbone, grid, probes) = lookup_fixture(nodes, seed);
    let linear_ns = time_ns_per_call(probes.len(), || {
        for &p in &probes {
            let found = backbone
                .iter()
                .min_by(|&&a, &&b| {
                    positions[a]
                        .distance_sq_to(p)
                        .total_cmp(&positions[b].distance_sq_to(p))
                })
                .copied();
            black_box(found);
        }
    });
    let grid_ns = time_ns_per_call(probes.len(), || {
        for &p in &probes {
            black_box(grid.nearest(p));
        }
    });
    JsonValue::object()
        .with("linear_ns", round2(linear_ns))
        .with("grid_ns", round2(grid_ns))
        .with("speedup", round2(linear_ns / grid_ns.max(1e-9)))
}

/// Runs the sweep over `scales` deployment sizes and returns the `scale`
/// array of the bench/v3 document.
pub fn run(scales: &[usize], base_seed: u64) -> JsonValue {
    let mut entries = Vec::new();
    for &nodes in scales {
        let side = 450.0 * (nodes as f64 / 200.0).sqrt();
        eprintln!("scale {nodes}: running jit + np + lookup micro-compare");
        entries.push(
            JsonValue::object()
                .with("nodes", nodes)
                .with("region_side_m", round2(side))
                .with("jit", timed_run(nodes, Scheme::JustInTime, base_seed))
                .with("np", timed_run(nodes, Scheme::None, base_seed))
                .with("nearest_backbone", lookup_comparison(nodes, base_seed)),
        );
    }
    JsonValue::Array(entries)
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_scenario_preserves_density() {
        let small = scale_scenario(200, Scheme::JustInTime, 1);
        let big = scale_scenario(800, Scheme::JustInTime, 1);
        let density = |s: &Scenario| s.node_count as f64 / (s.region_side_m * s.region_side_m);
        assert!((density(&small) - density(&big)).abs() < 1e-12);
        assert_eq!(big.region_side_m, 900.0);
    }

    #[test]
    fn sweep_produces_one_entry_per_scale() {
        let doc = run(&[200], 42);
        let JsonValue::Array(entries) = doc else {
            panic!("scale sweep must be an array");
        };
        assert_eq!(entries.len(), 1);
        let text = entries[0].to_string();
        assert!(text.contains("\"jit\""));
        assert!(text.contains("\"np\""));
        assert!(text.contains("\"nearest_backbone\""));
        // The bench/v3 setup breakdown must be present for every scheme.
        for field in ["\"setup\"", "\"neighbor_ms\"", "\"ccp_ms\"", "\"plan_ms\""] {
            assert_eq!(
                text.matches(field).count(),
                2,
                "{field} must appear once per scheme"
            );
        }
    }
}
