//! The node-churn sweep: at 10⁴–10⁶ nodes, does incremental backbone repair
//! keep up with churn that would make full re-election the bottleneck?
//!
//! Every trial runs the stepped engine with a seed-derived churn schedule
//! (deaths and joins at every interior period boundary) and, at the end,
//! runs one full priority re-election over the surviving deployment and
//! asserts the repaired backbone is **identical** — the repair ≡ re-election
//! equivalence check rides inside the experiment, in the style of the
//! multi-user sweep's shared-vs-naive log equality. Below
//! [`VERIFY_MAX_NODES`] the engine additionally cross-checks every single
//! batch (`ChurnConfig::verify`).
//!
//! Deterministic outputs (`--format json churn`) deliberately exclude every
//! wall-clock field so the bytes are identical for every `--jobs` setting;
//! the `--bench` section keeps the timings (repair vs full election) as a
//! trajectory snapshot.

use crate::runner::trial_seed;
use crate::scale::scale_scenario;
use crate::ExperimentConfig;
use mobiquery::config::Scheme;
use mobiquery::sim::{ChurnConfig, QuerySet, SteppedSim, TreeSharing};
use std::time::Instant;
use wsn_metrics::{ChurnSummary, JsonValue, Table};
use wsn_sim::pool;

/// Largest deployment whose churn runs cross-check *every batch* against a
/// full re-election. Above this, per-batch verification would dominate the
/// run (it is exactly the cost the repair exists to avoid), so only the
/// end-of-run equivalence assertion remains.
pub const VERIFY_MAX_NODES: usize = 200_000;

/// One churn trial: one deployment size at one churn rate, walked to the
/// end. All fields except the `*_ms` timings are deterministic in
/// `(nodes, rate, users, seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPoint {
    /// Deployment size of the trial.
    pub nodes: usize,
    /// Per-boundary churn rate (fraction of alive nodes killed and joined).
    pub rate: f64,
    /// Fleet size sharing the service during the walk.
    pub users: usize,
    /// Seed the trial ran under.
    pub seed: u64,
    /// Churn batches applied (one per interior boundary).
    pub batches: usize,
    /// Total deaths across the walk (= total joins).
    pub deaths: usize,
    /// Candidate nodes the repair worklist evaluated.
    pub evaluated: usize,
    /// Sleepers promoted into the backbone by repair.
    pub promoted: usize,
    /// Backbone nodes demoted by repair.
    pub demoted: usize,
    /// Backbone size after the final batch.
    pub backbone_count: usize,
    /// FNV-1a digest of the ascending backbone slot list — the compact
    /// byte-identity token the CI gate compares across `--jobs` settings.
    pub backbone_digest: u64,
    /// `true` when every batch was individually verified against a full
    /// re-election (always the case at or below [`VERIFY_MAX_NODES`]).
    pub per_batch_verified: bool,
    /// Fleet-mean success ratio of the churned service.
    pub mean_success_ratio: f64,
    /// Fleet-mean fidelity of the churned service.
    pub mean_fidelity: f64,
    /// Total incremental-repair wall-clock across the walk.
    pub repair_ms: f64,
    /// Mean repair wall-clock per batch.
    pub mean_repair_ms: f64,
    /// Total churn-application wall-clock (grid/plan/neighbour updates).
    pub apply_ms: f64,
    /// Wall-clock of ONE full priority re-election over the final
    /// deployment — what every batch would cost without incremental repair.
    pub full_ccp_ms: f64,
}

/// FNV-1a over the ascending backbone slots: a stable 64-bit digest that two
/// runs share iff their backbone membership is identical.
pub fn backbone_digest(slots: &[u32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &s in slots {
        for byte in s.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

/// Runs one churn trial to completion and asserts repair ≡ re-election on
/// the final deployment.
///
/// # Panics
///
/// Panics if the repaired backbone differs from a from-scratch priority
/// election over the surviving nodes — the equivalence the whole repair
/// design guarantees.
pub fn run_point(nodes: usize, rate: f64, users: usize, seed: u64) -> ChurnPoint {
    let scenario = scale_scenario(nodes, Scheme::JustInTime, seed);
    let verify = nodes <= VERIFY_MAX_NODES;
    let set = QuerySet::generate(&scenario, users);
    let mut sim = SteppedSim::with_churn(
        scenario,
        set,
        TreeSharing::Shared,
        ChurnConfig { rate, verify },
    )
    .expect("churn scenarios are valid by construction");
    sim.run_to_end()
        .expect("verified churn walks complete (a divergence would error here)");

    let summary = ChurnSummary::from_batches(sim.churn_log());
    let apply_ms: f64 = sim.churn_log().iter().map(|b| b.apply_ms).sum();
    let per_batch_verified =
        !sim.churn_log().is_empty() && sim.churn_log().iter().all(|b| b.verified == Some(true));
    let backbone = sim.backbone_slots();

    let start = Instant::now();
    let reference = sim.reference_reelection();
    let full_ccp_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        backbone, reference,
        "incremental repair diverged from full re-election at {nodes} nodes, rate {rate}, seed {seed}"
    );

    let out = sim.finish();
    ChurnPoint {
        nodes,
        rate,
        users,
        seed,
        batches: summary.batches,
        deaths: summary.deaths,
        evaluated: summary.evaluated,
        promoted: summary.promoted,
        demoted: summary.demoted,
        backbone_count: backbone.len(),
        backbone_digest: backbone_digest(&backbone),
        per_batch_verified,
        mean_success_ratio: out.mean_success_ratio(),
        mean_fidelity: out.mean_fidelity(),
        repair_ms: summary.repair_ms,
        mean_repair_ms: summary.mean_repair_ms,
        apply_ms,
        full_ccp_ms,
    }
}

/// Runs every (scale × replicate) trial — fanned out over `config.jobs`
/// workers — at one churn rate, in deterministic trial order.
pub fn run_points(config: &ExperimentConfig, scales: &[usize], rate: f64) -> Vec<ChurnPoint> {
    let runs = config.runs.max(1);
    let mut trials = Vec::new();
    for (point, &nodes) in scales.iter().enumerate() {
        for replicate in 0..runs {
            trials.push((nodes, trial_seed(config.base_seed, point, replicate)));
        }
    }
    pool::run_indexed(config.jobs, trials, |_, (nodes, seed)| {
        run_point(nodes, rate, config.users, seed)
    })
}

fn table_from_points(points: &[ChurnPoint]) -> Table {
    let mut table = Table::with_columns(
        "Node churn: incremental backbone repair vs full re-election",
        &[
            "nodes",
            "rate",
            "batches",
            "deaths",
            "evaluated",
            "promoted",
            "demoted",
            "backbone",
            "digest",
            "mean success",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.nodes.to_string(),
            format!("{:.4}", p.rate),
            p.batches.to_string(),
            p.deaths.to_string(),
            p.evaluated.to_string(),
            p.promoted.to_string(),
            p.demoted.to_string(),
            p.backbone_count.to_string(),
            format!("{:016x}", p.backbone_digest),
            format!("{:.3}", p.mean_success_ratio),
        ]);
    }
    table
}

/// Runs the sweep and formats it as a table (rows: scale × replicate).
pub fn run(config: &ExperimentConfig, scales: &[usize], rate: f64) -> Table {
    table_from_points(&run_points(config, scales, rate))
}

/// The deterministic JSON view of one point: every field except wall-clock.
fn point_json(p: &ChurnPoint) -> JsonValue {
    JsonValue::object()
        .with("nodes", p.nodes)
        .with("rate", p.rate)
        .with("users", p.users)
        .with("seed", p.seed)
        .with("batches", p.batches)
        .with("deaths", p.deaths)
        .with("joins", p.deaths)
        .with("evaluated", p.evaluated)
        .with("promoted", p.promoted)
        .with("demoted", p.demoted)
        .with("backbone_count", p.backbone_count)
        .with("backbone_digest", format!("{:016x}", p.backbone_digest))
        .with("per_batch_verified", p.per_batch_verified)
        .with("mean_success_ratio", p.mean_success_ratio)
        .with("mean_fidelity", p.mean_fidelity)
}

/// Runs the sweep and renders it as JSON with **no timing fields**, so the
/// bytes are identical for every `--jobs` setting — the CI churn gate
/// `cmp`s this output across job counts.
pub fn run_json(config: &ExperimentConfig, scales: &[usize], rate: f64) -> JsonValue {
    let points = run_points(config, scales, rate);
    table_from_points(&points)
        .to_json()
        .with("rate", rate)
        .with(
            "points",
            points.iter().map(point_json).collect::<Vec<JsonValue>>(),
        )
}

/// The `--bench` churn section: at one deployment size, sweep churn rates
/// and report the incremental-repair cost next to what one full re-election
/// costs — the numbers `check_bench.py` holds the repair path to
/// (`mean_repair_ms ≪ full_ccp_ms` at low rates and large scales).
pub fn bench_sweep(nodes: usize, rates: &[f64], users: usize, base_seed: u64) -> JsonValue {
    let mut entries = Vec::new();
    for (point, &rate) in rates.iter().enumerate() {
        eprintln!("churn bench: {nodes} nodes at rate {rate}, repair vs full election");
        let p = run_point(nodes, rate, users, trial_seed(base_seed, point, 0));
        entries.push(
            JsonValue::object()
                .with("nodes", p.nodes)
                .with("rate", p.rate)
                .with("batches", p.batches)
                .with("deaths", p.deaths)
                .with("evaluated", p.evaluated)
                .with("promoted", p.promoted)
                .with("demoted", p.demoted)
                .with("backbone_count", p.backbone_count)
                .with("backbone_digest", format!("{:016x}", p.backbone_digest))
                .with("per_batch_verified", p.per_batch_verified)
                .with("repair_ms", round2(p.repair_ms))
                .with("mean_repair_ms", round2(p.mean_repair_ms))
                .with("apply_ms", round2(p.apply_ms))
                .with("full_ccp_ms", round2(p.full_ccp_ms))
                .with(
                    "speedup_vs_full",
                    round2(p.full_ccp_ms / p.mean_repair_ms.max(1e-9)),
                ),
        );
    }
    JsonValue::Array(entries)
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_separates_memberships() {
        assert_eq!(backbone_digest(&[1, 2, 3]), backbone_digest(&[1, 2, 3]));
        assert_ne!(backbone_digest(&[1, 2, 3]), backbone_digest(&[1, 2, 4]));
        assert_ne!(backbone_digest(&[]), backbone_digest(&[0]));
    }

    #[test]
    fn point_runs_verify_and_report() {
        let p = run_point(200, 0.05, 2, 7);
        assert!(p.batches > 0);
        assert!(p.deaths > 0, "5% of 200 nodes must churn every batch");
        assert!(p.per_batch_verified, "200 nodes is under the verify cap");
        assert!(p.backbone_count > 0);
        assert_eq!(p.backbone_digest, backbone_digest_of_rerun(&p));
    }

    fn backbone_digest_of_rerun(p: &ChurnPoint) -> u64 {
        run_point(p.nodes, p.rate, p.users, p.seed).backbone_digest
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        let config = ExperimentConfig {
            users: 2,
            ..ExperimentConfig::quick()
        };
        let strip = |points: Vec<ChurnPoint>| {
            points
                .into_iter()
                .map(|p| point_json(&p).to_string())
                .collect::<Vec<_>>()
        };
        let serial = strip(run_points(&config.with_jobs(1), &[150, 250], 0.1));
        let parallel = strip(run_points(&config.with_jobs(4), &[150, 250], 0.1));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 2 * config.runs.max(1) as usize);
    }

    #[test]
    fn bench_sweep_reports_one_entry_per_rate() {
        let doc = bench_sweep(200, &[0.02, 0.1], 2, 11);
        let JsonValue::Array(entries) = doc else {
            panic!("churn bench must be an array");
        };
        assert_eq!(entries.len(), 2);
        let text = entries[0].to_string();
        for field in [
            "\"rate\"",
            "\"repair_ms\"",
            "\"mean_repair_ms\"",
            "\"full_ccp_ms\"",
            "\"backbone_digest\"",
            "\"per_batch_verified\"",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}
