//! Motion profiles: the predicted future path handed to the network.
//!
//! A motion profile `P` carries three timing parameters (Section 4.1.2):
//! `ts` — when it takes effect, `Tv` — its validity interval, and `tg` — when
//! it was generated. The *advance time* `Ta = ts − tg` is positive when the
//! profile comes from a motion planner (known before the user takes the
//! path) and negative when it comes from a history-based predictor (only
//! available one sampling period after the motion change it describes).

use crate::path::MotionPath;
use serde::{Deserialize, Serialize};
use wsn_geom::{Point, Vector};
use wsn_sim::{Duration, SimTime};

/// A predicted user path with its timing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionProfile {
    /// When the profile was generated / becomes available to the proxy (`tg`).
    pub generated_at: SimTime,
    /// When the profile takes effect (`ts`): the predicted path describes the
    /// user's motion from this instant on.
    pub effective_from: SimTime,
    /// Validity interval (`Tv`): the profile describes motion during
    /// `[effective_from, effective_from + validity]`.
    pub validity: Duration,
    /// The predicted path. Queries outside the validity interval dead-reckon
    /// along the nearest leg.
    pub path: MotionPath,
}

impl MotionProfile {
    /// Creates a profile from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the predicted path is empty.
    pub fn new(
        generated_at: SimTime,
        effective_from: SimTime,
        validity: Duration,
        path: MotionPath,
    ) -> Self {
        assert!(!path.is_empty(), "a motion profile needs a non-empty path");
        MotionProfile {
            generated_at,
            effective_from,
            validity,
            path,
        }
    }

    /// A straight-line profile: from `start` at `velocity`, effective from
    /// `effective_from` for `validity`, generated at `generated_at`.
    pub fn straight_line(
        generated_at: SimTime,
        effective_from: SimTime,
        validity: Duration,
        start: Point,
        velocity: Vector,
    ) -> Self {
        MotionProfile::new(
            generated_at,
            effective_from,
            validity,
            MotionPath::single_leg(effective_from, validity, start, velocity),
        )
    }

    /// The advance time `Ta = ts − tg` in seconds: positive when the profile
    /// was available before it takes effect (planner), negative when it only
    /// became available afterwards (history-based predictor).
    pub fn advance_time_secs(&self) -> f64 {
        self.effective_from.as_secs_f64() - self.generated_at.as_secs_f64()
    }

    /// When the profile stops being valid (`ts + Tv`).
    pub fn expires_at(&self) -> SimTime {
        self.effective_from + self.validity
    }

    /// Returns `true` when the profile claims to describe the user's motion
    /// at time `t`.
    pub fn is_valid_at(&self, t: SimTime) -> bool {
        t >= self.effective_from && t <= self.expires_at()
    }

    /// The predicted user position at time `t` (dead-reckoning outside the
    /// validity interval).
    pub fn predicted_position(&self, t: SimTime) -> Point {
        self.path.position_at(t)
    }

    /// The predicted user velocity at time `t`.
    pub fn predicted_velocity(&self, t: SimTime) -> Vector {
        self.path.velocity_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(ta_secs: f64) -> MotionProfile {
        let effective = SimTime::from_secs(100);
        let generated = SimTime::from_secs_f64(100.0 - ta_secs);
        MotionProfile::straight_line(
            generated,
            effective,
            Duration::from_secs(50),
            Point::new(10.0, 10.0),
            Vector::new(4.0, 0.0),
        )
    }

    #[test]
    fn advance_time_sign_matches_source_kind() {
        // Planner: generated before it takes effect.
        assert!((profile(6.0).advance_time_secs() - 6.0).abs() < 1e-9);
        // Predictor: generated after the motion change.
        assert!((profile(-8.0).advance_time_secs() + 8.0).abs() < 1e-9);
        // Immediate.
        assert_eq!(profile(0.0).advance_time_secs(), 0.0);
    }

    #[test]
    fn validity_window() {
        let p = profile(0.0);
        assert!(p.is_valid_at(SimTime::from_secs(100)));
        assert!(p.is_valid_at(SimTime::from_secs(150)));
        assert!(!p.is_valid_at(SimTime::from_secs(99)));
        assert!(!p.is_valid_at(SimTime::from_secs(151)));
        assert_eq!(p.expires_at(), SimTime::from_secs(150));
    }

    #[test]
    fn prediction_moves_along_the_line() {
        let p = profile(0.0);
        assert_eq!(
            p.predicted_position(SimTime::from_secs(100)),
            Point::new(10.0, 10.0)
        );
        assert_eq!(
            p.predicted_position(SimTime::from_secs(110)),
            Point::new(50.0, 10.0)
        );
        // Dead-reckons past the validity interval.
        assert_eq!(
            p.predicted_position(SimTime::from_secs(160)),
            Point::new(250.0, 10.0)
        );
        assert_eq!(
            p.predicted_velocity(SimTime::from_secs(120)),
            Vector::new(4.0, 0.0)
        );
    }

    #[test]
    #[should_panic]
    fn empty_path_panics() {
        let _ = MotionProfile::new(
            SimTime::ZERO,
            SimTime::ZERO,
            Duration::from_secs(1),
            MotionPath::default(),
        );
    }
}
