//! # wsn-mobility
//!
//! Mobility substrate for the MobiQuery reproduction: the ground-truth motion
//! of the mobile user, the GPS/localization error model, and the motion
//! profiles (predicted future paths) that MobiQuery's prefetching relies on.
//!
//! The paper's evaluation (Section 6) moves a user through a 450 m × 450 m
//! field, changing direction and speed every *I* seconds with speeds drawn
//! from a range (walking 3–5 m/s, running 6–10 m/s, vehicle 16–20 m/s).
//! Motion profiles reach MobiQuery either from a **planner** (exact knowledge,
//! `Ta` seconds before each change) or from a **history-based predictor**
//! (velocity estimated from two GPS fixes taken δ = 8 s apart, each with a
//! bounded random location error), which corresponds to a negative advance
//! time.
//!
//! ```
//! use wsn_mobility::{MotionConfig, UserMotion, planner_profiles};
//! use wsn_sim::SimRng;
//!
//! let config = MotionConfig::paper_default();
//! let mut rng = SimRng::seed_from_u64(1);
//! let motion = UserMotion::generate(&config, &mut rng);
//! let profiles = planner_profiles(&motion, 6.0);
//! assert!(!profiles.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod gps;
pub mod path;
pub mod profile;
pub mod source;
pub mod user;

pub use fleet::{fleet_member, generate_fleet, FleetMember, FLEET_STREAM};
pub use gps::GpsModel;
pub use path::{MotionLeg, MotionPath};
pub use profile::MotionProfile;
pub use source::{planner_profiles, predictor_profiles, ProfileSource};
pub use user::{MotionConfig, MotionEvent, UserMotion};
