//! Motion-profile sources: planner and history-based predictor.
//!
//! Both sources turn the ground-truth [`UserMotion`] into the sequence of
//! [`MotionProfile`]s the proxy hands to the network:
//!
//! * the **planner** knows the true future path and publishes each profile
//!   `Ta` seconds before the corresponding motion change takes effect
//!   (`Ta` may be negative to model late plans);
//! * the **predictor** learns about a motion change only from GPS: it takes
//!   one (noisy) fix at the change and another one sampling period δ later,
//!   estimates the velocity from the two fixes, and publishes the profile at
//!   that second fix — i.e. with an effective advance time of `−δ`.

use crate::gps::GpsModel;
use crate::profile::MotionProfile;
use crate::user::UserMotion;
use serde::{Deserialize, Serialize};
use wsn_sim::{Duration, SimRng, SimTime};

/// How motion profiles are produced for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProfileSource {
    /// A motion planner with exact knowledge of the future path, publishing
    /// each profile `advance_secs` before the motion change it describes
    /// (negative values model plans that arrive late).
    Planner {
        /// Advance time `Ta` in seconds (may be negative).
        advance_secs: f64,
    },
    /// A history-based predictor: velocity estimated from two GPS fixes taken
    /// `sampling_period_secs` apart, each perturbed by `gps`. The profile is
    /// published at the second fix, so its advance time is
    /// `−sampling_period_secs`.
    Predictor {
        /// Sampling period δ between the two GPS fixes, in seconds.
        sampling_period_secs: f64,
        /// GPS error model applied to each fix.
        gps: GpsModel,
    },
    /// A single exact profile covering the whole run, delivered at time zero
    /// (the paper's Section 6.2 "accurate motion profile" setting).
    Oracle,
}

impl ProfileSource {
    /// Produces the profiles this source would deliver for the given
    /// ground-truth motion, in delivery-time order.
    pub fn profiles(&self, motion: &UserMotion, rng: &mut SimRng) -> Vec<MotionProfile> {
        match *self {
            ProfileSource::Planner { advance_secs } => planner_profiles(motion, advance_secs),
            ProfileSource::Predictor {
                sampling_period_secs,
                gps,
            } => predictor_profiles(motion, sampling_period_secs, gps, rng),
            ProfileSource::Oracle => oracle_profile(motion),
        }
    }
}

/// A single profile containing the exact full trajectory, available at time
/// zero. Matches the paper's "the motion profile that specifies the complete
/// user path is provided to MobiQuery at the beginning of each simulation".
pub fn oracle_profile(motion: &UserMotion) -> Vec<MotionProfile> {
    vec![MotionProfile::new(
        SimTime::ZERO,
        SimTime::ZERO,
        motion.end_time().saturating_since(SimTime::ZERO),
        motion.path().clone(),
    )]
}

/// Planner profiles: one exact profile per motion change, generated
/// `advance_secs` before the change takes effect (clamped to simulation start).
pub fn planner_profiles(motion: &UserMotion, advance_secs: f64) -> Vec<MotionProfile> {
    let events = motion.events();
    let mut profiles = Vec::with_capacity(events.len());
    for (i, event) in events.iter().enumerate() {
        let until = events
            .get(i + 1)
            .map(|next| next.time)
            .unwrap_or_else(|| motion.end_time());
        let validity = until.saturating_since(event.time);
        let generated = SimTime::from_secs_f64(event.time.as_secs_f64() - advance_secs);
        profiles.push(MotionProfile::new(
            generated,
            event.time,
            validity,
            motion
                .path()
                .slice(event.time, until.max(event.time + Duration::from_micros(1))),
        ));
    }
    profiles
}

/// Predictor profiles: for every motion change, a straight-line profile whose
/// velocity is estimated from two noisy GPS fixes `sampling_period_secs`
/// apart, delivered at the second fix.
pub fn predictor_profiles(
    motion: &UserMotion,
    sampling_period_secs: f64,
    gps: GpsModel,
    rng: &mut SimRng,
) -> Vec<MotionProfile> {
    assert!(
        sampling_period_secs > 0.0,
        "the GPS sampling period must be positive"
    );
    let delta = Duration::from_secs_f64(sampling_period_secs);
    let events = motion.events();
    let mut profiles = Vec::with_capacity(events.len());
    for (i, event) in events.iter().enumerate() {
        let until = events
            .get(i + 1)
            .map(|next| next.time)
            .unwrap_or_else(|| motion.end_time());
        let second_fix_time = event.time + delta;
        let fix1 = gps.sample(motion.position_at(event.time), rng);
        let fix2 = gps.sample(motion.position_at(second_fix_time), rng);
        let estimated_velocity = (fix2 - fix1) / sampling_period_secs;
        let validity = until.saturating_since(event.time);
        profiles.push(MotionProfile::straight_line(
            second_fix_time, // generated (and delivered) at the second fix
            event.time,      // describes motion from the change onwards
            validity,
            fix1,
            estimated_velocity,
        ));
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::MotionConfig;
    use wsn_geom::Point;

    fn motion(seed: u64) -> UserMotion {
        let mut rng = SimRng::seed_from_u64(seed);
        UserMotion::generate(&MotionConfig::paper_default(), &mut rng)
    }

    #[test]
    fn oracle_profile_matches_truth_exactly() {
        let m = motion(1);
        let profiles = oracle_profile(&m);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.generated_at, SimTime::ZERO);
        for t in [0u64, 50, 123, 399] {
            let t = SimTime::from_secs(t);
            assert!(p.predicted_position(t).distance_to(m.position_at(t)) < 1e-6);
        }
    }

    #[test]
    fn planner_profiles_have_requested_advance_time() {
        let m = motion(2);
        for ta in [-8.0, -3.0, 0.0, 6.0, 18.0] {
            let profiles = planner_profiles(&m, ta);
            assert_eq!(profiles.len(), m.events().len());
            for p in &profiles {
                // Profiles describing a change at t=0 cannot be generated
                // before the simulation starts, so their Ta is clamped.
                if p.effective_from.as_secs_f64() >= ta.abs() {
                    assert!(
                        (p.advance_time_secs() - ta).abs() < 1e-6,
                        "expected Ta={ta}, got {}",
                        p.advance_time_secs()
                    );
                }
            }
        }
    }

    #[test]
    fn planner_profiles_predict_truth_during_validity() {
        let m = motion(3);
        let profiles = planner_profiles(&m, 6.0);
        for p in &profiles {
            let mid = SimTime::from_secs_f64(
                (p.effective_from.as_secs_f64() + p.expires_at().as_secs_f64()) / 2.0,
            );
            assert!(
                p.predicted_position(mid).distance_to(m.position_at(mid)) < 1e-6,
                "planner prediction must match truth inside the validity window"
            );
        }
    }

    #[test]
    fn predictor_profiles_are_delivered_one_period_late() {
        let m = motion(4);
        let mut rng = SimRng::seed_from_u64(5);
        let profiles = predictor_profiles(&m, 8.0, GpsModel::PERFECT, &mut rng);
        assert_eq!(profiles.len(), m.events().len());
        for p in &profiles {
            assert!((p.advance_time_secs() + 8.0).abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_gps_predictor_matches_truth_on_straight_legs() {
        let m = motion(6);
        let mut rng = SimRng::seed_from_u64(7);
        let profiles = predictor_profiles(&m, 8.0, GpsModel::PERFECT, &mut rng);
        // For events whose leg lasts longer than the sampling period and has
        // no reflection inside it, the estimated velocity is exact.
        let events = m.events();
        for (i, p) in profiles.iter().enumerate() {
            let until = events
                .get(i + 1)
                .map(|e| e.time)
                .unwrap_or_else(|| m.end_time());
            let leg_secs = until.as_secs_f64() - events[i].time.as_secs_f64();
            if leg_secs > 9.0 {
                let t =
                    SimTime::from_secs_f64(events[i].time.as_secs_f64() + leg_secs.min(20.0) - 0.5);
                assert!(
                    p.predicted_position(t).distance_to(m.position_at(t)) < 1e-3,
                    "profile {i} should match truth"
                );
            }
        }
    }

    #[test]
    fn noisy_gps_increases_prediction_error() {
        let m = motion(8);
        let mut rng_a = SimRng::seed_from_u64(9);
        let mut rng_b = SimRng::seed_from_u64(9);
        let exact = predictor_profiles(&m, 8.0, GpsModel::PERFECT, &mut rng_a);
        let noisy = predictor_profiles(&m, 8.0, GpsModel::standard(), &mut rng_b);
        let horizon = Duration::from_secs(30);
        let err = |profiles: &[MotionProfile]| {
            profiles
                .iter()
                .map(|p| {
                    let t = p.effective_from + horizon;
                    p.predicted_position(t).distance_to(m.position_at(t))
                })
                .sum::<f64>()
                / profiles.len() as f64
        };
        assert!(err(&noisy) > err(&exact));
    }

    #[test]
    fn source_enum_dispatches() {
        let m = motion(10);
        let mut rng = SimRng::seed_from_u64(11);
        assert_eq!(ProfileSource::Oracle.profiles(&m, &mut rng).len(), 1);
        assert_eq!(
            ProfileSource::Planner { advance_secs: 6.0 }
                .profiles(&m, &mut rng)
                .len(),
            m.events().len()
        );
        assert_eq!(
            ProfileSource::Predictor {
                sampling_period_secs: 8.0,
                gps: GpsModel::differential()
            }
            .profiles(&m, &mut rng)
            .len(),
            m.events().len()
        );
    }

    #[test]
    fn profile_positions_are_finite() {
        let m = motion(12);
        let mut rng = SimRng::seed_from_u64(13);
        for p in predictor_profiles(&m, 8.0, GpsModel::standard(), &mut rng) {
            let q: Point = p.predicted_position(p.expires_at());
            assert!(q.is_finite());
        }
    }
}
