//! A fleet of independently moving users for multi-user trials.
//!
//! The paper simulates one mobile user; the multi-user workload runs `N` of
//! them over one deployment, each with its own trajectory and its own motion
//! profiles. Reproducibility follows the workspace's one seed-derivation
//! scheme: user `u`'s generator is seeded with
//! [`mix_seed`]`(base_seed, &[FLEET_STREAM, u])`, so the fleet is a pure
//! function of `(config, source, users, base_seed)` — independent of
//! generation order, job count, or which sharing mode consumes it — and
//! member `u` of an `N`-user fleet is bit-identical to member `u` of an
//! `M`-user fleet for any `M > u`.

use crate::profile::MotionProfile;
use crate::source::ProfileSource;
use crate::user::{MotionConfig, UserMotion};
use serde::{Deserialize, Serialize};
use wsn_geom::Point;
use wsn_sim::{mix_seed, SimRng};

/// Stream tag that separates fleet seeds from every other derived stream
/// (trial seeds, per-query streams) sharing the same base seed.
pub const FLEET_STREAM: u64 = 0xF1EE_7000_0000_0001;

/// One user of a multi-user trial: trajectory plus delivered profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMember {
    /// The user's index within the fleet, `0..users`.
    pub index: usize,
    /// The derived seed the member was generated from (also the base for the
    /// member's downstream streams, e.g. query lifetimes).
    pub seed: u64,
    /// Ground-truth trajectory.
    pub motion: UserMotion,
    /// Motion profiles the proxy receives for this user, in delivery order.
    pub profiles: Vec<MotionProfile>,
}

/// Generates `users` independent fleet members.
///
/// User 0 starts at `config.start` — the single-user convention, so an
/// `N = 1` fleet walks the same kind of corner-start trajectory the paper
/// evaluates — while every further user starts at a uniformly random interior
/// point (5% boundary margin, mirroring the default corner start's offset)
/// drawn from that user's own stream.
///
/// ```
/// use wsn_mobility::{generate_fleet, MotionConfig, ProfileSource};
///
/// let fleet = generate_fleet(&MotionConfig::paper_default(), ProfileSource::Oracle, 3, 42);
/// assert_eq!(fleet.len(), 3);
/// let again = generate_fleet(&MotionConfig::paper_default(), ProfileSource::Oracle, 5, 42);
/// assert_eq!(fleet[2], again[2], "member identity is independent of fleet size");
/// ```
pub fn generate_fleet(
    config: &MotionConfig,
    source: ProfileSource,
    users: usize,
    base_seed: u64,
) -> Vec<FleetMember> {
    (0..users)
        .map(|index| fleet_member(config, source, index, base_seed))
        .collect()
}

/// Generates the single fleet member `index` of the fleet
/// `(config, source, base_seed)`.
///
/// Bit-identical to `generate_fleet(config, source, n, base_seed)[index]` for
/// any `n > index` — which is what lets a long-lived query service admit
/// users one at a time, in arrival order, and still replay the exact same
/// fleet as a batch multi-user trial.
pub fn fleet_member(
    config: &MotionConfig,
    source: ProfileSource,
    index: usize,
    base_seed: u64,
) -> FleetMember {
    let seed = mix_seed(base_seed, &[FLEET_STREAM, index as u64]);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut member_config = *config;
    if index > 0 {
        let r = config.region;
        let margin_x = 0.05 * (r.max_x - r.min_x);
        let margin_y = 0.05 * (r.max_y - r.min_y);
        member_config.start = Point::new(
            rng.gen_range_f64(r.min_x + margin_x, r.max_x - margin_x),
            rng.gen_range_f64(r.min_y + margin_y, r.max_y - margin_y),
        );
    }
    let motion = UserMotion::generate(&member_config, &mut rng);
    let profiles = source.profiles(&motion, &mut rng);
    FleetMember {
        index,
        seed,
        motion,
        profiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_sim::SimTime;

    #[test]
    fn fleet_is_deterministic_and_members_differ() {
        let cfg = MotionConfig::paper_default();
        let a = generate_fleet(&cfg, ProfileSource::Oracle, 4, 7);
        let b = generate_fleet(&cfg, ProfileSource::Oracle, 4, 7);
        assert_eq!(a, b);
        let t = SimTime::from_secs(100);
        for i in 1..4 {
            assert_ne!(a[0].seed, a[i].seed);
            assert_ne!(
                a[0].motion.position_at(t),
                a[i].motion.position_at(t),
                "members must move independently"
            );
        }
    }

    #[test]
    fn member_zero_keeps_the_configured_start() {
        let cfg = MotionConfig::paper_default();
        let fleet = generate_fleet(&cfg, ProfileSource::Oracle, 3, 42);
        assert_eq!(fleet[0].motion.position_at(SimTime::ZERO), cfg.start);
    }

    #[test]
    fn later_members_start_inside_the_margin() {
        let cfg = MotionConfig::paper_default();
        let fleet = generate_fleet(&cfg, ProfileSource::Oracle, 16, 3);
        for m in &fleet[1..] {
            let p = m.motion.position_at(SimTime::ZERO);
            assert!(
                (22.5..=427.5).contains(&p.x) && (22.5..=427.5).contains(&p.y),
                "user {} starts at {p}, outside the 5% interior margin",
                m.index
            );
        }
    }

    #[test]
    fn members_are_prefix_stable_across_fleet_sizes() {
        let cfg = MotionConfig::paper_default();
        let small = generate_fleet(&cfg, ProfileSource::Oracle, 2, 42);
        let large = generate_fleet(&cfg, ProfileSource::Oracle, 8, 42);
        assert_eq!(small[..], large[..2]);
    }

    #[test]
    fn profiles_come_from_the_requested_source() {
        let cfg = MotionConfig::paper_default();
        let oracle = generate_fleet(&cfg, ProfileSource::Oracle, 2, 1);
        assert!(oracle.iter().all(|m| m.profiles.len() == 1));
        let planner = generate_fleet(&cfg, ProfileSource::Planner { advance_secs: 6.0 }, 2, 1);
        for m in &planner {
            assert_eq!(m.profiles.len(), m.motion.events().len());
        }
    }
}
