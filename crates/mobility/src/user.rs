//! Ground-truth motion of the mobile user.
//!
//! Section 6 of the paper: the user starts from a corner of the 450 m × 450 m
//! region and moves in a random direction with a speed drawn from a range,
//! changing direction and speed every `change_interval` seconds. We keep the
//! user inside the region by mirror-reflecting the trajectory at the
//! boundary; every reflection counts as an (unexpected) motion change, just
//! like the scheduled ones, because it invalidates the current straight-line
//! motion profile.

use crate::path::{MotionLeg, MotionPath};
use serde::{Deserialize, Serialize};
use wsn_geom::{Point, Rect, Vector};
use wsn_sim::{Duration, SimRng, SimTime};

/// Parameters of the user's random motion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionConfig {
    /// Deployment region the user stays inside.
    pub region: Rect,
    /// Starting position (the paper starts the user at a corner).
    pub start: Point,
    /// Minimum speed in m/s.
    pub speed_min: f64,
    /// Maximum speed in m/s.
    pub speed_max: f64,
    /// Interval between scheduled direction/speed changes, in seconds.
    pub change_interval: f64,
    /// Total duration of the motion, in seconds.
    pub duration: f64,
}

impl MotionConfig {
    /// The paper's Section 6.2 defaults: 450 m square region, walking speed
    /// (3–5 m/s), direction change every 50 s, 400 s of motion, starting near
    /// a corner.
    pub fn paper_default() -> Self {
        MotionConfig {
            region: Rect::square(450.0),
            start: Point::new(20.0, 20.0),
            speed_min: 3.0,
            speed_max: 5.0,
            change_interval: 50.0,
            duration: 400.0,
        }
    }

    /// Same as [`MotionConfig::paper_default`] but with a different speed range.
    pub fn with_speed_range(mut self, min: f64, max: f64) -> Self {
        self.speed_min = min;
        self.speed_max = max;
        self
    }

    /// Sets the interval between scheduled motion changes.
    pub fn with_change_interval(mut self, secs: f64) -> Self {
        self.change_interval = secs;
        self
    }

    /// Sets the total duration of the motion.
    pub fn with_duration(mut self, secs: f64) -> Self {
        self.duration = secs;
        self
    }
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig::paper_default()
    }
}

/// One motion change: the instant the user adopts a new constant velocity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionEvent {
    /// When the change happens.
    pub time: SimTime,
    /// Where the user is at that instant.
    pub position: Point,
    /// The new velocity adopted at that instant.
    pub velocity: Vector,
}

/// The complete ground-truth trajectory of the user for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserMotion {
    path: MotionPath,
    events: Vec<MotionEvent>,
    config: MotionConfig,
}

impl UserMotion {
    /// Generates a random trajectory according to `config`, reproducibly from
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the speed range or durations are not positive and finite, or
    /// if the starting point lies outside the region.
    pub fn generate(config: &MotionConfig, rng: &mut SimRng) -> Self {
        assert!(
            config.speed_min > 0.0 && config.speed_max >= config.speed_min,
            "invalid speed range [{}, {}]",
            config.speed_min,
            config.speed_max
        );
        assert!(
            config.change_interval > 0.0,
            "change interval must be positive"
        );
        assert!(config.duration > 0.0, "duration must be positive");
        assert!(
            config.region.contains(config.start),
            "user must start inside the region"
        );

        let mut legs: Vec<MotionLeg> = Vec::new();
        let mut events: Vec<MotionEvent> = Vec::new();
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs_f64(config.duration);
        let mut position = config.start;

        while now < end {
            // Scheduled change: new random direction and speed.
            let speed = rng.gen_range_f64(config.speed_min, config.speed_max);
            let mut velocity = Vector::from_speed_angle(speed, rng.gen_angle());
            events.push(MotionEvent {
                time: now,
                position,
                velocity,
            });
            let segment_end = (now + Duration::from_secs_f64(config.change_interval)).min(end);

            // Walk the segment, splitting it at boundary reflections.
            while now < segment_end {
                let remaining = (segment_end - now).as_secs_f64();
                let (leg_secs, reflected_velocity) =
                    time_to_boundary(position, velocity, config.region, remaining);
                let leg_duration = Duration::from_secs_f64(leg_secs);
                legs.push(MotionLeg {
                    start_time: now,
                    duration: leg_duration,
                    start: position,
                    velocity,
                });
                // Advance by the *rounded* duration so stored event positions
                // agree exactly with `MotionPath::position_at` at event times.
                position = position.advance(velocity, leg_duration.as_secs_f64());
                // Numerical safety: keep strictly inside the region.
                position = config.region.clamp(position);
                now += leg_duration;
                if let Some(v) = reflected_velocity {
                    velocity = v;
                    if now < segment_end {
                        events.push(MotionEvent {
                            time: now,
                            position,
                            velocity,
                        });
                    }
                }
            }
        }

        UserMotion {
            path: MotionPath::new(legs),
            events,
            config: *config,
        }
    }

    /// The user's position at time `t`.
    pub fn position_at(&self, t: SimTime) -> Point {
        self.path.position_at(t)
    }

    /// The user's velocity at time `t`.
    pub fn velocity_at(&self, t: SimTime) -> Vector {
        self.path.velocity_at(t)
    }

    /// The full trajectory as a path.
    pub fn path(&self) -> &MotionPath {
        &self.path
    }

    /// Every motion change (scheduled or reflection), in time order.
    pub fn events(&self) -> &[MotionEvent] {
        &self.events
    }

    /// The configuration the trajectory was generated from.
    pub fn config(&self) -> &MotionConfig {
        &self.config
    }

    /// When the trajectory ends.
    pub fn end_time(&self) -> SimTime {
        SimTime::from_secs_f64(self.config.duration)
    }

    /// Mean speed over the whole trajectory, in m/s.
    pub fn mean_speed(&self) -> f64 {
        let d = self.path.total_distance();
        let t = self.config.duration;
        if t > 0.0 {
            d / t
        } else {
            0.0
        }
    }
}

/// Returns how long the user can travel from `position` at `velocity` before
/// either `max_secs` elapses or the region boundary is hit, together with the
/// post-reflection velocity if the boundary was hit.
fn time_to_boundary(
    position: Point,
    velocity: Vector,
    region: Rect,
    max_secs: f64,
) -> (f64, Option<Vector>) {
    let mut t_hit = max_secs;
    let mut flip_x = false;
    let mut flip_y = false;

    if velocity.x > 1e-12 {
        let t = (region.max_x - position.x) / velocity.x;
        if t < t_hit {
            t_hit = t;
            flip_x = true;
            flip_y = false;
        }
    } else if velocity.x < -1e-12 {
        let t = (region.min_x - position.x) / velocity.x;
        if t < t_hit {
            t_hit = t;
            flip_x = true;
            flip_y = false;
        }
    }
    if velocity.y > 1e-12 {
        let t = (region.max_y - position.y) / velocity.y;
        if t < t_hit {
            t_hit = t;
            flip_y = true;
            flip_x = false;
        } else if (t - t_hit).abs() < 1e-12 && flip_x {
            flip_y = true; // corner hit
        }
    } else if velocity.y < -1e-12 {
        let t = (region.min_y - position.y) / velocity.y;
        if t < t_hit {
            t_hit = t;
            flip_y = true;
            flip_x = false;
        } else if (t - t_hit).abs() < 1e-12 && flip_x {
            flip_y = true;
        }
    }

    let t_hit = t_hit.max(0.0);
    if t_hit >= max_secs {
        (max_secs, None)
    } else {
        let mut v = velocity;
        if flip_x {
            v = Vector::new(-v.x, v.y);
        }
        if flip_y {
            v = Vector::new(v.x, -v.y);
        }
        (t_hit, Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(seed: u64, cfg: MotionConfig) -> UserMotion {
        let mut rng = SimRng::seed_from_u64(seed);
        UserMotion::generate(&cfg, &mut rng)
    }

    #[test]
    fn user_stays_inside_the_region() {
        for seed in 0..5 {
            let cfg = MotionConfig::paper_default().with_speed_range(16.0, 20.0);
            let m = generate(seed, cfg);
            for step in 0..=400 {
                let p = m.position_at(SimTime::from_secs(step));
                assert!(
                    cfg.region.contains(p),
                    "seed {seed}: user left the region at t={step}s: {p}"
                );
            }
        }
    }

    #[test]
    fn speed_stays_within_requested_range() {
        let cfg = MotionConfig::paper_default().with_speed_range(6.0, 10.0);
        let m = generate(3, cfg);
        for leg in m.path().legs() {
            let speed = leg.velocity.length();
            assert!(
                (6.0 - 1e-9..=10.0 + 1e-9).contains(&speed),
                "leg speed {speed} outside range"
            );
        }
        let mean = m.mean_speed();
        assert!((6.0 - 1e-6..=10.0 + 1e-6).contains(&mean));
    }

    #[test]
    fn scheduled_changes_happen_at_change_interval() {
        let cfg = MotionConfig::paper_default().with_change_interval(50.0);
        let m = generate(4, cfg);
        // Events at 0, 50, 100, ... must all be present (reflections add more).
        for k in 0..8 {
            let t = SimTime::from_secs(k * 50);
            assert!(
                m.events().iter().any(|e| e.time == t),
                "missing scheduled motion change at {t}"
            );
        }
    }

    #[test]
    fn events_are_time_ordered_and_on_path() {
        let m = generate(5, MotionConfig::paper_default());
        for pair in m.events().windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for e in m.events() {
            let p = m.position_at(e.time);
            // Event positions may differ from the path by the boundary clamp
            // (sub-millimetre); anything larger indicates a real bug.
            assert!(
                p.distance_to(e.position) < 1e-3,
                "event/path mismatch: {p} vs {}",
                e.position
            );
        }
    }

    #[test]
    fn trajectory_is_reproducible_per_seed() {
        let a = generate(9, MotionConfig::paper_default());
        let b = generate(9, MotionConfig::paper_default());
        assert_eq!(a, b);
        let c = generate(10, MotionConfig::paper_default());
        assert_ne!(
            a.position_at(SimTime::from_secs(100)),
            c.position_at(SimTime::from_secs(100))
        );
    }

    #[test]
    fn path_covers_whole_duration() {
        let cfg = MotionConfig::paper_default().with_duration(500.0);
        let m = generate(11, cfg);
        assert_eq!(m.path().end_time(), SimTime::from_secs(500));
        assert_eq!(m.end_time(), SimTime::from_secs(500));
    }

    #[test]
    #[should_panic]
    fn invalid_speed_range_panics() {
        let cfg = MotionConfig {
            speed_min: 5.0,
            speed_max: 3.0,
            ..MotionConfig::paper_default()
        };
        let _ = generate(1, cfg);
    }

    #[test]
    #[should_panic]
    fn start_outside_region_panics() {
        let cfg = MotionConfig {
            start: Point::new(-10.0, 0.0),
            ..MotionConfig::paper_default()
        };
        let _ = generate(1, cfg);
    }

    #[test]
    fn fast_user_reflects_often_but_keeps_moving() {
        let cfg = MotionConfig::paper_default()
            .with_speed_range(16.0, 20.0)
            .with_duration(400.0);
        let m = generate(12, cfg);
        // A vehicle covering ~7 km in a 450 m box must bounce a lot.
        assert!(m.events().len() > 8);
        assert!(m.path().total_distance() > 6000.0);
    }
}
