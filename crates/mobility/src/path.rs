//! Piecewise-constant-velocity paths.

use serde::{Deserialize, Serialize};
use wsn_geom::{Point, Vector};
use wsn_sim::{Duration, SimTime};

/// One leg of a path: starting at `start` at `start_time`, moving with
/// constant `velocity` for `duration`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionLeg {
    /// When the leg begins.
    pub start_time: SimTime,
    /// How long the leg lasts.
    pub duration: Duration,
    /// Position at the start of the leg.
    pub start: Point,
    /// Constant velocity during the leg (m/s).
    pub velocity: Vector,
}

impl MotionLeg {
    /// The instant the leg ends.
    pub fn end_time(&self) -> SimTime {
        self.start_time + self.duration
    }

    /// The position at the end of the leg.
    pub fn end(&self) -> Point {
        self.start
            .advance(self.velocity, self.duration.as_secs_f64())
    }

    /// Position at absolute time `t`, extrapolating outside the leg.
    pub fn position_at(&self, t: SimTime) -> Point {
        let dt = t.as_secs_f64() - self.start_time.as_secs_f64();
        self.start.advance(self.velocity, dt)
    }
}

/// A contiguous sequence of [`MotionLeg`]s describing where something is at
/// any time in `[start_time, end_time]`.
///
/// Queries before the first leg return the starting position; queries after
/// the last leg extrapolate along the final leg's velocity (dead reckoning),
/// which is exactly how a motion profile is used after its validity interval
/// when no fresher profile has arrived.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MotionPath {
    legs: Vec<MotionLeg>,
}

impl MotionPath {
    /// Creates a path from legs.
    ///
    /// # Panics
    ///
    /// Panics if the legs are not contiguous in time (each leg must start
    /// when the previous one ends) or not sorted by start time.
    pub fn new(legs: Vec<MotionLeg>) -> Self {
        for pair in legs.windows(2) {
            assert_eq!(
                pair[0].end_time(),
                pair[1].start_time,
                "path legs must be contiguous in time"
            );
        }
        MotionPath { legs }
    }

    /// A path that stays at `point` forever starting at `time`.
    pub fn stationary(point: Point, time: SimTime) -> Self {
        MotionPath {
            legs: vec![MotionLeg {
                start_time: time,
                duration: Duration::ZERO,
                start: point,
                velocity: Vector::ZERO,
            }],
        }
    }

    /// A single straight leg.
    pub fn single_leg(
        start_time: SimTime,
        duration: Duration,
        start: Point,
        velocity: Vector,
    ) -> Self {
        MotionPath {
            legs: vec![MotionLeg {
                start_time,
                duration,
                start,
                velocity,
            }],
        }
    }

    /// The legs of this path.
    pub fn legs(&self) -> &[MotionLeg] {
        &self.legs
    }

    /// Returns `true` when the path has no legs.
    pub fn is_empty(&self) -> bool {
        self.legs.is_empty()
    }

    /// When the path starts (time of the first leg); `SimTime::ZERO` when empty.
    pub fn start_time(&self) -> SimTime {
        self.legs
            .first()
            .map(|l| l.start_time)
            .unwrap_or(SimTime::ZERO)
    }

    /// When the last leg ends; `SimTime::ZERO` when empty.
    pub fn end_time(&self) -> SimTime {
        self.legs
            .last()
            .map(|l| l.end_time())
            .unwrap_or(SimTime::ZERO)
    }

    /// Position at time `t` (clamped to the start before the path begins,
    /// extrapolated along the last leg after it ends).
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    pub fn position_at(&self, t: SimTime) -> Point {
        assert!(!self.legs.is_empty(), "cannot query an empty path");
        if t <= self.start_time() {
            return self.legs[0].start;
        }
        match self.leg_at(t) {
            Some(leg) => leg.position_at(t),
            None => self.legs.last().expect("nonempty").position_at(t),
        }
    }

    /// Velocity at time `t` (the velocity of the containing leg; the last
    /// leg's velocity after the path ends, the first leg's before it starts).
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    pub fn velocity_at(&self, t: SimTime) -> Vector {
        assert!(!self.legs.is_empty(), "cannot query an empty path");
        match self.leg_at(t) {
            Some(leg) => leg.velocity,
            None if t <= self.start_time() => self.legs[0].velocity,
            None => self.legs.last().expect("nonempty").velocity,
        }
    }

    fn leg_at(&self, t: SimTime) -> Option<&MotionLeg> {
        self.legs
            .iter()
            .find(|l| t >= l.start_time && t <= l.end_time())
    }

    /// Appends a leg.
    ///
    /// # Panics
    ///
    /// Panics if the new leg does not start exactly when the path currently ends
    /// (unless the path is empty).
    pub fn push(&mut self, leg: MotionLeg) {
        if let Some(last) = self.legs.last() {
            assert_eq!(last.end_time(), leg.start_time, "legs must be contiguous");
        }
        self.legs.push(leg);
    }

    /// Total distance travelled along the path.
    pub fn total_distance(&self) -> f64 {
        self.legs
            .iter()
            .map(|l| l.velocity.length() * l.duration.as_secs_f64())
            .sum()
    }

    /// The sub-path covering `[from, to]`, with legs clipped to that window.
    ///
    /// Returns a stationary path at the position of `from` when the window is
    /// empty or does not overlap any leg.
    pub fn slice(&self, from: SimTime, to: SimTime) -> MotionPath {
        if self.legs.is_empty() || to <= from {
            return MotionPath::stationary(
                if self.legs.is_empty() {
                    Point::ORIGIN
                } else {
                    self.position_at(from)
                },
                from,
            );
        }
        let mut legs = Vec::new();
        for leg in &self.legs {
            let leg_start = leg.start_time.max(from);
            let leg_end = leg.end_time().min(to);
            if leg_start >= leg_end {
                continue;
            }
            legs.push(MotionLeg {
                start_time: leg_start,
                duration: leg_end - leg_start,
                start: leg.position_at(leg_start),
                velocity: leg.velocity,
            });
        }
        if legs.is_empty() {
            MotionPath::stationary(self.position_at(from), from)
        } else {
            MotionPath { legs }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_leg_path() -> MotionPath {
        // East at 2 m/s for 10 s, then north at 1 m/s for 20 s.
        MotionPath::new(vec![
            MotionLeg {
                start_time: SimTime::ZERO,
                duration: Duration::from_secs(10),
                start: Point::new(0.0, 0.0),
                velocity: Vector::new(2.0, 0.0),
            },
            MotionLeg {
                start_time: SimTime::from_secs(10),
                duration: Duration::from_secs(20),
                start: Point::new(20.0, 0.0),
                velocity: Vector::new(0.0, 1.0),
            },
        ])
    }

    #[test]
    fn position_within_legs() {
        let p = two_leg_path();
        assert_eq!(p.position_at(SimTime::from_secs(5)), Point::new(10.0, 0.0));
        assert_eq!(p.position_at(SimTime::from_secs(10)), Point::new(20.0, 0.0));
        assert_eq!(
            p.position_at(SimTime::from_secs(20)),
            Point::new(20.0, 10.0)
        );
    }

    #[test]
    fn position_clamps_before_and_extrapolates_after() {
        let p = two_leg_path();
        assert_eq!(p.position_at(SimTime::ZERO), Point::new(0.0, 0.0));
        // After the end (30 s) dead-reckon along the last leg.
        assert_eq!(
            p.position_at(SimTime::from_secs(40)),
            Point::new(20.0, 30.0)
        );
    }

    #[test]
    fn velocity_lookup() {
        let p = two_leg_path();
        assert_eq!(p.velocity_at(SimTime::from_secs(3)), Vector::new(2.0, 0.0));
        assert_eq!(p.velocity_at(SimTime::from_secs(25)), Vector::new(0.0, 1.0));
        assert_eq!(p.velocity_at(SimTime::from_secs(99)), Vector::new(0.0, 1.0));
    }

    #[test]
    fn total_distance_sums_legs() {
        let p = two_leg_path();
        assert!((p.total_distance() - 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn non_contiguous_legs_panic() {
        let _ = MotionPath::new(vec![
            MotionLeg {
                start_time: SimTime::ZERO,
                duration: Duration::from_secs(10),
                start: Point::ORIGIN,
                velocity: Vector::ZERO,
            },
            MotionLeg {
                start_time: SimTime::from_secs(11),
                duration: Duration::from_secs(5),
                start: Point::ORIGIN,
                velocity: Vector::ZERO,
            },
        ]);
    }

    #[test]
    fn stationary_path_never_moves() {
        let p = MotionPath::stationary(Point::new(3.0, 4.0), SimTime::from_secs(2));
        assert_eq!(p.position_at(SimTime::ZERO), Point::new(3.0, 4.0));
        assert_eq!(p.position_at(SimTime::from_secs(100)), Point::new(3.0, 4.0));
    }

    #[test]
    fn slice_covers_window() {
        let p = two_leg_path();
        let s = p.slice(SimTime::from_secs(5), SimTime::from_secs(15));
        assert_eq!(s.start_time(), SimTime::from_secs(5));
        assert_eq!(s.end_time(), SimTime::from_secs(15));
        assert_eq!(
            s.position_at(SimTime::from_secs(5)),
            p.position_at(SimTime::from_secs(5))
        );
        assert_eq!(
            s.position_at(SimTime::from_secs(15)),
            p.position_at(SimTime::from_secs(15))
        );
        assert_eq!(s.legs().len(), 2);
    }

    #[test]
    fn slice_outside_path_is_stationary() {
        let p = two_leg_path();
        let s = p.slice(SimTime::from_secs(100), SimTime::from_secs(100));
        assert_eq!(
            s.position_at(SimTime::from_secs(100)),
            p.position_at(SimTime::from_secs(100))
        );
    }

    #[test]
    fn push_extends_path() {
        let mut p = two_leg_path();
        p.push(MotionLeg {
            start_time: SimTime::from_secs(30),
            duration: Duration::from_secs(10),
            start: Point::new(20.0, 20.0),
            velocity: Vector::new(-1.0, 0.0),
        });
        assert_eq!(p.end_time(), SimTime::from_secs(40));
        assert_eq!(
            p.position_at(SimTime::from_secs(40)),
            Point::new(10.0, 20.0)
        );
    }
}
