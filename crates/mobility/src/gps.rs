//! GPS / localization error model.
//!
//! Section 6.3: "Each GPS reading has a random location error within 0 ∼ Δ
//! meters. Δ takes 5 m or 10 m, modeling the typical accuracy of GPS
//! with/without differential correction." We therefore perturb the true
//! position by a vector whose direction is uniform and whose magnitude is
//! uniform in `[0, Δ]`.

use serde::{Deserialize, Serialize};
use wsn_geom::{Point, Vector};
use wsn_sim::SimRng;

/// A GPS receiver model: bounded random position error and a fixed reading
/// latency (the paper quotes a 2–3 s lag for a walking user and ~8 s to get
/// an initial fix; the predictor's sampling period models the latency, so the
/// default lag here is zero).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsModel {
    /// Maximum position error Δ in metres; each reading errs by a uniformly
    /// random distance in `[0, Δ]` in a uniformly random direction.
    pub max_error_m: f64,
}

impl GpsModel {
    /// A perfect receiver (no error).
    pub const PERFECT: GpsModel = GpsModel { max_error_m: 0.0 };

    /// Creates a model with the given maximum error in metres.
    ///
    /// # Panics
    ///
    /// Panics if `max_error_m` is negative or not finite.
    pub fn new(max_error_m: f64) -> Self {
        assert!(
            max_error_m.is_finite() && max_error_m >= 0.0,
            "GPS error bound must be non-negative"
        );
        GpsModel { max_error_m }
    }

    /// GPS with differential correction (Δ = 5 m), as in the paper.
    pub fn differential() -> Self {
        GpsModel::new(5.0)
    }

    /// GPS without differential correction (Δ = 10 m), as in the paper.
    pub fn standard() -> Self {
        GpsModel::new(10.0)
    }

    /// Samples one reading of the true position `actual`.
    pub fn sample(&self, actual: Point, rng: &mut SimRng) -> Point {
        if self.max_error_m <= 0.0 {
            return actual;
        }
        let magnitude = rng.gen_range_f64(0.0, self.max_error_m);
        let direction = Vector::from_angle(rng.gen_angle());
        actual + direction * magnitude
    }
}

impl Default for GpsModel {
    fn default() -> Self {
        GpsModel::PERFECT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_gps_returns_truth() {
        let mut rng = SimRng::seed_from_u64(1);
        let p = Point::new(100.0, 200.0);
        assert_eq!(GpsModel::PERFECT.sample(p, &mut rng), p);
    }

    #[test]
    fn error_never_exceeds_bound() {
        let mut rng = SimRng::seed_from_u64(2);
        let gps = GpsModel::standard();
        let truth = Point::new(50.0, 50.0);
        for _ in 0..5_000 {
            let reading = gps.sample(truth, &mut rng);
            assert!(reading.distance_to(truth) <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn errors_are_spread_in_all_directions() {
        let mut rng = SimRng::seed_from_u64(3);
        let gps = GpsModel::differential();
        let truth = Point::new(0.0, 0.0);
        let (mut east, mut west, mut north, mut south) = (0u32, 0u32, 0u32, 0u32);
        for _ in 0..2_000 {
            let r = gps.sample(truth, &mut rng);
            if r.x > 0.0 {
                east += 1;
            } else {
                west += 1;
            }
            if r.y > 0.0 {
                north += 1;
            } else {
                south += 1;
            }
        }
        for count in [east, west, north, south] {
            assert!(count > 500, "direction badly under-represented: {count}");
        }
    }

    #[test]
    fn mean_error_is_about_half_the_bound() {
        let mut rng = SimRng::seed_from_u64(4);
        let gps = GpsModel::new(10.0);
        let truth = Point::new(0.0, 0.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| gps.sample(truth, &mut rng).distance_to(truth))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean error {mean}");
    }

    #[test]
    #[should_panic]
    fn negative_bound_panics() {
        let _ = GpsModel::new(-1.0);
    }
}
