//! Figure 5 bench: regenerates the per-period fidelity time series of MQ-JIT
//! and MQ-GP (dynamic behaviour at a 15 s sleep period) and times the
//! long-sleep-period simulation that produces it.

use criterion::{criterion_group, criterion_main, Criterion};
use mobiquery::config::Scheme;
use mobiquery_experiments::{fig5, run_scenario, ExperimentConfig};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let out = fig5::run(&config);
    println!(
        "\nFigure 5 (quick): steady-state fidelity MQ-JIT {:.3}, MQ-GP {:.3} ({} periods)",
        out.jit_steady_state_mean(10),
        out.greedy_steady_state_mean(10),
        out.jit.len()
    );

    let mut group = c.benchmark_group("fig5_dynamic_behavior");
    group.sample_size(10);
    for scheme in [Scheme::JustInTime, Scheme::Greedy] {
        let scenario = config
            .base_scenario()
            .with_sleep_period_secs(15.0)
            .with_speed_range(3.0, 5.0)
            .with_scheme(scheme);
        group.bench_function(format!("sleep15_{}", scheme.label()), |b| {
            b.iter(|| black_box(run_scenario(black_box(scenario.clone()))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
