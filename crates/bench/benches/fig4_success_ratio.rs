//! Figure 4 bench: regenerates the success-ratio comparison (MQ-JIT vs MQ-GP
//! vs NP across sleep periods) and times a single simulation run per scheme.
//!
//! The full paper-scale table is printed once at start-up; the timed portion
//! uses the quick scenario so `cargo bench` stays fast.

use criterion::{criterion_group, criterion_main, Criterion};
use mobiquery::config::Scheme;
use mobiquery_experiments::{fig4, run_scenario, ExperimentConfig};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    // Regenerate the figure itself (quick mode keeps bench start-up sane;
    // run `repro fig4` for the paper-scale sweep).
    let table = fig4::run(&ExperimentConfig::quick());
    println!("\n{table}");

    let mut group = c.benchmark_group("fig4_success_ratio");
    group.sample_size(10);
    for scheme in [Scheme::JustInTime, Scheme::Greedy, Scheme::None] {
        let scenario = ExperimentConfig::quick()
            .base_scenario()
            .with_sleep_period_secs(9.0)
            .with_scheme(scheme);
        group.bench_function(format!("single_run_{}", scheme.label()), |b| {
            b.iter(|| black_box(run_scenario(black_box(scenario.clone()))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
