//! Figure 6 bench: regenerates the success-ratio-vs-advance-time table and
//! times runs with early and late motion profiles.

use criterion::{criterion_group, criterion_main, Criterion};
use mobiquery::config::Scheme;
use mobiquery_experiments::{fig6, run_scenario, ExperimentConfig};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    println!("\n{}", fig6::run(&config));

    let mut group = c.benchmark_group("fig6_advance_time");
    group.sample_size(10);
    for advance in [-6.0, 18.0] {
        let scenario = config
            .base_scenario()
            .with_sleep_period_secs(9.0)
            .with_motion_change_interval(70.0)
            .with_planner_advance(advance)
            .with_scheme(Scheme::JustInTime);
        group.bench_function(format!("advance_{advance}s"), |b| {
            b.iter(|| black_box(run_scenario(black_box(scenario.clone()))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
