//! Indexed vs linear per-query hot path at deployment scale.
//!
//! Benchmarks the two lookups a MobiQuery period performs, each in its
//! pre-optimization linear form and its spatial-grid form, at 1k and 10k
//! nodes (constant density):
//!
//! * `nearest_backbone` — collector / proxy-attach selection: linear scan
//!   over every backbone node vs the backbone grid's expanding-ring search;
//! * `query_install` — flood-tree build plus parent assignment for every
//!   sleeping node in the query area: per-node scan over the whole tree vs
//!   grid candidates filtered through the scratch's dense in-tree marks.
//!
//! Both variants produce identical assignments (asserted once per fixture);
//! only the lookup strategy differs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsn_geom::{Point, Rect, SpatialGrid};
use wsn_net::{FloodScratch, NeighborTable, NodeId};
use wsn_sim::SimRng;

/// Paper-default radio range and query radius.
const COMM_RANGE: f64 = 105.0;
const QUERY_RADIUS: f64 = 150.0;

struct Fixture {
    positions: Vec<Point>,
    backbone: Vec<NodeId>,
    is_backbone: Vec<bool>,
    neighbors: NeighborTable,
    all_grid: SpatialGrid,
    backbone_grid: SpatialGrid,
    pickup: Point,
    sleeping_in_area: Vec<NodeId>,
}

/// Uniform deployment at the paper's density with every third node acting as
/// backbone (about the fraction CCP elects).
fn fixture(nodes: usize, seed: u64) -> Fixture {
    let side = 450.0 * (nodes as f64 / 200.0).sqrt();
    let region = Rect::square(side);
    let mut rng = SimRng::seed_from_u64(seed);
    let positions: Vec<Point> = (0..nodes)
        .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
        .collect();
    let is_backbone: Vec<bool> = (0..nodes).map(|i| i % 3 == 0).collect();
    let backbone: Vec<NodeId> = (0..nodes).filter(|&i| is_backbone[i]).map(NodeId).collect();
    let neighbors = NeighborTable::build(&positions, region, COMM_RANGE);
    let mut all_grid = SpatialGrid::new(region, COMM_RANGE).unwrap();
    let mut backbone_grid = SpatialGrid::new(region, COMM_RANGE).unwrap();
    for (i, &p) in positions.iter().enumerate() {
        all_grid.insert(i, p);
        if is_backbone[i] {
            backbone_grid.insert(i, p);
        }
    }
    let pickup = Point::new(side / 2.0, side / 2.0);
    let sleeping_in_area: Vec<NodeId> = all_grid
        .query_range(pickup, QUERY_RADIUS)
        .filter(|&i| !is_backbone[i])
        .map(NodeId)
        .collect();
    Fixture {
        positions,
        backbone,
        is_backbone,
        neighbors,
        all_grid,
        backbone_grid,
        pickup,
        sleeping_in_area,
    }
}

/// The pre-index collector selection: scan every backbone node.
fn nearest_backbone_linear(f: &Fixture, p: Point) -> Option<NodeId> {
    f.backbone.iter().copied().min_by(|&a, &b| {
        f.positions[a.index()]
            .distance_sq_to(p)
            .total_cmp(&f.positions[b.index()].distance_sq_to(p))
    })
}

/// One query installation, linear flavour: fresh-scratch tree build plus a
/// whole-tree scan per sleeping node (what `install_query` used to do).
fn install_linear(f: &Fixture) -> (Option<NodeId>, usize) {
    let collector = nearest_backbone_linear(f, f.pickup);
    let root = collector.expect("fixture has backbone nodes");
    let relay = QUERY_RADIUS + COMM_RANGE;
    let tree = wsn_net::FloodTree::build(root, &f.neighbors, |n| {
        f.is_backbone[n.index()] && f.positions[n.index()].distance_to(f.pickup) <= relay
    });
    let mut assigned = 0;
    for &node in &f.sleeping_in_area {
        let pos = f.positions[node.index()];
        let parent = tree
            .order()
            .iter()
            .copied()
            .filter(|&b| f.positions[b.index()].distance_to(pos) <= COMM_RANGE)
            .min_by(|&a, &b| {
                f.positions[a.index()]
                    .distance_sq_to(pos)
                    .total_cmp(&f.positions[b.index()].distance_sq_to(pos))
            });
        if parent.is_some() {
            assigned += 1;
        }
    }
    (collector, assigned)
}

/// One query installation, indexed flavour: backbone-grid collector lookup,
/// scratch-buffer tree build, and grid-plus-in-tree-marks parent assignment
/// (what `install_query` does now).
fn install_grid(f: &Fixture, scratch: &mut FloodScratch) -> (Option<NodeId>, usize) {
    let collector = f.backbone_grid.nearest(f.pickup).map(|(i, _)| NodeId(i));
    let root = collector.expect("fixture has backbone nodes");
    let relay = QUERY_RADIUS + COMM_RANGE;
    let tree = scratch.build(root, &f.neighbors, |n| {
        f.is_backbone[n.index()] && f.positions[n.index()].distance_to(f.pickup) <= relay
    });
    let mut assigned = 0;
    for &node in &f.sleeping_in_area {
        let pos = f.positions[node.index()];
        let parent = f
            .all_grid
            .nearest_filtered(pos, |i| scratch.in_last_tree(i))
            .filter(|&(_, ppos)| ppos.distance_to(pos) <= COMM_RANGE);
        if parent.is_some() {
            assigned += 1;
        }
    }
    scratch.recycle(tree);
    (collector, assigned)
}

fn bench_scales(c: &mut Criterion) {
    for nodes in [1_000usize, 10_000] {
        let f = fixture(nodes, 7);
        let mut scratch = FloodScratch::new();
        // Both flavours must agree before their timings mean anything.
        assert_eq!(install_linear(&f), install_grid(&f, &mut scratch));

        let mut group = c.benchmark_group(&format!("scale_{nodes}"));
        group.sample_size(20);
        group.bench_function(format!("nearest_backbone_linear_{nodes}"), |b| {
            b.iter(|| black_box(nearest_backbone_linear(&f, black_box(f.pickup))))
        });
        group.bench_function(format!("nearest_backbone_grid_{nodes}"), |b| {
            b.iter(|| black_box(f.backbone_grid.nearest(black_box(f.pickup))))
        });
        group.bench_function(format!("query_install_linear_{nodes}"), |b| {
            b.iter(|| black_box(install_linear(&f)))
        });
        group.bench_function(format!("query_install_grid_{nodes}"), |b| {
            b.iter(|| black_box(install_grid(&f, &mut scratch)))
        });

        // Parent assignment alone (tree prebuilt): the O(sleeping × tree)
        // scan vs the grid walk over in-tree marks.
        let relay = QUERY_RADIUS + COMM_RANGE;
        let root = f.backbone_grid.nearest(f.pickup).map(|(i, _)| NodeId(i));
        let tree = scratch.build(root.unwrap(), &f.neighbors, |n| {
            f.is_backbone[n.index()] && f.positions[n.index()].distance_to(f.pickup) <= relay
        });
        group.bench_function(format!("parent_assign_linear_{nodes}"), |b| {
            b.iter(|| {
                let mut assigned = 0;
                for &node in &f.sleeping_in_area {
                    let pos = f.positions[node.index()];
                    let parent = tree
                        .order()
                        .iter()
                        .copied()
                        .filter(|&p| f.positions[p.index()].distance_to(pos) <= COMM_RANGE)
                        .min_by(|&a, &b| {
                            f.positions[a.index()]
                                .distance_sq_to(pos)
                                .total_cmp(&f.positions[b.index()].distance_sq_to(pos))
                        });
                    if parent.is_some() {
                        assigned += 1;
                    }
                }
                black_box(assigned)
            })
        });
        group.bench_function(format!("parent_assign_grid_{nodes}"), |b| {
            b.iter(|| {
                let mut assigned = 0;
                for &node in &f.sleeping_in_area {
                    let pos = f.positions[node.index()];
                    let parent = f
                        .all_grid
                        .nearest_filtered(pos, |i| scratch.in_last_tree(i))
                        .filter(|&(_, ppos)| ppos.distance_to(pos) <= COMM_RANGE);
                    if parent.is_some() {
                        assigned += 1;
                    }
                }
                black_box(assigned)
            })
        });
        scratch.recycle(tree);
        group.finish();
    }
}

criterion_group!(benches, bench_scales);
criterion_main!(benches);
