//! Raster vs reference CCP backbone election at deployment scale.
//!
//! The election used to dominate setup wall-clock (~50× the event loop at
//! 20 000 nodes) because every candidate demotion re-ran a grid range query
//! per sample point. The incremental [`CoverageRaster`] builds per-point
//! coverage counts once and demotes with O(1) lookups; this bench pins both
//! the speedup and — before timing anything — the bit-identical roles the
//! two implementations must produce for the same seed.
//!
//! [`CoverageRaster`]: wsn_power::CoverageRaster

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsn_geom::{Point, Rect};
use wsn_power::ccp::{elect_backbone, elect_backbone_reference, CcpConfig};
use wsn_sim::SimRng;

/// Density-preserving deployment: the region side grows with √nodes so the
/// backbone fraction matches the paper's 200-nodes-per-450-m-square setting.
fn deployment(nodes: usize, seed: u64) -> (Vec<Point>, Rect) {
    let side = 450.0 * (nodes as f64 / 200.0).sqrt();
    let mut rng = SimRng::seed_from_u64(seed);
    let positions = (0..nodes)
        .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
        .collect();
    (positions, Rect::square(side))
}

fn bench_elections(c: &mut Criterion) {
    for nodes in [1_000usize, 10_000] {
        let (positions, region) = deployment(nodes, 7);
        let cfg = CcpConfig::paper_default();

        // The timings only mean anything if both paths elect the same
        // backbone, node for node.
        let fast = elect_backbone(&positions, region, &cfg, &mut SimRng::seed_from_u64(11));
        let reference =
            elect_backbone_reference(&positions, region, &cfg, &mut SimRng::seed_from_u64(11));
        assert_eq!(
            fast, reference,
            "raster and reference elections diverged at {nodes} nodes"
        );

        let mut group = c.benchmark_group(&format!("ccp_election_{nodes}"));
        group.sample_size(10);
        group.bench_function(format!("raster_{nodes}"), |b| {
            b.iter(|| {
                black_box(elect_backbone(
                    &positions,
                    region,
                    &cfg,
                    &mut SimRng::seed_from_u64(11),
                ))
            })
        });
        group.bench_function(format!("reference_{nodes}"), |b| {
            b.iter(|| {
                black_box(elect_backbone_reference(
                    &positions,
                    region,
                    &cfg,
                    &mut SimRng::seed_from_u64(11),
                ))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_elections);
criterion_main!(benches);
