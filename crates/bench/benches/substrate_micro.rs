//! Micro-benchmarks for the substrates the protocol simulation is built on:
//! the discrete-event queue, CCP backbone election, neighbour-table
//! construction, geographic routing, flood-tree construction and the
//! duty-cycle wake-time math.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsn_geom::{Point, Rect, SpatialGrid};
use wsn_net::routing::route_greedy;
use wsn_net::{FloodTree, NeighborTable, NodeId, SleepSchedule};
use wsn_power::ccp::{elect_backbone, CcpConfig};
use wsn_sim::{Duration, EventQueue, SimRng, SimTime};

fn deployment(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
        .collect()
}

fn bench_substrates(c: &mut Criterion) {
    let region = Rect::square(450.0);
    let positions = deployment(200, 450.0, 1);
    let neighbors = NeighborTable::build(&positions, region, 105.0);

    c.bench_function("event_queue_10k_schedule_pop", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..10_000u32 {
                q.schedule_at(SimTime::from_micros((i as u64 * 7919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum += e.event as u64;
            }
            black_box(sum)
        })
    });

    c.bench_function("ccp_backbone_election_200_nodes", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(2);
            black_box(elect_backbone(
                black_box(&positions),
                region,
                &CcpConfig::paper_default(),
                &mut rng,
            ))
        })
    });

    c.bench_function("neighbor_table_200_nodes", |b| {
        b.iter(|| black_box(NeighborTable::build(black_box(&positions), region, 105.0)))
    });

    c.bench_function("greedy_route_across_field", |b| {
        b.iter(|| {
            black_box(route_greedy(
                NodeId(0),
                Point::new(440.0, 440.0),
                50.0,
                &positions,
                &neighbors,
                |_| true,
            ))
        })
    });

    c.bench_function("flood_tree_query_area", |b| {
        let pickup = Point::new(225.0, 225.0);
        b.iter(|| {
            black_box(FloodTree::build(NodeId(0), &neighbors, |n| {
                positions[n.index()].distance_to(pickup) <= 255.0
            }))
        })
    });

    // The per-query nearest-backbone lookup, linear scan vs spatial index,
    // at the paper's 200-node scale (every third node as backbone). The
    // scale_query_install bench repeats this comparison at 1k/10k nodes.
    let backbone: Vec<usize> = (0..positions.len()).step_by(3).collect();
    let mut backbone_grid = SpatialGrid::new(region, 105.0).unwrap();
    for &i in &backbone {
        backbone_grid.insert(i, positions[i]);
    }
    let probe = Point::new(310.0, 140.0);
    c.bench_function("nearest_backbone_linear_200", |b| {
        b.iter(|| {
            black_box(backbone.iter().copied().min_by(|&a, &b| {
                positions[a]
                    .distance_sq_to(probe)
                    .total_cmp(&positions[b].distance_sq_to(probe))
            }))
        })
    });
    c.bench_function("nearest_backbone_grid_200", |b| {
        b.iter(|| black_box(backbone_grid.nearest(black_box(probe))))
    });

    c.bench_function("sleep_schedule_next_wake", |b| {
        let schedule = SleepSchedule::new(Duration::from_secs(15), Duration::from_millis(100));
        b.iter(|| {
            let mut acc = 0u64;
            for s in 0..1_000u64 {
                acc += schedule.next_wake(SimTime::from_millis(s * 37)).as_micros();
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
