//! Analysis bench: prints the Section 5 worked-example tables (storage cost,
//! contention, warm-up bound, vprfh) and micro-benchmarks the closed forms —
//! they sit on the hot path of the experiment harness and of adaptive
//! schedulers built on top of the library.

use criterion::{criterion_group, criterion_main, Criterion};
use mobiquery::analysis::{
    interference_length_greedy, interference_length_jit, prefetch_length_greedy,
    prefetch_length_jit, warmup_interval_s, AnalysisParams,
};
use mobiquery_experiments::analysis_tables;
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    for table in analysis_tables::run() {
        println!("\n{table}");
    }

    let storage = AnalysisParams::storage_example();
    let contention = AnalysisParams::contention_example();
    let mut group = c.benchmark_group("analysis_formulas");
    group.bench_function("prefetch_lengths", |b| {
        b.iter(|| {
            (
                black_box(prefetch_length_jit(black_box(&storage))),
                black_box(prefetch_length_greedy(black_box(&storage))),
            )
        })
    });
    group.bench_function("interference_lengths", |b| {
        b.iter(|| {
            (
                black_box(interference_length_jit(black_box(&contention))),
                black_box(interference_length_greedy(black_box(&contention))),
            )
        })
    });
    group.bench_function("warmup_interval", |b| {
        b.iter(|| black_box(warmup_interval_s(black_box(&contention), black_box(-8.0))))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
