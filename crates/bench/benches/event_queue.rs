//! Calendar queue vs the retired `BinaryHeap` scheduler, equality-asserted.
//!
//! Criterion twin of `mobiquery_experiments::eventq` (which feeds the bench
//! document's `event_queue` section): the same hold-model workload drives
//! both [`EventQueue`] and [`HeapEventQueue`], and before any timing runs the
//! popped `(time, seq, payload)` traces are asserted identical — the bench
//! itself re-proves the schedulers share one total order every time it runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsn_sim::{EventQueue, HeapEventQueue, SimRng, SimTime};

/// Deterministic hold-model offsets (µs ahead of the clock): a heavy share
/// of ties and sub-period offsets plus a far-future tail, mirroring the
/// protocol simulation's scheduling mix.
fn offsets(events: usize, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..events)
        .map(|_| {
            let draw = rng.gen_range_f64(0.0, 1.0);
            if draw < 0.05 {
                rng.gen_range_f64(1e6, 5e8) as u64
            } else if draw < 0.25 {
                0
            } else {
                rng.gen_range_f64(0.0, 50_000.0) as u64
            }
        })
        .collect()
}

/// One hold-model pass: keep `hold` events resident, pop the earliest,
/// schedule replacements, drain. Macro because the two queues are API twins
/// without a shared trait.
macro_rules! drive {
    ($queue:expr, $offs:expr, $hold:expr) => {{
        let mut queue = $queue;
        let offs: &[u64] = $offs;
        let mut popped: Vec<(SimTime, u64, u32)> = Vec::with_capacity(offs.len());
        let mut next = 0usize;
        while popped.len() < offs.len() {
            if next < offs.len() && queue.len() < $hold {
                let at = SimTime::from_micros(queue.now().as_micros() + offs[next]);
                queue.schedule_at(at, next as u32);
                next += 1;
                continue;
            }
            let ev = queue.pop().expect("pending events remain");
            popped.push((ev.time, ev.seq, ev.event));
        }
        popped
    }};
}

fn bench_event_queue(c: &mut Criterion) {
    let events = 10_000usize;
    for hold in [64usize, 4096] {
        let offs = offsets(events, 42);
        let calendar = drive!(EventQueue::<u32>::new(), &offs, hold);
        let heap = drive!(HeapEventQueue::<u32>::new(), &offs, hold);
        assert_eq!(
            calendar, heap,
            "calendar queue diverged from the heap reference at hold {hold}"
        );

        c.bench_function(format!("calendar_queue_hold_{hold}"), |b| {
            b.iter(|| black_box(drive!(EventQueue::<u32>::new(), &offs, hold)))
        });
        c.bench_function(format!("heap_queue_hold_{hold}"), |b| {
            b.iter(|| black_box(drive!(HeapEventQueue::<u32>::new(), &offs, hold)))
        });
    }
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
