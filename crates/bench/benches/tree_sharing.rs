//! Shared tree cache vs naive one-tree-per-user at multi-user scale.
//!
//! A fleet of users whose query areas overlap should not cost one flood tree
//! per user per period: the reference-counted [`TreeCache`] multiplexes
//! co-located queries onto shared trees. This bench pins both the saving and
//! — before timing anything — the per-user result identity the sharing must
//! preserve: the shared run's query logs are asserted equal to the naive
//! reference run's, user for user, exactly like the raster-vs-reference CCP
//! election bench.
//!
//! [`TreeCache`]: wsn_net::TreeCache

use criterion::{criterion_group, criterion_main, Criterion};
use mobiquery::config::Scheme;
use mobiquery::sim::{MultiSimulation, TreeSharing};
use mobiquery_experiments::scale::scale_scenario;
use std::hint::black_box;

const NODES: usize = 1_000;
const USERS: usize = 64;
const SEED: u64 = 11;

fn bench_tree_sharing(c: &mut Criterion) {
    let scenario = scale_scenario(NODES, Scheme::JustInTime, SEED);

    // The timings only mean anything if sharing changes no user's results.
    let shared = MultiSimulation::new(scenario.clone(), USERS, TreeSharing::Shared)
        .expect("bench scenario is valid")
        .run();
    let naive = MultiSimulation::new(scenario.clone(), USERS, TreeSharing::Naive)
        .expect("bench scenario is valid")
        .run();
    assert_eq!(
        shared.logs, naive.logs,
        "shared and naive runs diverged at {USERS} users"
    );
    assert!(
        shared.trees_built < naive.trees_built,
        "no sharing happened: {} shared vs {} naive trees",
        shared.trees_built,
        naive.trees_built
    );

    let mut group = c.benchmark_group("tree_sharing");
    group.sample_size(10);
    group.bench_function(format!("shared_{NODES}n_{USERS}u"), |b| {
        b.iter(|| {
            black_box(
                MultiSimulation::new(scenario.clone(), USERS, TreeSharing::Shared)
                    .expect("bench scenario is valid")
                    .run(),
            )
        })
    });
    group.bench_function(format!("naive_{NODES}n_{USERS}u"), |b| {
        b.iter(|| {
            black_box(
                MultiSimulation::new(scenario.clone(), USERS, TreeSharing::Naive)
                    .expect("bench scenario is valid")
                    .run(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tree_sharing);
criterion_main!(benches);
