//! Figure 8 bench: regenerates the power-per-sleeping-node table (CCP vs
//! MQ-JIT with early/late profiles) and times runs at the extreme sleep
//! periods.

use criterion::{criterion_group, criterion_main, Criterion};
use mobiquery::config::Scheme;
use mobiquery_experiments::{fig8, run_scenario, ExperimentConfig};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    println!("\n{}", fig8::run(&config));

    let mut group = c.benchmark_group("fig8_power");
    group.sample_size(10);
    for sleep in [3.0, 15.0] {
        let scenario = config
            .base_scenario()
            .with_sleep_period_secs(sleep)
            .with_motion_change_interval(70.0)
            .with_planner_advance(-3.0)
            .with_scheme(Scheme::JustInTime);
        group.bench_function(format!("sleep_{sleep}s"), |b| {
            b.iter(|| black_box(run_scenario(black_box(scenario.clone()))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
