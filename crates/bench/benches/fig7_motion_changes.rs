//! Figure 7 bench: regenerates the success-ratio-vs-motion-change-interval
//! table (planner vs noisy GPS predictor) and times the predictor-driven run.

use criterion::{criterion_group, criterion_main, Criterion};
use mobiquery::config::Scheme;
use mobiquery_experiments::{fig7, run_scenario, ExperimentConfig};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    println!("\n{}", fig7::run(&config));

    let mut group = c.benchmark_group("fig7_motion_changes");
    group.sample_size(10);
    for (label, gps_error) in [("gps_err_0m", 0.0), ("gps_err_10m", 10.0)] {
        let scenario = config
            .base_scenario()
            .with_sleep_period_secs(9.0)
            .with_motion_change_interval(70.0)
            .with_predictor(8.0, gps_error)
            .with_scheme(Scheme::JustInTime);
        group.bench_function(label, |b| {
            b.iter(|| black_box(run_scenario(black_box(scenario.clone()))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
