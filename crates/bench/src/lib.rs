//! Benchmark-only crate: see the `benches/` directory. Each bench regenerates
//! one of the MobiQuery paper's figures (quick mode) and times the
//! simulations behind it; `substrate_micro` covers the substrate crates.
