//! Property-based contracts of the fault-injection layer.
//!
//! Two invariants keep chaos testing trustworthy. First, a zero-rate fault
//! plan must be *inert*: wiring the fault machinery into a run without any
//! faults to inject must leave the output byte-identical to the plain
//! engine in both sharing modes — the golden fixtures stay valid with the
//! fault layer compiled in. Second, the fault schedule must be a pure
//! function of the scenario seed: the same seed yields the same losses,
//! crashes and retries under any worker count, which is what lets CI
//! compare `--jobs 1` against `--jobs 4` byte for byte.

use mobiquery::config::{Scenario, Scheme};
use mobiquery::sim::{FaultConfig, QuerySet, SteppedSim, TreeSharing};
use proptest::prelude::*;
use proptest::TestCaseResult;

fn scenario(seed: u64, nodes: usize, periods: u64) -> Scenario {
    Scenario::paper_default()
        .with_node_count(nodes)
        .with_region_side(300.0)
        .with_duration_secs(2.0 * periods as f64)
        .with_scheme(Scheme::JustInTime)
        .with_seed(seed)
}

fn run_plain(seed: u64, nodes: usize, periods: u64, users: usize, sharing: TreeSharing) -> String {
    let scenario = scenario(seed, nodes, periods);
    let set = QuerySet::generate(&scenario, users);
    let mut sim = SteppedSim::new(scenario, set, sharing).expect("valid scenario");
    sim.run_to_end().expect("plain run completes");
    format!("{:?}", sim.finish())
}

/// Runs the faulted engine and returns (debug of the fault log, debug of
/// the final output) — both must be byte-stable under every invariance
/// property below.
fn run_faulted(
    seed: u64,
    nodes: usize,
    periods: u64,
    users: usize,
    sharing: TreeSharing,
    fault: FaultConfig,
    jobs: usize,
) -> (String, String) {
    let scenario = scenario(seed, nodes, periods);
    let set = QuerySet::generate(&scenario, users);
    let mut sim = SteppedSim::with_faults(scenario, set, sharing, fault)
        .expect("valid fault config")
        .with_jobs(jobs);
    sim.run_to_end().expect("faulted run completes");
    let log = format!("{:?}", sim.fault_log());
    (log, format!("{:?}", sim.finish()))
}

fn assert_zero_rate_is_inert(seed: u64, nodes: usize, users: usize) -> TestCaseResult {
    let periods = 10;
    for sharing in [TreeSharing::Shared, TreeSharing::Naive] {
        let plain = run_plain(seed, nodes, periods, users, sharing);
        let (log, faulted) = run_faulted(
            seed,
            nodes,
            periods,
            users,
            sharing,
            FaultConfig::new(0.0),
            1,
        );
        prop_assert_eq!(
            &faulted,
            &plain,
            "rate-0 faults must not perturb {:?}",
            sharing
        );
        prop_assert!(
            !log.contains("link_bad: [") || log.contains("link_bad: []"),
            "rate-0 plan must schedule nothing"
        );
    }
    Ok(())
}

fn assert_schedule_is_seed_deterministic(
    seed: u64,
    loss: f64,
    burst: f64,
    crash: f64,
    jobs: usize,
) -> TestCaseResult {
    let fault = FaultConfig::new(loss)
        .with_burst(burst)
        .with_crash_rate(crash);
    let (nodes, periods, users) = (70, 10, 3);
    let serial = run_faulted(seed, nodes, periods, users, TreeSharing::Shared, fault, 1);
    let again = run_faulted(seed, nodes, periods, users, TreeSharing::Shared, fault, 1);
    prop_assert_eq!(&again.0, &serial.0, "same seed must replay the schedule");
    prop_assert_eq!(&again.1, &serial.1, "same seed must replay the output");
    let sharded = run_faulted(
        seed,
        nodes,
        periods,
        users,
        TreeSharing::Shared,
        fault,
        jobs,
    );
    prop_assert_eq!(
        &sharded.0,
        &serial.0,
        "fault schedule must not depend on jobs={}",
        jobs
    );
    prop_assert_eq!(
        &sharded.1,
        &serial.1,
        "faulted output must not depend on jobs={}",
        jobs
    );
    Ok(())
}

proptest! {
    /// A zero-rate fault plan leaves both sharing modes byte-identical to
    /// the plain engine for arbitrary seeds and deployment sizes.
    #[test]
    fn zero_rate_faults_are_inert(
        seed in any::<u64>(),
        nodes in 40usize..110,
        users in 1usize..4,
    ) {
        assert_zero_rate_is_inert(seed, nodes, users)?;
    }

    /// The fault schedule and the faulted output are pure functions of the
    /// seed, independent of the worker count used to shard resolution.
    #[test]
    fn fault_schedules_are_seed_deterministic_for_any_jobs(
        seed in any::<u64>(),
        loss in 0.01f64..0.6,
        burst in 1.0f64..8.0,
        crash in 0.0f64..0.1,
        jobs in 2usize..7,
    ) {
        assert_schedule_is_seed_deterministic(seed, loss, burst, crash, jobs)?;
    }
}
