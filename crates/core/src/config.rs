//! Scenario configuration for protocol simulations.
//!
//! A [`Scenario`] bundles every knob of the evaluation in Section 6.1:
//! deployment, radio, duty cycle, query parameters, user motion, the motion-
//! profile source and the prefetching scheme. Builders keep experiment code
//! readable (`Scenario::paper_default().with_sleep_period_secs(15.0)...`).

use crate::analysis::AnalysisParams;
use crate::error::ConfigError;
use crate::prefetch::{PrefetchScheme, PrefetchTiming};
use crate::query::{MessageSizes, QuerySpec};
use serde::{Deserialize, Serialize};
use wsn_geom::{Point, Rect};
use wsn_mobility::{GpsModel, MotionConfig, ProfileSource};
use wsn_net::{MacConfig, RadioConfig, SleepSchedule};
use wsn_power::ccp::CcpConfig;
use wsn_sim::Duration;

/// Re-export of the prefetching scheme under the name used throughout the
/// experiment harness ("which scheme is this run using?").
pub type Scheme = PrefetchScheme;

/// A complete simulation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of sensor nodes deployed uniformly at random.
    pub node_count: usize,
    /// Deployment region (a square of side `region_side`).
    pub region_side_m: f64,
    /// Radio parameters (range, bandwidth, power profile).
    pub radio: RadioConfig,
    /// MAC parameters (backoff, contention-loss model).
    pub mac: MacConfig,
    /// CCP parameters (sensing range, coverage degree).
    pub ccp: CcpConfig,
    /// Duty-cycle sleep period for non-backbone nodes, in seconds.
    pub sleep_period_s: f64,
    /// Active window of the power-save schedule, in seconds.
    pub active_window_s: f64,
    /// The query issued by the user.
    pub query: QuerySpec,
    /// Anycast acceptance radius `Rp`: the prefetch message is accepted by the
    /// first backbone node within this distance of the pickup point.
    pub pickup_radius_m: f64,
    /// Message sizes for MAC timing.
    pub messages: MessageSizes,
    /// Ground-truth user motion parameters.
    pub motion: MotionConfig,
    /// How motion profiles are produced (oracle, planner, predictor).
    pub profile_source: ProfileSource,
    /// The prefetching scheme under test.
    pub scheme: Scheme,
    /// Fidelity threshold for the success-ratio metric.
    pub fidelity_threshold: f64,
    /// Maximum number of MAC-level retransmissions for control messages
    /// (prefetch and setup frames).
    pub max_retries: u32,
    /// Capacity of one power-save active window: the number of buffered
    /// frames that can be handed to sleeping nodes network-wide during a
    /// single 100 ms window (the 802.11 PSM ATIM/beacon bottleneck). Offered
    /// load beyond this is deferred to later windows, which is what makes
    /// greedy prefetching's concentrated tree setup expensive.
    pub psm_window_capacity: u32,
    /// RNG seed; every run with the same scenario is bit-for-bit reproducible.
    pub seed: u64,
}

impl Scenario {
    /// The paper's evaluation settings (Section 6.1): 200 nodes in a
    /// 450 m × 450 m region, 100 ms active window, 150 m query radius, 105 m
    /// communication range, 50 m sensing range, a query every 2 s with a 1 s
    /// freshness bound, 2 Mb/s radios, walking user, oracle motion profile,
    /// just-in-time prefetching, 9 s sleep period.
    pub fn paper_default() -> Self {
        Scenario {
            node_count: 200,
            region_side_m: 450.0,
            radio: RadioConfig::paper_default(),
            mac: MacConfig::paper_default(),
            ccp: CcpConfig::paper_default(),
            sleep_period_s: 9.0,
            active_window_s: 0.1,
            query: QuerySpec::paper_default(),
            pickup_radius_m: 50.0,
            messages: MessageSizes::default(),
            motion: MotionConfig::paper_default(),
            profile_source: ProfileSource::Oracle,
            scheme: Scheme::JustInTime,
            fidelity_threshold: 0.95,
            max_retries: 3,
            psm_window_capacity: 700,
            seed: 1,
        }
    }

    /// Sets the number of nodes.
    pub fn with_node_count(mut self, n: usize) -> Self {
        self.node_count = n;
        self
    }

    /// Sets the square region's side length (metres) for both the deployment
    /// and the user's motion, and scales the starting corner accordingly.
    pub fn with_region_side(mut self, side_m: f64) -> Self {
        self.region_side_m = side_m;
        self.motion.region = Rect::square(side_m);
        self.motion.start = Point::new(side_m * 0.05, side_m * 0.05);
        self
    }

    /// Sets the duty-cycle sleep period in seconds.
    pub fn with_sleep_period_secs(mut self, secs: f64) -> Self {
        self.sleep_period_s = secs;
        self
    }

    /// Sets the user's speed range in m/s.
    pub fn with_speed_range(mut self, min: f64, max: f64) -> Self {
        self.motion.speed_min = min;
        self.motion.speed_max = max;
        self
    }

    /// Sets the interval between user motion changes, in seconds.
    pub fn with_motion_change_interval(mut self, secs: f64) -> Self {
        self.motion.change_interval = secs;
        self
    }

    /// Sets the simulation / query lifetime in seconds (both the motion
    /// duration and the query lifetime).
    pub fn with_duration_secs(mut self, secs: f64) -> Self {
        self.motion.duration = secs;
        self.query.lifetime = Duration::from_secs_f64(secs);
        self
    }

    /// Sets the prefetching scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the motion-profile source.
    pub fn with_profile_source(mut self, source: ProfileSource) -> Self {
        self.profile_source = source;
        self
    }

    /// Uses a planner profile source with the given advance time `Ta` (s).
    pub fn with_planner_advance(mut self, advance_secs: f64) -> Self {
        self.profile_source = ProfileSource::Planner { advance_secs };
        self
    }

    /// Uses a history-based predictor profile source with the given GPS
    /// sampling period (s) and maximum location error (m).
    pub fn with_predictor(mut self, sampling_period_secs: f64, gps_error_m: f64) -> Self {
        self.profile_source = ProfileSource::Predictor {
            sampling_period_secs,
            gps: GpsModel::new(gps_error_m),
        };
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The deployment region as a rectangle.
    pub fn region(&self) -> Rect {
        Rect::square(self.region_side_m)
    }

    /// The power-save schedule duty-cycled nodes follow.
    pub fn sleep_schedule(&self) -> SleepSchedule {
        SleepSchedule::new(
            Duration::from_secs_f64(self.sleep_period_s),
            Duration::from_secs_f64(self.active_window_s),
        )
    }

    /// The prefetch-timing parameters (Equation 10 inputs).
    pub fn prefetch_timing(&self) -> PrefetchTiming {
        PrefetchTiming {
            period: self.query.period,
            freshness: self.query.freshness,
            sleep_period: Duration::from_secs_f64(self.sleep_period_s),
        }
    }

    /// The analysis parameters corresponding to this scenario, for comparing
    /// simulated behaviour against the Section 5 bounds. The prefetch speed
    /// is estimated from the radio bandwidth, message size and an assumed
    /// 5-hop collector spacing, mirroring the paper's own estimate.
    pub fn analysis_params(&self) -> AnalysisParams {
        let mean_speed = (self.motion.speed_min + self.motion.speed_max) / 2.0;
        let effective_bw = self.radio.bandwidth_bps * 0.13; // MAC/routing overhead derating
        AnalysisParams {
            period_s: self.query.period.as_secs_f64(),
            freshness_s: self.query.freshness.as_secs_f64(),
            sleep_s: self.sleep_period_s,
            lifetime_s: self.query.lifetime.as_secs_f64(),
            user_speed_mps: mean_speed,
            prefetch_speed_mps: crate::analysis::prefetch_speed_mps(
                100.0,
                5,
                self.messages.prefetch_bytes,
                effective_bw,
            ),
            query_radius_m: self.query.radius_m,
            comm_range_m: self.radio.comm_range_m,
        }
    }

    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid field found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.node_count == 0 {
            return Err(ConfigError::new("the deployment needs at least one node"));
        }
        if !(self.region_side_m.is_finite() && self.region_side_m > 0.0) {
            return Err(ConfigError::new("the region side must be positive"));
        }
        if !(self.sleep_period_s.is_finite() && self.sleep_period_s > 0.0) {
            return Err(ConfigError::new("the sleep period must be positive"));
        }
        if !(self.active_window_s > 0.0 && self.active_window_s <= self.sleep_period_s) {
            return Err(ConfigError::new(
                "the active window must be positive and no longer than the sleep period",
            ));
        }
        if !(self.pickup_radius_m.is_finite() && self.pickup_radius_m > 0.0) {
            return Err(ConfigError::new(
                "the pickup (anycast) radius must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.fidelity_threshold) {
            return Err(ConfigError::new(
                "the fidelity threshold must lie in [0, 1]",
            ));
        }
        if !(self.motion.duration.is_finite() && self.motion.duration > 0.0) {
            return Err(ConfigError::new("the simulation duration must be positive"));
        }
        self.query.validate()?;
        Ok(())
    }
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_and_matches_section_6_1() {
        let s = Scenario::paper_default();
        assert!(s.validate().is_ok());
        assert_eq!(s.node_count, 200);
        assert_eq!(s.region_side_m, 450.0);
        assert_eq!(s.query.radius_m, 150.0);
        assert_eq!(s.radio.comm_range_m, 105.0);
        assert_eq!(s.ccp.sensing_range_m, 50.0);
        assert_eq!(s.query.period, Duration::from_secs(2));
        assert_eq!(s.query.freshness, Duration::from_secs(1));
        assert_eq!(s.active_window_s, 0.1);
        assert_eq!(s.radio.bandwidth_bps, 2_000_000.0);
    }

    #[test]
    fn builders_adjust_linked_fields() {
        let s = Scenario::paper_default()
            .with_region_side(300.0)
            .with_duration_secs(100.0)
            .with_speed_range(6.0, 10.0)
            .with_sleep_period_secs(15.0)
            .with_scheme(Scheme::Greedy)
            .with_seed(99);
        assert_eq!(s.motion.region, Rect::square(300.0));
        assert_eq!(s.motion.duration, 100.0);
        assert_eq!(s.query.lifetime, Duration::from_secs(100));
        assert_eq!(s.motion.speed_min, 6.0);
        assert_eq!(s.sleep_period_s, 15.0);
        assert_eq!(s.scheme, Scheme::Greedy);
        assert_eq!(s.seed, 99);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        assert!(Scenario::paper_default()
            .with_node_count(0)
            .validate()
            .is_err());
        let mut s = Scenario::paper_default();
        s.active_window_s = 20.0;
        assert!(s.validate().is_err());
        let mut s = Scenario::paper_default();
        s.fidelity_threshold = 1.5;
        assert!(s.validate().is_err());
        let mut s = Scenario::paper_default();
        s.pickup_radius_m = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn profile_source_builders() {
        let planner = Scenario::paper_default().with_planner_advance(-8.0);
        assert_eq!(
            planner.profile_source,
            ProfileSource::Planner { advance_secs: -8.0 }
        );
        let predictor = Scenario::paper_default().with_predictor(8.0, 10.0);
        match predictor.profile_source {
            ProfileSource::Predictor {
                sampling_period_secs,
                gps,
            } => {
                assert_eq!(sampling_period_secs, 8.0);
                assert_eq!(gps.max_error_m, 10.0);
            }
            other => panic!("unexpected source {other:?}"),
        }
    }

    #[test]
    fn derived_helpers_are_consistent() {
        let s = Scenario::paper_default().with_sleep_period_secs(15.0);
        assert_eq!(s.sleep_schedule().period(), Duration::from_secs(15));
        let t = s.prefetch_timing();
        assert_eq!(t.sleep_period, Duration::from_secs(15));
        let a = s.analysis_params();
        assert_eq!(a.sleep_s, 15.0);
        assert!(a.prefetch_speed_mps > a.user_speed_mps);
    }
}
