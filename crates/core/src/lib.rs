//! # mobiquery
//!
//! A from-scratch Rust reproduction of **MobiQuery**, the spatiotemporal query
//! service for mobile users in wireless sensor networks (Lu, Xing, Chipara,
//! Fok, Bhattacharya — Washington University in St. Louis, WUCSE-2004-27 /
//! ICDCS 2005).
//!
//! A *spatiotemporal query* lets a mobile user (a firefighter, a search-and-
//! rescue robot) periodically gather data from all sensors within a radius
//! `Rq` of their **current** position, with hard temporal constraints: the
//! k-th result is due at `k·Tperiod` and may only aggregate readings at most
//! `Tfresh` seconds old. The hard part is that sensor nodes sleep almost all
//! of the time (duty cycles below 1 %), so naively disseminating the query at
//! the start of each period reaches only the few nodes that happen to be
//! awake.
//!
//! MobiQuery solves this with **prefetching**: the user's proxy attaches a
//! *motion profile* (predicted future path) to the query, and the network
//! forwards a prefetch message from pickup point to pickup point ahead of the
//! user, waking the right nodes at the right time. The paper's core
//! contribution is **just-in-time (JIT) prefetching**, which delays each
//! forwarding step as long as the temporal constraints allow (Equation 10),
//! and thereby bounds storage cost (Eq. 12), network contention (Section 5.4)
//! and the warm-up interval after an unexpected motion change (Eq. 16).
//!
//! ## Crate layout
//!
//! * [`query`] — the query specification `(α, F, A(Pu(t)), Tperiod, Tfresh, Td)`.
//! * [`config`] — simulation / protocol configuration mirroring Section 6.1.
//! * [`prefetch`] — the prefetching schemes (JIT, greedy, none) and the
//!   forwarding-time bound.
//! * [`collection`] — the sub-deadline heuristic of Equation 1.
//! * [`analysis`] — every closed form of Section 5 (prefetch forwarding time,
//!   storage cost, warm-up interval, network contention, `v*`, `vprfh`).
//! * [`sim`] — the discrete-event protocol simulation tying the substrate
//!   crates together; this is what regenerates the paper's figures.
//! * [`error`] — configuration validation errors.
//!
//! ## Quick start
//!
//! ```
//! use mobiquery::config::{Scenario, Scheme};
//! use mobiquery::sim::Simulation;
//!
//! // A small scenario so the doctest stays fast.
//! let scenario = Scenario::paper_default()
//!     .with_node_count(60)
//!     .with_region_side(250.0)
//!     .with_duration_secs(40.0)
//!     .with_sleep_period_secs(6.0)
//!     .with_scheme(Scheme::JustInTime)
//!     .with_seed(7);
//! let output = Simulation::new(scenario)?.run();
//! assert!(output.query_log.len() > 0);
//! # Ok::<(), mobiquery::error::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod collection;
pub mod config;
pub mod error;
pub mod prefetch;
pub mod query;
pub mod sim;

pub use config::{Scenario, Scheme};
pub use error::ConfigError;
pub use query::{AggregateKind, QuerySpec};
pub use sim::{SetupBreakdown, Simulation, SimulationOutput};
