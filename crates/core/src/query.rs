//! The spatiotemporal query specification.
//!
//! Section 3 of the paper: a query is the tuple
//! `(α, F, A(Pu(t)), Tperiod, Tfresh, Td)` where `α` is the sensor data type,
//! `F` the in-network aggregation function, `A(Pu(t))` the query area around
//! the user's current position (a circle of radius `Rq` here), `Tperiod` the
//! result period, `Tfresh` the data-freshness bound and `Td` the query
//! lifetime.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use std::fmt;
use wsn_sim::{Duration, SimTime};

/// The in-network aggregation function `F` applied to sensor readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateKind {
    /// Report the minimum reading in the area.
    Min,
    /// Report the maximum reading in the area (e.g. peak temperature near a fire).
    Max,
    /// Report the average reading.
    Average,
    /// Report the number of contributing sensors.
    Count,
}

impl AggregateKind {
    /// Applies the aggregate to a slice of readings.
    ///
    /// Returns `None` for an empty slice (there is nothing to aggregate).
    pub fn apply(self, readings: &[f64]) -> Option<f64> {
        if readings.is_empty() {
            return None;
        }
        Some(match self {
            AggregateKind::Min => readings.iter().copied().fold(f64::INFINITY, f64::min),
            AggregateKind::Max => readings.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggregateKind::Average => readings.iter().sum::<f64>() / readings.len() as f64,
            AggregateKind::Count => readings.len() as f64,
        })
    }

    /// Merges two partial aggregates computed over disjoint node sets.
    ///
    /// `Average` merging needs the contributing counts, which is why the
    /// tree-aggregation code carries `(sum, count)` pairs; this helper covers
    /// the decomposable aggregates used directly.
    pub fn merge(self, a: f64, b: f64) -> f64 {
        match self {
            AggregateKind::Min => a.min(b),
            AggregateKind::Max => a.max(b),
            AggregateKind::Average => (a + b) / 2.0,
            AggregateKind::Count => a + b,
        }
    }
}

impl fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregateKind::Min => "min",
            AggregateKind::Max => "max",
            AggregateKind::Average => "avg",
            AggregateKind::Count => "count",
        };
        f.write_str(s)
    }
}

/// Message sizes used for MAC timing, in application-payload bytes.
///
/// The prefetch size (60 bytes) is the figure the paper uses in its `vprfh`
/// estimate; the others are comparable small control/data frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageSizes {
    /// Prefetch message (query spec + motion profile).
    pub prefetch_bytes: usize,
    /// Query-tree setup message.
    pub setup_bytes: usize,
    /// A data report / partial aggregate.
    pub data_bytes: usize,
    /// The query issued by the proxy into the network.
    pub query_bytes: usize,
}

impl Default for MessageSizes {
    fn default() -> Self {
        MessageSizes {
            prefetch_bytes: 60,
            setup_bytes: 40,
            data_bytes: 36,
            query_bytes: 60,
        }
    }
}

/// A spatiotemporal query issued by a mobile user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// The sensed quantity being queried (`α`), e.g. `"temperature"`.
    pub data_type: String,
    /// The in-network aggregation function (`F`).
    pub aggregate: AggregateKind,
    /// Radius `Rq` of the circular query area around the user, in metres.
    pub radius_m: f64,
    /// Result period `Tperiod`.
    pub period: Duration,
    /// Data freshness bound `Tfresh`.
    pub freshness: Duration,
    /// Query lifetime `Td`.
    pub lifetime: Duration,
}

impl QuerySpec {
    /// The evaluation query of Section 6.1: a 150 m radius area, a result
    /// every 2 s aggregated from readings at most 1 s old, for 400 s.
    pub fn paper_default() -> Self {
        QuerySpec {
            data_type: "temperature".to_string(),
            aggregate: AggregateKind::Max,
            radius_m: 150.0,
            period: Duration::from_secs(2),
            freshness: Duration::from_secs(1),
            lifetime: Duration::from_secs(400),
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any duration is zero, the freshness
    /// bound exceeds the period (the paper requires `Tcollect ≤ Tfresh ≤`
    /// usable slack inside a period), or the radius is not positive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.radius_m.is_finite() && self.radius_m > 0.0) {
            return Err(ConfigError::new("query radius Rq must be positive"));
        }
        if self.period.is_zero() {
            return Err(ConfigError::new("query period Tperiod must be positive"));
        }
        if self.freshness.is_zero() {
            return Err(ConfigError::new("freshness bound Tfresh must be positive"));
        }
        if self.freshness > self.period {
            return Err(ConfigError::new(
                "freshness bound Tfresh must not exceed the query period Tperiod",
            ));
        }
        if self.lifetime < self.period {
            return Err(ConfigError::new(
                "query lifetime Td must cover at least one period",
            ));
        }
        Ok(())
    }

    /// Number of query results expected over the query lifetime.
    pub fn result_count(&self) -> u64 {
        self.lifetime.as_micros() / self.period.as_micros()
    }

    /// The deadline of the k-th result (1-based): `k · Tperiod`.
    pub fn deadline(&self, k: u64) -> SimTime {
        SimTime::ZERO + self.period * k
    }

    /// The earliest instant a reading for the k-th result may be taken
    /// without violating freshness: `k · Tperiod − Tfresh`.
    pub fn earliest_reading(&self, k: u64) -> SimTime {
        self.deadline(k) - self.freshness
    }
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let q = QuerySpec::paper_default();
        assert!(q.validate().is_ok());
        assert_eq!(q.result_count(), 200);
        assert_eq!(q.deadline(3), SimTime::from_secs(6));
        assert_eq!(q.earliest_reading(3), SimTime::from_secs(5));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut q = QuerySpec::paper_default();
        q.radius_m = 0.0;
        assert!(q.validate().is_err());

        let mut q = QuerySpec::paper_default();
        q.freshness = Duration::from_secs(5);
        assert!(
            q.validate().is_err(),
            "freshness beyond the period must be rejected"
        );

        let mut q = QuerySpec::paper_default();
        q.period = Duration::ZERO;
        assert!(q.validate().is_err());

        let mut q = QuerySpec::paper_default();
        q.lifetime = Duration::from_millis(500);
        assert!(q.validate().is_err());
    }

    #[test]
    fn aggregates_compute_expected_values() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(AggregateKind::Min.apply(&data), Some(1.0));
        assert_eq!(AggregateKind::Max.apply(&data), Some(3.0));
        assert_eq!(AggregateKind::Average.apply(&data), Some(2.0));
        assert_eq!(AggregateKind::Count.apply(&data), Some(3.0));
        assert_eq!(AggregateKind::Max.apply(&[]), None);
    }

    #[test]
    fn merge_is_consistent_for_decomposable_aggregates() {
        assert_eq!(AggregateKind::Min.merge(1.0, 2.0), 1.0);
        assert_eq!(AggregateKind::Max.merge(1.0, 2.0), 2.0);
        assert_eq!(AggregateKind::Count.merge(3.0, 4.0), 7.0);
    }

    #[test]
    fn message_sizes_default_matches_paper_prefetch_example() {
        assert_eq!(MessageSizes::default().prefetch_bytes, 60);
    }

    #[test]
    fn display_of_aggregate_kinds() {
        for k in [
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Average,
            AggregateKind::Count,
        ] {
            assert!(!format!("{k}").is_empty());
        }
    }
}
