//! Prefetching schemes and the just-in-time forwarding bound.
//!
//! Prefetching is what lets MobiQuery meet spatiotemporal constraints despite
//! duty cycles: a prefetch message travels ahead of the user from pickup
//! point to pickup point, carrying the query and motion profile, so the nodes
//! of each future query area can be woken just in time.
//!
//! The key design parameter derived in Section 5.1 is **when** the (k−1)-th
//! collector should forward the prefetch message to the k-th pickup point.
//! Equation 10:
//!
//! ```text
//! tsend(k−1) ≤ (k−1)·Tperiod − Tsleep − 2·Tfresh
//! ```
//!
//! Greedy prefetching forwards immediately instead; No-Prefetching is the
//! paper's baseline that broadcasts the query at the start of every period.

use serde::{Deserialize, Serialize};
use std::fmt;
use wsn_sim::{Duration, SimTime};

/// The prefetching scheme run by the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetchScheme {
    /// Just-in-time prefetching (MQ-JIT): hold the prefetch message and
    /// forward it at the Equation-10 bound.
    JustInTime,
    /// Greedy prefetching (MQ-GP): forward the prefetch message immediately.
    Greedy,
    /// No prefetching (NP): broadcast the query into the current area at the
    /// start of each period.
    None,
}

impl PrefetchScheme {
    /// Returns `true` when the scheme uses prefetch messages at all.
    pub fn uses_prefetching(self) -> bool {
        !matches!(self, PrefetchScheme::None)
    }

    /// Short display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PrefetchScheme::JustInTime => "MQ-JIT",
            PrefetchScheme::Greedy => "MQ-GP",
            PrefetchScheme::None => "NP",
        }
    }
}

impl fmt::Display for PrefetchScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The temporal parameters the forwarding bound depends on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchTiming {
    /// Query period `Tperiod`.
    pub period: Duration,
    /// Data freshness bound `Tfresh`.
    pub freshness: Duration,
    /// Duty-cycle sleep period `Tsleep`.
    pub sleep_period: Duration,
}

impl PrefetchTiming {
    /// The latest time the prefetch message for the k-th query (1-based) may
    /// be forwarded by the (k−1)-th collector so that the k-th deadline is
    /// still met — Equation 10, `tsend(k−1) ≤ (k−1)·Tperiod − Tsleep −
    /// 2·Tfresh`.
    ///
    /// The bound can be negative for small `k` (at the start of a query or
    /// right after a motion change); callers clamp to "now", which is exactly
    /// the greedy catch-up behaviour the paper prescribes during warm-up.
    pub fn jit_send_bound_secs(&self, k: u64) -> f64 {
        let k_minus_1 = k.saturating_sub(1) as f64;
        k_minus_1 * self.period.as_secs_f64()
            - self.sleep_period.as_secs_f64()
            - 2.0 * self.freshness.as_secs_f64()
    }

    /// [`Self::jit_send_bound_secs`] as a clamped simulation instant.
    pub fn jit_send_bound(&self, k: u64) -> SimTime {
        SimTime::from_secs_f64(self.jit_send_bound_secs(k))
    }

    /// The latest time the k-th collector must *receive* the prefetch message
    /// so the deadline can be met — Equation 8,
    /// `trecv(k) ≤ k·Tperiod − Tsleep − 2·Tfresh`.
    pub fn recv_bound_secs(&self, k: u64) -> f64 {
        k as f64 * self.period.as_secs_f64()
            - self.sleep_period.as_secs_f64()
            - 2.0 * self.freshness.as_secs_f64()
    }

    /// When the given scheme forwards the prefetch message for query `k`,
    /// given that the forwarding node is ready (has the message and the
    /// profile) at `ready_at`.
    ///
    /// * JIT: at the Equation-10 bound, but never before `ready_at` (greedy
    ///   catch-up during warm-up).
    /// * Greedy: immediately at `ready_at`.
    /// * None: not applicable (returns `ready_at`).
    pub fn send_time(&self, scheme: PrefetchScheme, k: u64, ready_at: SimTime) -> SimTime {
        match scheme {
            PrefetchScheme::JustInTime => ready_at.max(self.jit_send_bound(k)),
            PrefetchScheme::Greedy | PrefetchScheme::None => ready_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> PrefetchTiming {
        // The storage-cost example of Section 5.2: Tperiod = 10 s,
        // Tfresh = 5 s, Tsleep = 15 s.
        PrefetchTiming {
            period: Duration::from_secs(10),
            freshness: Duration::from_secs(5),
            sleep_period: Duration::from_secs(15),
        }
    }

    #[test]
    fn equation_10_bound_values() {
        let t = timing();
        // tsend(k-1) = (k-1)*10 - 15 - 10 = (k-1)*10 - 25.
        assert_eq!(t.jit_send_bound_secs(1), -25.0);
        assert_eq!(t.jit_send_bound_secs(3), -5.0);
        assert_eq!(t.jit_send_bound_secs(4), 5.0);
        assert_eq!(t.jit_send_bound_secs(10), 65.0);
    }

    #[test]
    fn recv_bound_is_one_period_after_send_bound() {
        let t = timing();
        for k in 1..20 {
            assert!(
                (t.recv_bound_secs(k) - (t.jit_send_bound_secs(k) + t.period.as_secs_f64())).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn negative_bounds_clamp_to_zero_instant() {
        let t = timing();
        assert_eq!(t.jit_send_bound(1), SimTime::ZERO);
        assert_eq!(t.jit_send_bound(4), SimTime::from_secs(5));
    }

    #[test]
    fn jit_never_sends_before_ready() {
        let t = timing();
        let ready = SimTime::from_secs(50);
        // Bound for k=4 is 5 s, which is before ready: catch up greedily.
        assert_eq!(t.send_time(PrefetchScheme::JustInTime, 4, ready), ready);
        // Bound for k=10 is 65 s, after ready: hold until the bound.
        assert_eq!(
            t.send_time(PrefetchScheme::JustInTime, 10, ready),
            SimTime::from_secs(65)
        );
    }

    #[test]
    fn greedy_sends_immediately() {
        let t = timing();
        let ready = SimTime::from_secs(12);
        assert_eq!(t.send_time(PrefetchScheme::Greedy, 10, ready), ready);
        assert_eq!(t.send_time(PrefetchScheme::None, 10, ready), ready);
    }

    #[test]
    fn jit_forwarding_interval_is_one_period_in_steady_state() {
        let t = timing();
        // Once past warm-up, consecutive send bounds are exactly Tperiod apart,
        // which is the observation behind the storage-cost analysis.
        for k in 5..15 {
            let gap = t.jit_send_bound_secs(k + 1) - t.jit_send_bound_secs(k);
            assert!((gap - t.period.as_secs_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn scheme_labels_match_paper() {
        assert_eq!(PrefetchScheme::JustInTime.label(), "MQ-JIT");
        assert_eq!(PrefetchScheme::Greedy.label(), "MQ-GP");
        assert_eq!(PrefetchScheme::None.label(), "NP");
        assert!(PrefetchScheme::JustInTime.uses_prefetching());
        assert!(!PrefetchScheme::None.uses_prefetching());
    }
}
