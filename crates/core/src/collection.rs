//! Data collection: the sub-deadline heuristic of Equation 1.
//!
//! During data collection every parent in the query tree waits for its
//! children before forwarding its partial aggregate, but must not wait so
//! long that the result misses the user. The paper assigns each node `u` a
//! sub-deadline
//!
//! ```text
//! du = k·Tperiod − |u p| / (Rp + Rq) · Tfresh          (Equation 1)
//! ```
//!
//! where `|u p|` is the distance from `u` to the collector `p` and `Rp + Rq`
//! bounds the distance of any node in the query area from the collector:
//! the further a node is from the collector, the earlier it times out, so
//! partial aggregates flow inward and arrive by the deadline.

use serde::{Deserialize, Serialize};
use wsn_sim::{Duration, SimTime};

/// Parameters of the sub-deadline assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectionTiming {
    /// Query period `Tperiod`.
    pub period: Duration,
    /// Freshness bound `Tfresh`.
    pub freshness: Duration,
    /// Query-area radius `Rq` in metres.
    pub query_radius_m: f64,
    /// Anycast acceptance radius `Rp` in metres (the collector lies within
    /// `Rp` of the pickup point).
    pub pickup_radius_m: f64,
}

impl CollectionTiming {
    /// The sub-deadline `du` for a node at distance `distance_to_collector_m`
    /// from the collector, for the k-th query (Equation 1).
    ///
    /// Distances are clamped into `[0, Rp + Rq]` so that nodes marginally
    /// outside the nominal maximum distance (possible with location error or
    /// when the collector sits at the edge of its acceptance disk) still get
    /// a causally sensible deadline.
    pub fn sub_deadline(&self, k: u64, distance_to_collector_m: f64) -> SimTime {
        let max_d = self.pickup_radius_m + self.query_radius_m;
        let d = distance_to_collector_m.clamp(0.0, max_d);
        let fraction = if max_d > 0.0 { d / max_d } else { 0.0 };
        let deadline = self.period.as_secs_f64() * k as f64;
        SimTime::from_secs_f64(deadline - fraction * self.freshness.as_secs_f64())
    }

    /// The leaf reading time for the k-th query: `k·Tperiod − Tfresh`, the
    /// earliest instant a reading satisfies the freshness constraint at the
    /// deadline.
    pub fn leaf_reading_time(&self, k: u64) -> SimTime {
        SimTime::from_secs_f64(self.period.as_secs_f64() * k as f64 - self.freshness.as_secs_f64())
    }

    /// The deadline of the k-th query, `k·Tperiod`.
    pub fn deadline(&self, k: u64) -> SimTime {
        SimTime::from_secs_f64(self.period.as_secs_f64() * k as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> CollectionTiming {
        CollectionTiming {
            period: Duration::from_secs(2),
            freshness: Duration::from_secs(1),
            query_radius_m: 150.0,
            pickup_radius_m: 50.0,
        }
    }

    #[test]
    fn collector_waits_until_the_deadline() {
        let t = timing();
        // Distance 0 (the collector itself) times out exactly at the deadline.
        assert_eq!(t.sub_deadline(3, 0.0), SimTime::from_secs(6));
    }

    #[test]
    fn farthest_node_times_out_a_freshness_interval_early() {
        let t = timing();
        // Distance Rp + Rq = 200 m: du = k·Tperiod − Tfresh, i.e. the leaf
        // reading time.
        assert_eq!(t.sub_deadline(3, 200.0), SimTime::from_secs(5));
        assert_eq!(t.sub_deadline(3, 200.0), t.leaf_reading_time(3));
    }

    #[test]
    fn sub_deadline_decreases_with_distance() {
        let t = timing();
        let mut last = SimTime::MAX;
        for d in [0.0, 25.0, 75.0, 125.0, 200.0] {
            let du = t.sub_deadline(5, d);
            assert!(du <= last, "sub-deadline must not increase with distance");
            last = du;
        }
    }

    #[test]
    fn distances_beyond_the_maximum_are_clamped() {
        let t = timing();
        assert_eq!(t.sub_deadline(2, 500.0), t.sub_deadline(2, 200.0));
        assert_eq!(t.sub_deadline(2, -5.0), t.sub_deadline(2, 0.0));
    }

    #[test]
    fn every_sub_deadline_lies_inside_the_freshness_window() {
        let t = timing();
        for k in 1..10u64 {
            for d in [0.0, 10.0, 60.0, 140.0, 199.0] {
                let du = t.sub_deadline(k, d);
                assert!(du >= t.leaf_reading_time(k));
                assert!(du <= t.deadline(k));
            }
        }
    }
}
