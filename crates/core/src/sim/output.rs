//! The results of one simulation run.

use crate::config::Scheme;
use serde::{Deserialize, Serialize};
use wsn_metrics::QueryLog;

/// Aggregated results of a single MobiQuery simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationOutput {
    /// The prefetching scheme that was run.
    pub scheme: Scheme,
    /// Per-query outcomes (one record per pickup point).
    pub query_log: QueryLog,
    /// Fraction of queries that met the deadline with fidelity above the
    /// scenario's threshold (the paper's success ratio).
    pub success_ratio: f64,
    /// Mean per-query data fidelity.
    pub mean_fidelity: f64,
    /// Average power per duty-cycled (sleeping) node over the run, in watts —
    /// the Figure 8 metric.
    pub mean_sleeping_power_w: f64,
    /// Average power per duty-cycled node if no query had been issued (CCP
    /// alone), in watts — Figure 8's baseline curve.
    pub baseline_sleeping_power_w: f64,
    /// Number of backbone (always-active) nodes elected by CCP.
    pub backbone_count: usize,
    /// Total number of nodes in the deployment.
    pub node_count: usize,
    /// Frames offered to the channel over the whole run.
    pub frames_sent: u64,
    /// Frames lost to contention.
    pub frames_lost: u64,
    /// Number of query trees actually built (prefetch messages accepted).
    pub trees_built: u64,
    /// Largest number of query trees set up ahead of the user at any instant
    /// (the prefetch length of Section 5.2).
    pub max_prefetch_length: usize,
    /// Mean number of query trees set up ahead of the user, sampled at each
    /// query deadline.
    pub mean_prefetch_length: f64,
    /// Total number of simulation events processed.
    pub events_processed: u64,
}

impl SimulationOutput {
    /// The observed channel loss rate over the whole run.
    pub fn loss_rate(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.frames_lost as f64 / self.frames_sent as f64
        }
    }

    /// The per-query fidelity series (sequence number, fidelity) — the data
    /// behind Figure 5.
    pub fn fidelity_series(&self) -> Vec<(u64, f64)> {
        self.query_log.fidelity_series()
    }

    /// The extra power drawn per sleeping node because of the query service,
    /// compared with running CCP alone, in watts.
    pub fn query_power_overhead_w(&self) -> f64 {
        (self.mean_sleeping_power_w - self.baseline_sleeping_power_w).max(0.0)
    }
}
