//! Struct-of-arrays node state with a slot free list.
//!
//! At churn scale (10⁵–10⁶ nodes, nodes dying and joining every period) the
//! hot node state must stay flat and bounded: [`NodeStore`] keeps positions,
//! residual energy, election priorities and liveness as parallel arrays
//! indexed by **slot**, and recycles dead slots through a LIFO free list so a
//! long churning run never grows beyond its peak population. Slot indices
//! are what the rest of the world already uses as `NodeId`s, so the spatial
//! grids, power plan and neighbour table keep indexing stably across churn.
//!
//! A recycled slot is a **new node**: it gets a fresh monotonically
//! increasing uid, and its election priority is derived from that uid (not
//! the slot), so a joiner can never inherit the priority — and hence the
//! election fate — of the node whose slot it happens to reuse.

use wsn_geom::{Point, Rect};
use wsn_sim::{mix_seed, SimRng};

/// Stream tag for per-node election priorities (keyed by uid).
const PRIORITY_STREAM: u64 = 0x5EED_0000_0000_0004;

/// Initial residual energy of every node, in joules (an accounting unit for
/// the churn experiments, not a radio model — [`wsn_power::EnergyLedger`]
/// owns the per-state radio power numbers).
pub const INITIAL_ENERGY_J: f64 = 1.0;

/// The election priority of the node with unique id `uid` in a deployment
/// seeded with `seed` — a pure function, so an incremental repair and a
/// from-scratch re-election derive identical orderings.
pub fn priority_for(seed: u64, uid: u64) -> u64 {
    mix_seed(seed, &[PRIORITY_STREAM, uid])
}

/// Slot-indexed struct-of-arrays node state with a free list.
#[derive(Debug, Clone)]
pub struct NodeStore {
    positions: Vec<Point>,
    energy: Vec<f64>,
    priority: Vec<u64>,
    alive: Vec<bool>,
    /// Dead slots available for reuse, most recently freed last (LIFO).
    free: Vec<u32>,
    alive_count: usize,
    next_uid: u64,
    seed: u64,
}

impl NodeStore {
    /// Creates a store with every slot alive at the given positions; slot
    /// `s` starts with uid `s`, so the initial priorities match what any
    /// caller derives from [`priority_for`]`(seed, slot)`.
    pub fn new(positions: Vec<Point>, seed: u64) -> Self {
        let n = positions.len();
        let priority = (0..n as u64).map(|uid| priority_for(seed, uid)).collect();
        NodeStore {
            energy: vec![INITIAL_ENERGY_J; n],
            priority,
            alive: vec![true; n],
            free: Vec::new(),
            alive_count: n,
            next_uid: n as u64,
            seed,
            positions,
        }
    }

    /// Slot-indexed positions (dead slots hold their last position). The
    /// borrow the query machinery works against — identical in shape to the
    /// `Vec<Point>` it replaced.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Slot-indexed election priorities (dead slots hold stale values).
    pub fn priorities(&self) -> &[u64] {
        &self.priority
    }

    /// Position of slot `s`.
    pub fn position(&self, s: usize) -> Point {
        self.positions[s]
    }

    /// Residual energy of slot `s`, in joules.
    pub fn energy(&self, s: usize) -> f64 {
        self.energy[s]
    }

    /// Whether slot `s` currently holds a live node.
    pub fn is_alive(&self, s: usize) -> bool {
        self.alive[s]
    }

    /// Total slots ever allocated (the indexing bound for the parallel
    /// arrays); dead slots included.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when no slot was ever allocated.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Live slots in ascending order.
    pub fn alive_slots(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&s| self.alive[s]).collect()
    }

    /// Kills the node in slot `s`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already dead.
    pub fn kill(&mut self, s: usize) {
        assert!(self.alive[s], "slot {s} is already dead");
        self.alive[s] = false;
        self.alive_count -= 1;
        self.free.push(u32::try_from(s).expect("slot fits u32"));
    }

    /// Spawns a new node at `p`, reusing the most recently freed slot if one
    /// exists (otherwise growing the arrays). The node gets a fresh uid and
    /// a priority derived from it, plus full initial energy. Returns the
    /// slot.
    pub fn spawn(&mut self, p: Point) -> usize {
        let uid = self.next_uid;
        self.next_uid += 1;
        let pri = priority_for(self.seed, uid);
        match self.free.pop() {
            Some(s) => {
                let s = s as usize;
                self.positions[s] = p;
                self.energy[s] = INITIAL_ENERGY_J;
                self.priority[s] = pri;
                self.alive[s] = true;
                self.alive_count += 1;
                s
            }
            None => {
                self.positions.push(p);
                self.energy.push(INITIAL_ENERGY_J);
                self.priority.push(pri);
                self.alive.push(true);
                self.alive_count += 1;
                self.positions.len() - 1
            }
        }
    }

    /// Drains `amount` joules from slot `s`, clamped at zero.
    pub fn drain(&mut self, s: usize, amount: f64) {
        self.energy[s] = (self.energy[s] - amount).max(0.0);
    }

    /// Spawns a node at a uniform random position in `region` drawn from
    /// `rng` — the join primitive of the churn plan.
    pub fn spawn_uniform(&mut self, region: Rect, rng: &mut SimRng) -> usize {
        let p = Point::new(
            rng.gen_range_f64(region.min_x, region.max_x),
            rng.gen_range_f64(region.min_y, region.max_y),
        );
        self.spawn(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: usize) -> NodeStore {
        let positions = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        NodeStore::new(positions, 42)
    }

    #[test]
    fn initial_priorities_match_the_pure_function() {
        let s = store(5);
        for slot in 0..5 {
            assert_eq!(s.priorities()[slot], priority_for(42, slot as u64));
        }
        assert_eq!(s.alive_count(), 5);
        assert_eq!(s.alive_slots(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn kill_then_spawn_recycles_lifo_with_fresh_identity() {
        let mut s = store(4);
        let old_priority = s.priorities()[2];
        s.kill(2);
        s.kill(1);
        assert_eq!(s.alive_count(), 2);
        assert_eq!(s.alive_slots(), vec![0, 3]);
        // LIFO: the most recently freed slot (1) is reused first.
        let a = s.spawn(Point::new(9.0, 9.0));
        assert_eq!(a, 1);
        let b = s.spawn(Point::new(8.0, 8.0));
        assert_eq!(b, 2);
        assert_ne!(
            s.priorities()[2],
            old_priority,
            "a recycled slot must not inherit the dead node's priority"
        );
        assert_eq!(s.priorities()[2], priority_for(42, 5));
        assert_eq!(s.energy(2), INITIAL_ENERGY_J);
        assert_eq!(s.len(), 4, "recycling does not grow the arrays");
        // Exhausted free list grows instead.
        let c = s.spawn(Point::new(7.0, 7.0));
        assert_eq!(c, 4);
        assert_eq!(s.len(), 5);
    }

    #[test]
    #[should_panic(expected = "already dead")]
    fn double_kill_panics() {
        let mut s = store(2);
        s.kill(0);
        s.kill(0);
    }

    #[test]
    fn drain_clamps_at_zero() {
        let mut s = store(1);
        s.drain(0, 0.4);
        assert!((s.energy(0) - (INITIAL_ENERGY_J - 0.4)).abs() < 1e-12);
        s.drain(0, 100.0);
        assert_eq!(s.energy(0), 0.0);
    }
}
