//! The stepped multi-user engine: one period boundary at a time.
//!
//! [`super::multi::MultiSimulation`] used to drive the multi-user world
//! through the discrete-event engine in one run-to-completion call, which
//! made runtime admission impossible: the whole [`QuerySet`] had to exist
//! before the first event fired. [`SteppedSim`] replaces the event queue with
//! an explicit walk over period boundaries — boundary `b` performs exactly
//! what the event engine performed at instant `b·T`, in the same order — so a
//! long-lived service can [`SteppedSim::admit`] and [`SteppedSim::retire_at`]
//! users between steps while batch callers just loop to the end.
//!
//! **Boundary semantics.** The event engine seeded every `PeriodInstall`
//! upfront, giving installs lower sequence numbers than any `QueryResolve`
//! scheduled during the run; at the shared instant `k·T` the installs for
//! period `k+1` therefore fired before period `k`'s resolves (temporal tree
//! sharing — a tree handed from period to period is never freed and rebuilt).
//! [`SteppedSim::step_period`] reproduces that order literally: boundary `b`
//! first installs period `b+1` (at `now = b·T`, one period ahead of its
//! deadline), then resolves period `b`. Boundary 0 only installs; the final
//! boundary `max_k` only resolves. Per-boundary work and all RNG streams are
//! bit-identical to the retired event loop, which the pinned golden multiuser
//! JSON asserts.

use crate::config::Scenario;
use crate::error::ConfigError;
use crate::sim::churn::{ChurnBatchPlan, ChurnConfig};
use crate::sim::deploy::Deployment;
use crate::sim::multi::{MultiUserOutput, QuerySet, TreeSharing, UserQuery};
use crate::sim::store::{priority_for, NodeStore};
use std::collections::HashMap;
use std::time::Instant;
use wsn_geom::{Circle, Point, SpatialGrid};
use wsn_metrics::{summarize_users, ChurnBatch, FaultBatch, QueryLog, QueryRecord};
use wsn_net::{
    Channel, FaultConfig, FaultPlan, FloodScratch, FloodTree, NeighborTable, NodeId, NodeRole,
    SleepSchedule, TreeCache, TreeCacheError, TreeHandle, TreeKey,
};
use wsn_power::{elect_backbone_priority, PowerPlan, RepairableBackbone};
use wsn_sim::{mix_seed, pool, SimRng, SimTime};

/// Stream tag for per-query scoring draws (loss, wake jitter).
pub(crate) const QUERY_STREAM: u64 = 0x5EED_0000_0000_0003;

/// Retries an install may burn beyond its first attempt when recovery is on.
const MAX_INSTALL_RETRIES: u32 = 3;
/// First retry waits this fraction of a period; each further retry doubles it.
const INSTALL_BACKOFF_FRAC: f64 = 0.05;
/// Energy one install retransmission drains from the collector, in joules.
const RETRY_ENERGY_J: f64 = 0.002;

fn cache_error(e: TreeCacheError) -> ConfigError {
    ConfigError::new(format!("tree cache invariant violated: {e}"))
}

/// A query currently standing in the network.
#[derive(Debug, Clone, Copy)]
struct ActiveQuery {
    center: Point,
    installed_at: SimTime,
    /// Cache handle in [`TreeSharing::Shared`] mode, `None` in naive mode
    /// (the tree then lives in `naive_trees`).
    handle: Option<TreeHandle>,
}

/// Everything churn mode adds to the world: the repairable backbone, the
/// topology epoch (bumped per batch so [`TreeKey`]s from different topologies
/// never share a cached tree) and the per-batch log.
#[derive(Debug)]
struct ChurnState {
    config: ChurnConfig,
    backbone: RepairableBackbone,
    epoch: u32,
    log: Vec<ChurnBatch>,
}

/// Everything fault mode adds to the world: the seeded fault schedule, the
/// faults in force around the current boundary, the recovery epoch (bumped
/// per crash batch so rebuilt trees never share a poisoned key) and the
/// per-boundary counters flushed into the fault log.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// This boundary's crash victims as `(slot, in-period fraction)`,
    /// ascending by slot; cleared (rebooted) at the next boundary.
    crashed: Vec<(usize, f64)>,
    /// Dense mirror of `crashed` for O(1) membership tests in scoring.
    is_crashed: Vec<bool>,
    /// Whether the configured blackout covers the current boundary.
    blackout: bool,
    /// Fault epochs folded into every [`TreeKey`] alongside the churn epoch.
    epoch: u32,
    log: Vec<FaultBatch>,
    // Per-boundary counters, zeroed by `flush_fault_batch`.
    attempts: u64,
    retries: u64,
    failures: u64,
    rebuilt: u64,
    fallbacks: u64,
    retry_energy_j: f64,
}

/// What one faulted install attempt sequence resolved to.
struct InstallOutcome {
    /// Whether any attempt got through.
    success: bool,
    /// Backoff accumulated before the successful attempt, in seconds.
    delay_s: f64,
    /// Attempts burned beyond the first (each drains retry energy).
    extra_attempts: u32,
}

impl FaultState {
    /// Walks the install ack/retry state machine for `(user, k)`: each
    /// attempt fails outright while the collector is crashed, bad-channel or
    /// blacked out, and otherwise fails with the configured loss probability
    /// drawn from the dedicated per-(user, period) install stream. Recovery
    /// retries up to [`MAX_INSTALL_RETRIES`] times behind exponential
    /// backoff; without recovery the first loss is final. At loss 0 with no
    /// forced faults this draws zero random numbers and returns an immediate
    /// success — the rate-0 byte-identity hinge.
    fn install_outcome(
        &mut self,
        user: u32,
        k: u64,
        collector: usize,
        collector_pos: Point,
        boundary: u64,
        period_s: f64,
    ) -> InstallOutcome {
        let forced = self.is_crashed[collector]
            || self.plan.link_bad(collector)
            || self.plan.blacked_out(boundary, collector_pos);
        let loss = self.plan.config().loss;
        let attempts = if self.plan.config().recovery {
            1 + MAX_INSTALL_RETRIES
        } else {
            1
        };
        let mut rng = SimRng::seed_from_u64(self.plan.install_seed(user, k));
        let mut delay_s = 0.0;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
                self.retry_energy_j += RETRY_ENERGY_J;
                delay_s += INSTALL_BACKOFF_FRAC * period_s * f64::from(1u32 << (attempt - 1));
            }
            self.attempts += 1;
            if !forced && !rng.gen_bool(loss) {
                return InstallOutcome {
                    success: true,
                    delay_s,
                    extra_attempts: attempt,
                };
            }
        }
        self.failures += 1;
        InstallOutcome {
            success: false,
            delay_s: 0.0,
            extra_attempts: attempts - 1,
        }
    }

    /// The instant `slot` crashed, in seconds, if it crashed this window
    /// (`deadline` closes the window, which opened one period earlier).
    fn crash_instant(&self, slot: usize, deadline_s: f64, period_s: f64) -> Option<f64> {
        if !self.is_crashed[slot] {
            return None;
        }
        let frac = self
            .crashed
            .iter()
            .find(|&&(s, _)| s == slot)
            .map(|&(_, f)| f)
            .unwrap_or(0.0);
        Some(deadline_s - (1.0 - frac) * period_s)
    }

    /// Whether a crashed ancestor strictly above `node` severs its path to
    /// the collector (recovery-off trees keep such poisoned paths; recovery
    /// rebuilds around them).
    fn severed(&self, tree: &FloodTree, node: NodeId) -> bool {
        let mut cur = node;
        while let Some(parent) = tree.parent_of(cur) {
            if self.is_crashed[parent.index()] {
                return true;
            }
            cur = parent;
        }
        false
    }
}

/// The multi-user protocol world, stepped one period boundary at a time.
#[derive(Debug)]
struct MultiUserWorld {
    scenario: Scenario,
    /// Struct-of-arrays node state (positions, priorities, energy, liveness,
    /// slot free list). In a static run every slot just stays alive.
    store: NodeStore,
    neighbors: NeighborTable,
    plan: PowerPlan,
    all_nodes_grid: SpatialGrid,
    backbone_grid: SpatialGrid,
    schedule: SleepSchedule,
    channel: Channel,
    query_set: QuerySet,
    sharing: TreeSharing,
    cache: TreeCache,
    naive_scratch: FloodScratch,
    naive_trees: HashMap<(u32, u64), FloodTree>,
    naive_built: u64,
    active: HashMap<(u32, u64), ActiveQuery>,
    /// Wake-up cost of each distinct tree, memoised by construction key so
    /// both sharing modes charge bit-identical costs.
    tree_cost: HashMap<TreeKey, f64>,
    logs: Vec<QueryLog>,
    installs: u64,
    /// Sleeping-node wake seconds actually paid under the selected mode.
    node_wake_seconds: f64,
    /// Sleeping-node wake seconds the naive one-tree-per-user baseline would
    /// pay for the same installs (equal to `node_wake_seconds` in naive mode).
    node_wake_seconds_naive: f64,
    /// Churn mode, when enabled via [`SteppedSim::with_churn`].
    churn: Option<ChurnState>,
    /// Fault-injection mode, when enabled via [`SteppedSim::with_faults`].
    fault: Option<FaultState>,
}

impl MultiUserWorld {
    fn deadline(&self, k: u64) -> SimTime {
        SimTime::ZERO + self.scenario.query.period * k
    }

    /// The pickup point for `(user, k)` predicted from the profiles delivered
    /// by `now`: the qualifying profile with the latest `effective_from` not
    /// exceeding the deadline, falling back to ground truth when none has
    /// been delivered yet.
    fn predicted_pickup(user: &UserQuery, now: SimTime, deadline: SimTime) -> Point {
        let mut best = None;
        for profile in &user.profiles {
            if profile.generated_at <= now && profile.effective_from <= deadline {
                best = Some(profile);
            }
        }
        match best {
            Some(profile) => profile.predicted_position(deadline),
            None => user.motion.position_at(deadline),
        }
    }

    /// Snaps a predicted pickup point to the centre of its lattice cell (side
    /// `Rq`), clamped into the region. Queries in the same cell share a
    /// collector and a tree; the naive mode uses the same snapped centre, so
    /// its trees are bit-identical to the shared ones.
    fn quantized_center(&self, p: Point) -> Point {
        let cell = self.scenario.query.radius_m;
        let region = self.scenario.region();
        let snap = |v: f64, lo: f64, hi: f64| {
            (((v - lo) / cell).floor() * cell + lo + cell / 2.0).clamp(lo, hi)
        };
        Point::new(
            snap(p.x, region.min_x, region.max_x),
            snap(p.y, region.min_y, region.max_y),
        )
    }

    /// The epoch folded into every [`TreeKey`]: churn batches and fault
    /// recovery each bump their own monotone counter, and the sum is still
    /// monotone — a key minted before any bump can never be re-minted after.
    fn tree_epoch(&self) -> u32 {
        self.churn.as_ref().map_or(0, |c| c.epoch) + self.fault.as_ref().map_or(0, |f| f.epoch)
    }

    /// Installs period `k`'s queries for every user active in `k`, one period
    /// ahead of the deadline (`now = (k-1)·T`). Under fault injection each
    /// install first walks the ack/retry machine: a lost install is retried
    /// behind exponential backoff (recovery on) or abandoned (recovery off),
    /// retransmissions drain collector energy, and a successful retry's
    /// backoff delays `installed_at` — pushing duty-cycled wake-ups later,
    /// the fidelity price of recovery.
    fn handle_period_install(&mut self, now: SimTime, k: u64) -> Result<(), ConfigError> {
        let deadline = self.deadline(k);
        let relay_radius = self.scenario.query.radius_m + self.scenario.radio.comm_range_m;
        let period_s = self.scenario.query.period.as_secs_f64();
        for index in 0..self.query_set.users().len() {
            if !self.query_set.users()[index].active_in(k) {
                continue;
            }
            let user = index as u32;
            let pickup = {
                let uq = &self.query_set.users()[index];
                Self::predicted_pickup(uq, now, deadline)
            };
            let center = self.quantized_center(pickup);
            let Some(collector) = self.backbone_grid.nearest(center).map(|(i, _)| NodeId(i)) else {
                continue; // no backbone at all: the resolve records a miss
            };
            let epoch = self.tree_epoch();
            let key = TreeKey::new(collector, center, relay_radius).with_epoch(epoch);
            self.installs += 1;

            let mut installed_at = now;
            if let Some(fault) = &mut self.fault {
                let collector_pos = self.store.position(collector.index());
                let outcome = fault.install_outcome(
                    user,
                    k,
                    collector.index(),
                    collector_pos,
                    k - 1,
                    period_s,
                );
                if outcome.extra_attempts > 0 {
                    self.store.drain(
                        collector.index(),
                        RETRY_ENERGY_J * f64::from(outcome.extra_attempts),
                    );
                }
                if !outcome.success {
                    continue; // no tree stands; the resolve records a miss
                }
                if outcome.delay_s > 0.0 {
                    installed_at = SimTime::from_secs_f64(now.as_secs_f64() + outcome.delay_s);
                }
            }

            let handle = match self.sharing {
                TreeSharing::Shared => {
                    let (handle, built) = {
                        let positions = self.store.positions();
                        let plan = &self.plan;
                        self.cache.acquire(key, &self.neighbors, |n| {
                            plan.is_backbone(n)
                                && positions[n.index()].distance_to(center) <= relay_radius
                        })
                    };
                    let cost = {
                        let tree = self.cache.tree(handle).map_err(cache_error)?;
                        Self::memoized_cost(
                            &mut self.tree_cost,
                            key,
                            tree,
                            &self.channel,
                            &self.scenario,
                            &self.all_nodes_grid,
                            self.store.positions(),
                            &self.plan,
                        )
                    };
                    self.node_wake_seconds_naive += cost;
                    if built {
                        self.node_wake_seconds += cost;
                    }
                    Some(handle)
                }
                TreeSharing::Naive => {
                    let tree = {
                        let positions = self.store.positions();
                        let plan = &self.plan;
                        self.naive_scratch.build(collector, &self.neighbors, |n| {
                            plan.is_backbone(n)
                                && positions[n.index()].distance_to(center) <= relay_radius
                        })
                    };
                    self.naive_built += 1;
                    let cost = Self::memoized_cost(
                        &mut self.tree_cost,
                        key,
                        &tree,
                        &self.channel,
                        &self.scenario,
                        &self.all_nodes_grid,
                        self.store.positions(),
                        &self.plan,
                    );
                    self.node_wake_seconds_naive += cost;
                    self.node_wake_seconds += cost;
                    self.naive_trees.insert((user, k), tree);
                    None
                }
            };
            self.active.insert(
                (user, k),
                ActiveQuery {
                    center,
                    installed_at,
                    handle,
                },
            );
        }
        Ok(())
    }

    /// Wake-up cost of the tree for `key`, computed once per distinct key and
    /// then served from the memo (tree content is a pure function of the key,
    /// so the first computation stands for every later install of the key).
    ///
    /// Takes the tree by reference — the caller resolves its handle first —
    /// so no `Option<TreeHandle>` juggling (and no dead-handle `expect`)
    /// happens inside the memo.
    #[allow(clippy::too_many_arguments)] // split borrows of the world's fields
    fn memoized_cost(
        tree_cost: &mut HashMap<TreeKey, f64>,
        key: TreeKey,
        tree: &FloodTree,
        channel: &Channel,
        scenario: &Scenario,
        all_nodes_grid: &SpatialGrid,
        positions: &[Point],
        plan: &PowerPlan,
    ) -> f64 {
        if let Some(&cost) = tree_cost.get(&key) {
            return cost;
        }
        let setup_airtime = channel
            .tx_duration(scenario.messages.setup_bytes)
            .as_secs_f64();
        let area = Circle::new(key.center(), scenario.query.radius_m);
        let comm_range = scenario.radio.comm_range_m;
        let mut cost = 0.0;
        for idx in all_nodes_grid.query_circle(area) {
            let node = NodeId(idx);
            if plan.is_backbone(node) {
                continue;
            }
            let pos = positions[idx];
            let has_parent = all_nodes_grid
                .nearest_filtered(pos, |i| tree.contains(NodeId(i)))
                .map(|(_, parent_pos)| parent_pos.distance_to(pos) <= comm_range)
                .unwrap_or(false);
            if has_parent {
                // One buffered setup reception plus the nominal wake-up the
                // node pays to take and forward its reading.
                cost += setup_airtime + 0.010;
            }
        }
        tree_cost.insert(key, cost);
        cost
    }

    /// Scores query `(user, k)` at its deadline — the read-only half of a
    /// resolve. `nodes_in_area` is caller-provided recycled scratch (cleared
    /// here), so the steady-state serial loop performs no heap allocation,
    /// and because this takes `&self` only, a period's scores can be computed
    /// for many users in parallel (every RNG draw comes from the dedicated
    /// per-`(user, k)` stream, so scoring order is immaterial).
    fn score_query(
        &self,
        user: u32,
        k: u64,
        nodes_in_area: &mut Vec<NodeId>,
    ) -> Result<QueryRecord, ConfigError> {
        let deadline = self.deadline(k);
        let uq = &self.query_set.users()[user as usize];
        let actual = uq.motion.position_at(deadline);
        let area = Circle::new(actual, self.scenario.query.radius_m);
        nodes_in_area.clear();
        nodes_in_area.extend(self.all_nodes_grid.query_circle(area).map(NodeId));
        // Sort so every scoring draw below happens in one deterministic order
        // whatever the grid's internal iteration order.
        nodes_in_area.sort_unstable();

        let Some(aq) = self.active.get(&(user, k)) else {
            return Ok(QueryRecord::missed(k, deadline, nodes_in_area.len()));
        };
        let mut rng = SimRng::seed_from_u64(mix_seed(
            self.scenario.seed,
            &[QUERY_STREAM, user as u64, k],
        ));
        let concurrency = self.query_set.active_users(k);
        let loss_p = self
            .scenario
            .mac
            .loss_probability(concurrency.saturating_sub(1));
        let tree = match aq.handle {
            Some(handle) => self.cache.tree(handle).map_err(cache_error)?,
            None => &self.naive_trees[&(user, k)],
        };
        let contributing = Self::count_contributing(
            tree,
            nodes_in_area,
            aq,
            deadline,
            loss_p,
            &mut rng,
            self.store.positions(),
            &self.all_nodes_grid,
            &self.plan,
            &self.schedule,
            &self.channel,
            &self.scenario,
            self.fault.as_ref(),
            k,
        );
        Ok(QueryRecord {
            seq: k,
            deadline,
            delivered_at: Some(deadline),
            contributing_nodes: contributing,
            nodes_in_area: nodes_in_area.len(),
        })
    }

    /// The mutating half of a resolve: retires `(user, k)`'s tree reference
    /// and logs its record. Always applied serially, in fleet order, whatever
    /// the scoring parallelism — so cache refcounts and logs evolve exactly
    /// as in a serial run.
    fn apply_resolve(&mut self, user: u32, k: u64, record: QueryRecord) -> Result<(), ConfigError> {
        if let Some(aq) = self.active.remove(&(user, k)) {
            match aq.handle {
                Some(handle) => {
                    self.cache.release(handle).map_err(cache_error)?;
                }
                None => {
                    let tree = self.naive_trees.remove(&(user, k)).ok_or_else(|| {
                        ConfigError::new(format!(
                            "naive tree missing at resolve for user {user} period {k}"
                        ))
                    })?;
                    self.naive_scratch.recycle(tree);
                }
            }
        }
        self.logs[user as usize].push(record);
        Ok(())
    }

    /// Scores one query against its installed tree. Deterministic given the
    /// tree *content* — both sharing modes build bit-identical trees, iterate
    /// the same sorted node list and draw from the same per-query stream, so
    /// they count the same contributors.
    ///
    /// Under fault injection, contributions are additionally lost to faults
    /// in force around boundary `k`: bad-channel nodes and nodes inside a
    /// blackout disk never deliver, crashed nodes only deliver readings
    /// scheduled *before* their mid-period crash instant, and a crashed
    /// ancestor severs every descendant still routed through it (which a
    /// recovery rebuild repairs). All fault checks are pure lookups against
    /// state precomputed serially at the boundary — no RNG — so they cannot
    /// perturb any draw stream: at fault rate 0 none of them ever fires and
    /// the count is bit-identical to a fault-free run.
    #[allow(clippy::too_many_arguments)] // split borrows of the world's fields
    fn count_contributing(
        tree: &FloodTree,
        nodes_in_area: &[NodeId],
        aq: &ActiveQuery,
        deadline: SimTime,
        loss_p: f64,
        rng: &mut SimRng,
        positions: &[Point],
        all_nodes_grid: &SpatialGrid,
        plan: &PowerPlan,
        schedule: &SleepSchedule,
        channel: &Channel,
        scenario: &Scenario,
        fault: Option<&FaultState>,
        k: u64,
    ) -> usize {
        let period_s = scenario.query.period.as_secs_f64();
        let deadline_s = deadline.as_secs_f64();
        let hop_s = channel
            .tx_duration(scenario.messages.setup_bytes)
            .as_secs_f64()
            + 0.001;
        let comm_range = scenario.radio.comm_range_m;
        let window_s = schedule.active_window().as_secs_f64();
        let mut contributing = 0;
        for &node in nodes_in_area {
            if plan.is_backbone(node) {
                // Backbone: reached by the setup flood if in the tree and the
                // flood's per-hop latency fits the one-period install lead.
                let Some(depth) = tree.depth_of(node) else {
                    continue;
                };
                if let Some(f) = fault {
                    // Backbone readings land at the deadline, which every
                    // mid-window crash precedes — a crashed backbone node
                    // (or a crashed relay above it) contributes nothing.
                    if f.is_crashed[node.index()]
                        || f.plan.link_bad(node.index())
                        || f.plan.blacked_out(k, positions[node.index()])
                        || f.severed(tree, node)
                    {
                        continue;
                    }
                }
                if depth as f64 * hop_s <= period_s && !rng.gen_bool(loss_p) {
                    contributing += 1;
                }
            } else {
                // Duty-cycled: needs an in-tree relay in range and an active
                // window (plus delivery jitter) before the deadline.
                let pos = positions[node.index()];
                if let Some(f) = fault {
                    if f.plan.link_bad(node.index()) || f.plan.blacked_out(k, pos) {
                        continue;
                    }
                }
                let Some((relay, relay_pos)) =
                    all_nodes_grid.nearest_filtered(pos, |i| tree.contains(NodeId(i)))
                else {
                    continue;
                };
                if relay_pos.distance_to(pos) > comm_range {
                    continue;
                }
                let wake = schedule.next_awake_instant(aq.installed_at);
                let jitter = rng.gen_range_f64(0.0, window_s * 0.5);
                let delivered = SimTime::from_secs_f64(wake.as_secs_f64() + jitter);
                if let Some(f) = fault {
                    // A reading delivered after its node or relay crashed —
                    // or relayed through a severed path — is lost.
                    let d = delivered.as_secs_f64();
                    let lost = f
                        .crash_instant(node.index(), deadline_s, period_s)
                        .is_some_and(|c| d > c)
                        || f.crash_instant(relay, deadline_s, period_s)
                            .is_some_and(|c| d > c)
                        || f.severed(tree, NodeId(relay));
                    if lost {
                        continue;
                    }
                }
                if delivered <= deadline && !rng.gen_bool(loss_p) {
                    contributing += 1;
                }
            }
        }
        let _ = aq.center;
        contributing
    }

    /// Applies the seed-derived churn batch for `boundary` and repairs the
    /// backbone incrementally. Deaths go first (freeing their slots), then
    /// the same number of joins (deterministically recycling those slots, so
    /// the population and the slot count stay fixed); the repair then
    /// promotes/demotes only the perturbed nodes, the backbone grid is
    /// patched from the flip log, the neighbour table is rebuilt over the
    /// new backbone and the topology epoch is bumped so no tree built before
    /// the batch is ever shared after it.
    ///
    /// # Errors
    ///
    /// With verification on, returns a [`ConfigError`] when the repaired
    /// roles are not bit-identical to a full priority re-election.
    fn apply_churn_batch(&mut self, boundary: u64) -> Result<(), ConfigError> {
        let Some(mut churn) = self.churn.take() else {
            return Ok(());
        };
        let result = self.churn_step(boundary, &mut churn);
        self.churn = Some(churn);
        result
    }

    fn churn_step(&mut self, boundary: u64, churn: &mut ChurnState) -> Result<(), ConfigError> {
        let apply_start = Instant::now();
        let region = self.scenario.region();
        let alive = self.store.alive_slots();
        let plan =
            ChurnBatchPlan::generate(self.scenario.seed, boundary, churn.config.rate, &alive);
        let deaths = plan.deaths.len();
        let mut rng = plan.rng;
        for &s in &plan.deaths {
            let node = NodeId(s);
            let pos = self.store.position(s);
            self.all_nodes_grid.remove(s);
            let role = self.plan.role(node);
            if role.is_backbone() {
                self.backbone_grid.remove(s);
            }
            churn.backbone.note_death(pos, role);
            self.plan.set_role(node, NodeRole::DutyCycled);
            self.store.kill(s);
        }
        // Joins recycle the slots the deaths just freed (deaths == joins and
        // the free list is LIFO), so no slot array ever grows here and every
        // slot stays within the power plan's node count.
        for _ in 0..deaths {
            let s = self.store.spawn_uniform(region, &mut rng);
            let p = self.store.position(s);
            self.plan.set_role(NodeId(s), NodeRole::DutyCycled);
            self.all_nodes_grid.insert(s, p);
            churn.backbone.note_join(p);
        }
        let apply_grid_ms = apply_start.elapsed().as_secs_f64() * 1e3;

        let repair_start = Instant::now();
        let stats = churn.backbone.repair(
            self.store.positions(),
            self.store.priorities(),
            self.plan.roles_mut(),
            &self.all_nodes_grid,
        );
        let repair_ms = repair_start.elapsed().as_secs_f64() * 1e3;

        let apply_start = Instant::now();
        for &(slot, now_backbone) in &stats.flips {
            let s = slot as usize;
            if now_backbone {
                self.backbone_grid.insert(s, self.store.position(s));
            } else {
                self.backbone_grid.remove(s);
            }
        }
        let comm_range = self.scenario.radio.comm_range_m;
        let neighbors = {
            let store = &self.store;
            let roles = self.plan.roles();
            NeighborTable::build_among(store.positions(), region, comm_range, |i| {
                store.is_alive(i) && roles[i].is_backbone()
            })
        };
        self.neighbors = neighbors;
        // Per-boundary residual-energy accounting: backbone radios stay on,
        // duty-cycled ones mostly sleep.
        for s in 0..self.store.len() {
            if !self.store.is_alive(s) {
                continue;
            }
            let cost = if self.plan.roles()[s].is_backbone() {
                0.01
            } else {
                0.001
            };
            self.store.drain(s, cost);
        }
        churn.epoch += 1;
        let apply_ms = apply_grid_ms + apply_start.elapsed().as_secs_f64() * 1e3;

        let verified = if churn.config.verify {
            let alive_now = self.store.alive_slots();
            let reference = elect_backbone_priority(
                self.store.positions(),
                self.store.priorities(),
                &alive_now,
                region,
                &self.scenario.ccp,
            );
            if reference.as_slice() != self.plan.roles() {
                return Err(ConfigError::new(format!(
                    "incremental repair diverged from full re-election at boundary {boundary}"
                )));
            }
            Some(true)
        } else {
            None
        };
        churn.log.push(ChurnBatch {
            boundary,
            deaths,
            joins: deaths,
            candidates: stats.candidates,
            evaluated: stats.evaluated,
            promoted: stats.promoted,
            demoted: stats.demoted,
            dirty_cells: stats.dirty_cells,
            apply_ms,
            repair_ms,
            verified,
        });
        Ok(())
    }

    /// Advances the fault schedule across `boundary` (a no-op without fault
    /// mode): last boundary's crash victims reboot, the per-node channel
    /// chains step, this boundary's victims strike, and — when recovery is
    /// armed and anything crashed — the epoch bumps and every standing tree
    /// gets a health check.
    fn apply_fault_batch(&mut self, boundary: u64) -> Result<(), ConfigError> {
        let Some(mut fault) = self.fault.take() else {
            return Ok(());
        };
        let result = self.fault_step(boundary, &mut fault);
        self.fault = Some(fault);
        result
    }

    fn fault_step(&mut self, boundary: u64, fault: &mut FaultState) -> Result<(), ConfigError> {
        for &(slot, _) in &fault.crashed {
            fault.is_crashed[slot] = false;
        }
        let batch = fault.plan.advance(boundary);
        fault.blackout = batch.blackout;
        fault.crashed.clear();
        fault
            .crashed
            .extend(batch.crashes.iter().map(|c| (c.slot, c.frac)));
        for &(slot, _) in &fault.crashed {
            fault.is_crashed[slot] = true;
        }
        if !fault.crashed.is_empty() && fault.plan.config().recovery {
            fault.epoch += 1;
            self.fault_repair_trees(fault)?;
        }
        Ok(())
    }

    /// The per-boundary tree health check: every standing query whose tree
    /// contains a crash victim is poisoned. A poisoned shared tree whose
    /// collector survived is released and re-acquired under the bumped epoch
    /// with the victims excluded (re-homing their descendants); one whose
    /// collector crashed degrades to a per-user naive tree rooted at the
    /// nearest live backbone node. Naive trees rebuild in place the same
    /// way. Keys are visited in sorted order so cache bookkeeping — and
    /// therefore every output byte — is independent of hash-map iteration
    /// order.
    fn fault_repair_trees(&mut self, fault: &mut FaultState) -> Result<(), ConfigError> {
        if self.active.is_empty() {
            return Ok(());
        }
        let mut standing: Vec<(u32, u64)> = self.active.keys().copied().collect();
        standing.sort_unstable();
        let relay_radius = self.scenario.query.radius_m + self.scenario.radio.comm_range_m;
        let epoch = self.churn.as_ref().map_or(0, |c| c.epoch) + fault.epoch;
        for (user, k) in standing {
            let aq = self.active[&(user, k)];
            let poisoned = {
                let tree = match aq.handle {
                    Some(handle) => self.cache.tree(handle).map_err(cache_error)?,
                    None => self.naive_trees.get(&(user, k)).ok_or_else(|| {
                        ConfigError::new(format!(
                            "naive tree missing at health check for user {user} period {k}"
                        ))
                    })?,
                };
                fault.crashed.iter().any(|&(s, _)| tree.contains(NodeId(s)))
            };
            if !poisoned {
                continue;
            }
            let center = aq.center;
            match aq.handle {
                Some(handle) => {
                    let old_root = self.cache.key(handle).map_err(cache_error)?.root();
                    self.cache.release(handle).map_err(cache_error)?;
                    if !fault.is_crashed[old_root.index()] {
                        let key = TreeKey::new(old_root, center, relay_radius).with_epoch(epoch);
                        let (rebuilt, built) = {
                            let positions = self.store.positions();
                            let plan = &self.plan;
                            let is_crashed = &fault.is_crashed;
                            self.cache.acquire(key, &self.neighbors, |n| {
                                plan.is_backbone(n)
                                    && !is_crashed[n.index()]
                                    && positions[n.index()].distance_to(center) <= relay_radius
                            })
                        };
                        if built {
                            let cost = {
                                let tree = self.cache.tree(rebuilt).map_err(cache_error)?;
                                Self::memoized_cost(
                                    &mut self.tree_cost,
                                    key,
                                    tree,
                                    &self.channel,
                                    &self.scenario,
                                    &self.all_nodes_grid,
                                    self.store.positions(),
                                    &self.plan,
                                )
                            };
                            self.node_wake_seconds += cost;
                        }
                        fault.rebuilt += 1;
                        if let Some(entry) = self.active.get_mut(&(user, k)) {
                            entry.handle = Some(rebuilt);
                        }
                    } else {
                        let alt = self
                            .backbone_grid
                            .nearest_filtered(center, |i| !fault.is_crashed[i])
                            .map(|(i, _)| NodeId(i));
                        match alt {
                            Some(root) => {
                                self.fault_build_naive(
                                    fault,
                                    user,
                                    k,
                                    root,
                                    center,
                                    relay_radius,
                                    epoch,
                                );
                                fault.fallbacks += 1;
                            }
                            None => {
                                // Every backbone node near the centre is down:
                                // nothing can stand in for the tree this period.
                                self.active.remove(&(user, k));
                                fault.failures += 1;
                            }
                        }
                    }
                }
                None => {
                    let tree = self.naive_trees.remove(&(user, k)).ok_or_else(|| {
                        ConfigError::new(format!(
                            "naive tree missing at rebuild for user {user} period {k}"
                        ))
                    })?;
                    let old_root = tree.root();
                    self.naive_scratch.recycle(tree);
                    let root = if fault.is_crashed[old_root.index()] {
                        self.backbone_grid
                            .nearest_filtered(center, |i| !fault.is_crashed[i])
                            .map(|(i, _)| NodeId(i))
                    } else {
                        Some(old_root)
                    };
                    match root {
                        Some(root) => {
                            self.fault_build_naive(
                                fault,
                                user,
                                k,
                                root,
                                center,
                                relay_radius,
                                epoch,
                            );
                            fault.rebuilt += 1;
                        }
                        None => {
                            self.active.remove(&(user, k));
                            fault.failures += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds a per-user naive tree around the crash victims and stands it in
    /// for `(user, k)`'s query, charging its flood cost to the selected mode.
    #[allow(clippy::too_many_arguments)] // split borrows of the world's fields
    fn fault_build_naive(
        &mut self,
        fault: &FaultState,
        user: u32,
        k: u64,
        root: NodeId,
        center: Point,
        relay_radius: f64,
        epoch: u32,
    ) {
        let tree = {
            let positions = self.store.positions();
            let plan = &self.plan;
            let is_crashed = &fault.is_crashed;
            self.naive_scratch.build(root, &self.neighbors, |n| {
                plan.is_backbone(n)
                    && !is_crashed[n.index()]
                    && positions[n.index()].distance_to(center) <= relay_radius
            })
        };
        self.naive_built += 1;
        let key = TreeKey::new(root, center, relay_radius).with_epoch(epoch);
        let cost = Self::memoized_cost(
            &mut self.tree_cost,
            key,
            &tree,
            &self.channel,
            &self.scenario,
            &self.all_nodes_grid,
            self.store.positions(),
            &self.plan,
        );
        self.node_wake_seconds += cost;
        self.naive_trees.insert((user, k), tree);
        if let Some(entry) = self.active.get_mut(&(user, k)) {
            entry.handle = None;
        }
    }

    /// Closes the boundary's fault record: a snapshot of the faults in force
    /// plus the recovery counters accumulated since the last flush.
    fn flush_fault_batch(&mut self, boundary: u64) {
        let Some(fault) = &mut self.fault else {
            return;
        };
        fault.log.push(FaultBatch {
            boundary,
            link_bad: fault.plan.bad_count(),
            crashes: fault.crashed.len(),
            blackout: fault.blackout,
            install_attempts: fault.attempts,
            retries: fault.retries,
            install_failures: fault.failures,
            trees_rebuilt: fault.rebuilt,
            naive_fallbacks: fault.fallbacks,
            retry_energy_j: fault.retry_energy_j,
        });
        fault.attempts = 0;
        fault.retries = 0;
        fault.failures = 0;
        fault.rebuilt = 0;
        fault.fallbacks = 0;
        fault.retry_energy_j = 0.0;
    }
}

/// The stepped multi-user simulation: owns one deployment and walks period
/// boundaries under caller control, admitting and retiring users between
/// steps.
///
/// Boundaries run `0..=max_k`. Boundary `b` (time `b·T`) installs period
/// `b+1` (when `b < max_k`) and then resolves period `b` (when `b ≥ 1`) —
/// exactly the order the retired event loop processed the instant `b·T` in,
/// so a full walk is bit-identical to the old run-to-completion engine.
#[derive(Debug)]
pub struct SteppedSim {
    world: MultiUserWorld,
    next_boundary: u64,
    events_processed: u64,
    /// Worker threads sharding per-user resolution inside one boundary.
    jobs: usize,
    /// Recycled `nodes_in_area` buffer for the serial resolve path — reused
    /// across boundaries so the warm steady state allocates nothing.
    resolve_scratch: Vec<NodeId>,
}

impl SteppedSim {
    /// Builds the deployment substrate (identical to the single-user
    /// [`crate::sim::Simulation`], same RNG forks) and takes ownership of
    /// `query_set` — which may be empty: a service starts idle and
    /// [`SteppedSim::admit`]s users at runtime.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the scenario fails validation or the
    /// query set's period horizon disagrees with the scenario's.
    pub fn new(
        scenario: Scenario,
        query_set: QuerySet,
        sharing: TreeSharing,
    ) -> Result<Self, ConfigError> {
        Self::build(scenario, query_set, sharing, None)
    }

    /// [`SteppedSim::new`] with node churn enabled: every period boundary
    /// `1 ≤ b < max_k` kills and joins `floor(rate × alive)` nodes (a pure
    /// function of the scenario seed and the boundary) and repairs the
    /// backbone incrementally instead of re-electing it. The backbone is
    /// elected in stable priority order — **not** byte-identical to the
    /// static path's shuffled election, which is why churn is an explicit
    /// opt-in rather than `rate = 0` on the legacy constructor.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on an invalid churn rate, plus everything
    /// [`SteppedSim::new`] rejects.
    pub fn with_churn(
        scenario: Scenario,
        query_set: QuerySet,
        sharing: TreeSharing,
        churn: ChurnConfig,
    ) -> Result<Self, ConfigError> {
        churn.validate()?;
        Self::build(scenario, query_set, sharing, Some(churn))
    }

    /// [`SteppedSim::new`] with deterministic fault injection enabled: a
    /// seeded [`FaultPlan`] (bursty per-node link loss, optional region
    /// blackout, mid-period crashes) advances at every boundary, installs
    /// walk an ack/retry state machine, and — when `fault.recovery` is on —
    /// poisoned trees are rebuilt or degraded to naive per-user trees.
    ///
    /// Uses the same deployment build as [`SteppedSim::new`] (not churn
    /// mode's stable election), and a config with `loss == 0`, no crashes
    /// and no blackout draws zero fault randomness — so such a run is
    /// byte-identical to a fault-free one, which `tests/` pins with a
    /// proptest. In naive sharing mode `peak_live_trees` keeps its analytic
    /// all-installs-stand value even though failed installs stand no tree,
    /// so read it as an upper bound under faults.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on an out-of-domain fault config, plus
    /// everything [`SteppedSim::new`] rejects.
    pub fn with_faults(
        scenario: Scenario,
        query_set: QuerySet,
        sharing: TreeSharing,
        fault: FaultConfig,
    ) -> Result<Self, ConfigError> {
        let mut sim = Self::build(scenario, query_set, sharing, None)?;
        let slots = sim.world.store.len();
        let plan = FaultPlan::new(fault, sim.world.scenario.seed, slots)
            .map_err(|e| ConfigError::new(format!("invalid fault config: {e}")))?;
        sim.world.fault = Some(FaultState {
            plan,
            crashed: Vec::new(),
            is_crashed: vec![false; slots],
            blackout: false,
            epoch: 0,
            log: Vec::new(),
            attempts: 0,
            retries: 0,
            failures: 0,
            rebuilt: 0,
            fallbacks: 0,
            retry_energy_j: 0.0,
        });
        Ok(sim)
    }

    fn build(
        scenario: Scenario,
        query_set: QuerySet,
        sharing: TreeSharing,
        churn_config: Option<ChurnConfig>,
    ) -> Result<Self, ConfigError> {
        scenario.validate()?;
        if query_set.max_k() != scenario.query.result_count() {
            return Err(ConfigError::new(format!(
                "query set spans {} periods but the scenario serves {}",
                query_set.max_k(),
                scenario.query.result_count()
            )));
        }
        let mut rng = SimRng::seed_from_u64(scenario.seed);
        let (deployment, churn) = match churn_config {
            None => (Deployment::build(&scenario, &mut rng)?, None),
            Some(config) => {
                // Same placement (fork 1) as the static path, but the
                // election must be replayable incrementally, so churn mode
                // elects in stable priority order (fork 2 is consumed and
                // ignored, keeping the fork discipline identical).
                let seed = scenario.seed;
                let mut repairable = None;
                let deployment =
                    Deployment::build_with(&scenario, &mut rng, |positions, region, ccp, _rng| {
                        let priorities: Vec<u64> = (0..positions.len() as u64)
                            .map(|uid| priority_for(seed, uid))
                            .collect();
                        let alive: Vec<usize> = (0..positions.len()).collect();
                        let (backbone, roles) =
                            RepairableBackbone::new(positions, &priorities, &alive, region, ccp);
                        repairable = Some(backbone);
                        roles
                    })?;
                let backbone = repairable.expect("the election closure always runs");
                let state = ChurnState {
                    config,
                    backbone,
                    epoch: 0,
                    log: Vec::new(),
                };
                (deployment, Some(state))
            }
        };
        let backbone_grid =
            Deployment::backbone_grid(&deployment.positions, &deployment.plan, &scenario);
        let schedule = scenario.sleep_schedule();
        let channel = Channel::new(scenario.radio, scenario.mac);

        let world = MultiUserWorld {
            store: NodeStore::new(deployment.positions, scenario.seed),
            scenario,
            neighbors: deployment.neighbors,
            plan: deployment.plan,
            all_nodes_grid: deployment.all_nodes_grid,
            backbone_grid,
            schedule,
            channel,
            logs: query_set
                .users()
                .iter()
                .map(|uq| {
                    let mut log = QueryLog::new();
                    log.reserve((uq.last_k - uq.first_k + 1) as usize);
                    log
                })
                .collect(),
            query_set,
            sharing,
            cache: TreeCache::new(),
            naive_scratch: FloodScratch::new(),
            naive_trees: HashMap::new(),
            naive_built: 0,
            active: HashMap::new(),
            tree_cost: HashMap::new(),
            installs: 0,
            node_wake_seconds: 0.0,
            node_wake_seconds_naive: 0.0,
            churn,
            fault: None,
        };
        Ok(SteppedSim {
            world,
            next_boundary: 0,
            events_processed: 0,
            jobs: 1,
            resolve_scratch: Vec::new(),
        })
    }

    /// Shards per-user resolution across up to `jobs` [`pool`] workers inside
    /// each [`SteppedSim::step_period`]. Scoring is read-only and every
    /// `(user, k)` draws from its own RNG stream, while the mutating apply
    /// phase always runs serially in fleet order — so logs, cache refcounts
    /// and every byte of output are identical for any `jobs` value. `0` is
    /// clamped to `1` (the fully inline path).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.set_jobs(jobs);
        self
    }

    /// Changes the resolve sharding width mid-run; see [`SteppedSim::with_jobs`].
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// The resolve sharding width currently in effect.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The query set as it currently stands (admissions included).
    pub fn query_set(&self) -> &QuerySet {
        &self.world.query_set
    }

    /// The scenario the deployment was built from.
    pub fn scenario(&self) -> &Scenario {
        &self.world.scenario
    }

    /// Per-user query logs, index = fleet index. Grows as boundaries resolve.
    pub fn logs(&self) -> &[QueryLog] {
        &self.world.logs
    }

    /// The next boundary [`SteppedSim::step_period`] will process
    /// (`0..=max_k`); the earliest period a new admission can first be active
    /// in is `next_boundary() + 1`.
    pub fn next_boundary(&self) -> u64 {
        self.next_boundary
    }

    /// The last boundary of the run (= the scenario's period count).
    pub fn max_k(&self) -> u64 {
        self.world.query_set.max_k()
    }

    /// Per-boundary churn records so far (empty in a static run, and in a
    /// churn run before boundary 1).
    pub fn churn_log(&self) -> &[ChurnBatch] {
        self.world.churn.as_ref().map_or(&[], |c| c.log.as_slice())
    }

    /// Per-boundary fault records so far (one per boundary stepped in fault
    /// mode, empty otherwise). Every field is deterministic in the seed.
    pub fn fault_log(&self) -> &[FaultBatch] {
        self.world.fault.as_ref().map_or(&[], |f| f.log.as_slice())
    }

    /// The fault config in force, when fault injection is enabled.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.world.fault.as_ref().map(|f| f.plan.config())
    }

    /// Number of live nodes right now (equals the scenario's node count in a
    /// static run and — by deaths == joins — in churn runs too).
    pub fn alive_count(&self) -> usize {
        self.world.store.alive_count()
    }

    /// The current backbone membership as ascending slot indices — the
    /// deterministic digest the CI churn gate compares across `--jobs`
    /// settings and against [`SteppedSim::reference_reelection`].
    pub fn backbone_slots(&self) -> Vec<u32> {
        self.world
            .plan
            .backbone_nodes()
            .map(|n| n.index() as u32)
            .collect()
    }

    /// Runs a full from-scratch priority election over the current alive
    /// nodes and returns its backbone as ascending slot indices. In a churn
    /// run this must equal [`SteppedSim::backbone_slots`] (repair ≡
    /// re-election); callers time this call to measure what the incremental
    /// repair saves. Meaningless for [`SteppedSim::new`] runs, whose
    /// backbone comes from the legacy shuffled election instead.
    pub fn reference_reelection(&self) -> Vec<u32> {
        let store = &self.world.store;
        let alive = store.alive_slots();
        let roles = elect_backbone_priority(
            store.positions(),
            store.priorities(),
            &alive,
            self.world.scenario.region(),
            &self.world.scenario.ccp,
        );
        roles
            .iter()
            .enumerate()
            .filter_map(|(s, r)| r.is_backbone().then_some(s as u32))
            .collect()
    }

    /// `true` once every boundary has been stepped.
    pub fn is_finished(&self) -> bool {
        self.next_boundary > self.max_k()
    }

    /// Admits a user at runtime. The user's fleet index must equal the
    /// current fleet size (admission order is identity, as in a static
    /// [`QuerySet`]), and its window must start after every period already
    /// installed — `first_k > next_boundary()` — so the admission behaves
    /// exactly like a user that had been in the set from the start.
    ///
    /// Returns the admitted fleet index.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for an out-of-order fleet index, a window
    /// outside `1..=max_k`, or a `first_k` that is already installed.
    pub fn admit(&mut self, user: UserQuery) -> Result<usize, ConfigError> {
        let index = self.world.query_set.len();
        if user.user != index {
            return Err(ConfigError::new(format!(
                "admission out of order: user index {} but fleet size {}",
                user.user, index
            )));
        }
        if user.first_k < 1 || user.first_k > user.last_k || user.last_k > self.max_k() {
            return Err(ConfigError::new(format!(
                "user {} window [{}, {}] outside 1..={}",
                user.user,
                user.first_k,
                user.last_k,
                self.max_k()
            )));
        }
        if user.first_k <= self.next_boundary {
            return Err(ConfigError::new(format!(
                "user {} first period {} is already installed (next boundary {})",
                user.user, user.first_k, self.next_boundary
            )));
        }
        let window = (user.last_k - user.first_k + 1) as usize;
        self.world.query_set.push(user);
        let mut log = QueryLog::new();
        log.reserve(window);
        self.world.logs.push(log);
        Ok(index)
    }

    /// Shrinks `user`'s lifetime window to end at `last_k`, clamped so that
    /// periods already installed (and the window's first period) still
    /// resolve — an install standing in the network cannot be recalled, only
    /// left to retire at its deadline.
    ///
    /// Returns the effective last period after clamping.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for an unknown fleet index.
    pub fn retire_at(&mut self, user: usize, last_k: u64) -> Result<u64, ConfigError> {
        let Some(uq) = self.world.query_set.users().get(user) else {
            return Err(ConfigError::new(format!(
                "unknown fleet index {user} (fleet size {})",
                self.world.query_set.len()
            )));
        };
        let installed_up_to = self.next_boundary.min(uq.last_k);
        let effective = last_k.max(uq.first_k).max(installed_up_to).min(uq.last_k);
        self.world.query_set.set_last_k(user, effective);
        Ok(effective)
    }

    /// Processes the next period boundary: installs period `b+1` (except at
    /// the final boundary) then resolves period `b` (except at boundary 0).
    /// Returns the boundary processed.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the run is already finished or a tree
    /// cache invariant is violated (a poisoned world — do not step further).
    pub fn step_period(&mut self) -> Result<u64, ConfigError> {
        let b = self.next_boundary;
        let max_k = self.max_k();
        if b > max_k {
            return Err(ConfigError::new(format!(
                "stepped past the final boundary {max_k}"
            )));
        }
        let now = SimTime::ZERO + self.world.scenario.query.period * b;
        // Churn fires before the boundary's installs, so period `b+1` floods
        // over the post-batch topology (the final boundary only resolves, so
        // a batch there would repair a backbone nobody queries again).
        if b >= 1 && b < max_k {
            self.world.apply_churn_batch(b)?;
        }
        // Faults advance at every boundary: the batch struck during the
        // window this boundary closes (scored by the resolves below) and is
        // what this boundary's installs must get through.
        self.world.apply_fault_batch(b)?;
        if b < max_k {
            self.world.handle_period_install(now, b + 1)?;
            self.events_processed += 1;
        }
        if b >= 1 {
            if self.jobs > 1 && self.world.query_set.active_users(b) >= 2 {
                // Sharded path: the shared trees for this boundary are all
                // installed, so per-user scoring is independent read-only
                // work. Fan it over the pool, then apply serially in fleet
                // order — byte-identical to `--jobs 1`.
                let active: Vec<u32> = (0..self.world.query_set.users().len() as u32)
                    .filter(|&u| self.world.query_set.users()[u as usize].active_in(b))
                    .collect();
                let world = &self.world;
                let records = pool::run_indexed(self.jobs, active.clone(), |_, user| {
                    world.score_query(user, b, &mut Vec::new())
                });
                for (user, record) in active.into_iter().zip(records) {
                    self.world.apply_resolve(user, b, record?)?;
                    self.events_processed += 1;
                }
            } else {
                // Serial path: one recycled scratch buffer, zero allocations
                // once warm. On error the scratch is dropped, but an erroring
                // step poisons the world anyway.
                let mut scratch = std::mem::take(&mut self.resolve_scratch);
                for index in 0..self.world.query_set.users().len() {
                    if !self.world.query_set.users()[index].active_in(b) {
                        continue;
                    }
                    let record = self.world.score_query(index as u32, b, &mut scratch)?;
                    self.world.apply_resolve(index as u32, b, record)?;
                    self.events_processed += 1;
                }
                self.resolve_scratch = scratch;
            }
        }
        self.world.flush_fault_batch(b);
        self.next_boundary = b + 1;
        Ok(b)
    }

    /// Runs every remaining boundary.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SteppedSim::step_period`] error.
    pub fn run_to_end(&mut self) -> Result<(), ConfigError> {
        while !self.is_finished() {
            self.step_period()?;
        }
        Ok(())
    }

    /// Consumes the finished run and aggregates the output the batch
    /// [`crate::sim::MultiSimulation`] API reports.
    ///
    /// # Panics
    ///
    /// Panics when called before the final boundary was stepped, or when a
    /// query install leaked past the last resolve (refcount discipline).
    pub fn finish(self) -> MultiUserOutput {
        assert!(
            self.is_finished(),
            "finish() before the final boundary was stepped"
        );
        let events_processed = self.events_processed;
        let world = self.world;
        // Refcount discipline: every install was released at its resolve.
        assert_eq!(
            world.cache.live_trees(),
            0,
            "shared trees leaked past the last query"
        );
        assert!(
            world.active.is_empty() && world.naive_trees.is_empty(),
            "queries left unresolved at the end of the run"
        );
        let trees_built = match world.sharing {
            // Fault recovery can degrade shared queries to naive fallback
            // trees; count those builds too (naive_built is 0 fault-free).
            TreeSharing::Shared => world.cache.trees_built() + world.naive_built,
            TreeSharing::Naive => world.naive_built,
        };
        let peak_live_trees = match world.sharing {
            TreeSharing::Shared => world.cache.peak_live_trees(),
            // The naive baseline keeps one tree per in-flight install; its
            // peak equals the largest per-period batch (installs overlap one
            // period at the k·T handover).
            TreeSharing::Naive => (1..=world.query_set.max_k())
                .map(|k| {
                    world.query_set.active_users(k)
                        + world
                            .query_set
                            .active_users(k + 1)
                            .min(if k == world.query_set.max_k() {
                                0
                            } else {
                                usize::MAX
                            })
                })
                .max()
                .unwrap_or(0),
        };
        MultiUserOutput {
            users: world.query_set.len(),
            sharing: world.sharing,
            per_user: summarize_users(&world.logs, world.scenario.fidelity_threshold),
            installs: world.installs,
            trees_built,
            shared_hits: world.cache.shared_hits(),
            peak_live_trees,
            node_wake_seconds: world.node_wake_seconds,
            node_wake_seconds_naive: world.node_wake_seconds_naive,
            events_processed,
            backbone_count: world.plan.backbone_count(),
            node_count: world.store.len(),
            logs: world.logs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::sim::MultiSimulation;
    use wsn_mobility::{fleet_member, ProfileSource};
    use wsn_net::Blackout;

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::paper_default()
            .with_node_count(80)
            .with_region_side(300.0)
            .with_duration_secs(40.0)
            .with_scheme(Scheme::JustInTime)
            .with_seed(seed)
    }

    fn stepped(seed: u64, users: usize, sharing: TreeSharing) -> SteppedSim {
        let scenario = small_scenario(seed);
        let set = QuerySet::generate(&scenario, users);
        SteppedSim::new(scenario, set, sharing).unwrap()
    }

    #[test]
    fn full_walk_matches_the_batch_engine() {
        for sharing in [TreeSharing::Shared, TreeSharing::Naive] {
            let batch = MultiSimulation::new(small_scenario(7), 5, sharing)
                .unwrap()
                .run();
            let mut sim = stepped(7, 5, sharing);
            sim.run_to_end().unwrap();
            assert_eq!(sim.finish(), batch, "{sharing:?} walk diverged");
        }
    }

    #[test]
    fn sharded_resolution_is_byte_identical_for_any_jobs() {
        for sharing in [TreeSharing::Shared, TreeSharing::Naive] {
            let mut serial = stepped(7, 6, sharing);
            serial.run_to_end().unwrap();
            let serial_out = serial.finish();
            for jobs in [2, 4, 9] {
                let mut sharded = stepped(7, 6, sharing).with_jobs(jobs);
                assert_eq!(sharded.jobs(), jobs);
                sharded.run_to_end().unwrap();
                assert_eq!(
                    sharded.finish(),
                    serial_out,
                    "{sharing:?} diverged at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn jobs_zero_clamps_to_the_inline_path() {
        let sim = stepped(3, 2, TreeSharing::Shared).with_jobs(0);
        assert_eq!(sim.jobs(), 1);
    }

    #[test]
    fn boundary_count_and_event_accounting() {
        let mut sim = stepped(3, 4, TreeSharing::Shared);
        let max_k = sim.max_k();
        let total_queries = sim.query_set().total_queries();
        let mut boundaries = 0u64;
        while !sim.is_finished() {
            assert_eq!(sim.step_period().unwrap(), boundaries);
            boundaries += 1;
        }
        assert_eq!(boundaries, max_k + 1, "boundaries 0..=max_k");
        assert!(sim.step_period().is_err(), "stepping past the end errors");
        let out = sim.finish();
        assert_eq!(out.events_processed, max_k + total_queries);
    }

    #[test]
    fn logs_grow_as_boundaries_resolve() {
        let mut sim = stepped(5, 1, TreeSharing::Shared);
        sim.step_period().unwrap(); // boundary 0: install only
        assert_eq!(sim.logs()[0].len(), 0);
        sim.step_period().unwrap(); // boundary 1: resolves period 1
        assert_eq!(sim.logs()[0].len(), 1);
        assert_eq!(sim.logs()[0].records()[0].seq, 1);
    }

    #[test]
    fn runtime_admission_equals_static_membership() {
        // A fleet whose windows open in fleet order, so each user can be
        // admitted at the latest legal boundary (`first_k - 1`) while keeping
        // admission order = fleet order (the per-query RNG streams are keyed
        // by fleet index, so indices must match the static run).
        let scenario = small_scenario(9);
        let max_k = scenario.query.result_count();
        let windows = [(1, max_k), (1, 6), (3, 9), (4, max_k), (7, 12)];
        let users: Vec<UserQuery> = windows
            .iter()
            .enumerate()
            .map(|(index, &(first_k, last_k))| {
                let m = fleet_member(
                    &scenario.motion,
                    scenario.profile_source,
                    index,
                    scenario.seed,
                );
                UserQuery {
                    user: index,
                    seed: m.seed,
                    motion: m.motion,
                    profiles: m.profiles,
                    first_k,
                    last_k,
                }
            })
            .collect();
        let set = QuerySet::from_users(users.clone(), max_k).unwrap();
        let static_out =
            MultiSimulation::with_query_set(scenario.clone(), set, TreeSharing::Shared)
                .unwrap()
                .run();

        let empty = QuerySet::from_users(vec![], max_k).unwrap();
        let mut sim = SteppedSim::new(scenario, empty, TreeSharing::Shared).unwrap();
        let mut pending = users.into_iter().peekable();
        while !sim.is_finished() {
            let b = sim.next_boundary();
            while pending.peek().is_some_and(|u| u.first_k == b + 1) {
                sim.admit(pending.next().unwrap()).unwrap();
            }
            sim.step_period().unwrap();
        }
        assert!(pending.next().is_none(), "every user was admitted");
        let dynamic_out = sim.finish();
        assert_eq!(
            dynamic_out, static_out,
            "runtime admissions diverged from static membership"
        );
    }

    #[test]
    fn admission_rejects_out_of_order_and_installed_windows() {
        let mut sim = stepped(2, 2, TreeSharing::Shared);
        let scenario = small_scenario(2);
        let member = fleet_member(&scenario.motion, ProfileSource::Oracle, 9, scenario.seed);
        let make = |user, first_k, last_k| UserQuery {
            user,
            seed: member.seed,
            motion: member.motion.clone(),
            profiles: member.profiles.clone(),
            first_k,
            last_k,
        };
        assert!(sim.admit(make(5, 2, 3)).is_err(), "index gap rejected");
        assert!(sim.admit(make(2, 0, 3)).is_err(), "zero first_k rejected");
        assert!(
            sim.admit(make(2, 3, sim.max_k() + 1)).is_err(),
            "window past max_k rejected"
        );
        sim.step_period().unwrap(); // installs period 1
        assert!(
            sim.admit(make(2, 1, 3)).is_err(),
            "first period already installed"
        );
        assert!(sim.admit(make(2, 2, 3)).is_ok(), "future window admitted");
    }

    #[test]
    fn retire_clamps_to_installed_periods() {
        let mut sim = stepped(4, 1, TreeSharing::Shared);
        assert!(sim.retire_at(3, 5).is_err(), "unknown user");
        sim.step_period().unwrap(); // boundary 0: period 1 installed
        sim.step_period().unwrap(); // boundary 1: period 2 installed
                                    // Periods 1..=2 are standing; retiring "now" keeps them resolvable.
        assert_eq!(sim.retire_at(0, 0).unwrap(), 2);
        assert_eq!(sim.query_set().users()[0].last_k, 2);
        // Retiring later than the current window is a no-op shrink.
        assert_eq!(sim.retire_at(0, 99).unwrap(), 2);
        sim.run_to_end().unwrap();
        let out = sim.finish();
        assert_eq!(out.logs[0].len(), 2, "exactly the installed periods score");
    }

    fn churned(seed: u64, rate: f64, verify: bool) -> SteppedSim {
        let scenario = small_scenario(seed);
        let set = QuerySet::generate(&scenario, 3);
        SteppedSim::with_churn(
            scenario,
            set,
            TreeSharing::Shared,
            ChurnConfig { rate, verify },
        )
        .unwrap()
    }

    #[test]
    fn with_churn_rejects_bad_rates() {
        let scenario = small_scenario(1);
        for rate in [0.0, -0.1, 1.0, f64::NAN, f64::INFINITY] {
            let set = QuerySet::generate(&scenario, 1);
            let churn = ChurnConfig { rate, verify: true };
            assert!(
                SteppedSim::with_churn(scenario.clone(), set, TreeSharing::Shared, churn).is_err(),
                "rate {rate} must be rejected"
            );
        }
    }

    #[test]
    fn churn_walk_verifies_repair_at_every_boundary() {
        // `verify: true` makes every boundary cross-check the incremental
        // repair against a full priority re-election, so a clean run_to_end
        // IS the equivalence assertion — for every batch in the schedule.
        let mut sim = churned(11, 0.1, true);
        let max_k = sim.max_k();
        sim.run_to_end().unwrap();
        let log = sim.churn_log();
        assert_eq!(
            log.len(),
            (max_k - 1) as usize,
            "one batch per 1 ≤ b < max_k"
        );
        assert!(log.iter().all(|b| b.verified == Some(true)));
        assert!(log.iter().all(|b| b.deaths == b.joins));
        assert!(
            log.iter().any(|b| b.deaths > 0),
            "a 10% rate on 80 nodes must actually churn"
        );
        assert_eq!(sim.alive_count(), sim.scenario().node_count);
    }

    #[test]
    fn backbone_matches_reference_after_the_walk() {
        let mut sim = churned(12, 0.05, false);
        sim.run_to_end().unwrap();
        let repaired = sim.backbone_slots();
        assert!(!repaired.is_empty());
        assert_eq!(repaired, sim.reference_reelection());
    }

    #[test]
    fn churn_schedule_is_deterministic_in_the_seed() {
        let walk = |seed| {
            let mut sim = churned(seed, 0.08, false);
            sim.run_to_end().unwrap();
            let deaths: Vec<usize> = sim.churn_log().iter().map(|b| b.deaths).collect();
            (deaths, sim.backbone_slots())
        };
        assert_eq!(walk(21), walk(21), "same seed, same schedule and backbone");
        assert_ne!(
            walk(21).1,
            walk(22).1,
            "different seeds churn different nodes"
        );
    }

    #[test]
    fn static_runs_have_no_churn_log() {
        let mut sim = stepped(6, 2, TreeSharing::Shared);
        sim.run_to_end().unwrap();
        assert!(sim.churn_log().is_empty());
        assert_eq!(sim.alive_count(), sim.scenario().node_count);
    }

    #[test]
    fn churned_query_logs_stay_deterministic() {
        let run = || {
            let mut sim = churned(13, 0.05, false);
            sim.run_to_end().unwrap();
            sim.finish()
        };
        assert_eq!(run(), run());
    }

    fn faulted(seed: u64, users: usize, sharing: TreeSharing, fault: FaultConfig) -> SteppedSim {
        let scenario = small_scenario(seed);
        let set = QuerySet::generate(&scenario, users);
        SteppedSim::with_faults(scenario, set, sharing, fault).unwrap()
    }

    fn mean_fidelity(out: &MultiUserOutput) -> f64 {
        let total: f64 = out.per_user.iter().map(|u| u.mean_fidelity).sum();
        total / out.per_user.len() as f64
    }

    #[test]
    fn with_faults_rejects_bad_configs() {
        let scenario = small_scenario(1);
        for config in [
            FaultConfig::new(-0.1),
            FaultConfig::new(1.0),
            FaultConfig::new(f64::NAN),
            FaultConfig::new(0.1).with_burst(0.5),
            FaultConfig::new(0.1).with_crash_rate(1.5),
        ] {
            let set = QuerySet::generate(&scenario, 1);
            assert!(
                SteppedSim::with_faults(scenario.clone(), set, TreeSharing::Shared, config)
                    .is_err(),
                "{config:?} must be rejected"
            );
        }
    }

    #[test]
    fn zero_rate_faults_are_byte_identical_to_no_faults() {
        // A loss-0, crash-0, no-blackout plan draws zero randomness and gates
        // nothing, so the whole run — logs, energy, tree accounting — must be
        // exactly what the fault-free engine produces.
        for sharing in [TreeSharing::Shared, TreeSharing::Naive] {
            let mut plain = stepped(7, 5, sharing);
            plain.run_to_end().unwrap();
            let mut inert = faulted(7, 5, sharing, FaultConfig::new(0.0));
            inert.run_to_end().unwrap();
            assert!(inert.fault_log().iter().all(|b| {
                b.link_bad == 0
                    && b.crashes == 0
                    && !b.blackout
                    && b.retries == 0
                    && b.install_failures == 0
            }));
            assert_eq!(inert.finish(), plain.finish(), "{sharing:?} diverged");
        }
    }

    #[test]
    fn faulted_runs_are_jobs_invariant() {
        let config = FaultConfig::new(0.25).with_crash_rate(0.03);
        for sharing in [TreeSharing::Shared, TreeSharing::Naive] {
            let mut serial = faulted(7, 6, sharing, config);
            serial.run_to_end().unwrap();
            let serial_log = serial.fault_log().to_vec();
            let serial_out = serial.finish();
            for jobs in [2, 4] {
                let mut sharded = faulted(7, 6, sharing, config).with_jobs(jobs);
                sharded.run_to_end().unwrap();
                assert_eq!(sharded.fault_log(), serial_log.as_slice());
                assert_eq!(
                    sharded.finish(),
                    serial_out,
                    "{sharing:?} diverged at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn fault_schedule_is_deterministic_in_the_seed() {
        let walk = |seed| {
            let mut sim = faulted(seed, 3, TreeSharing::Shared, FaultConfig::new(0.3));
            sim.run_to_end().unwrap();
            sim.fault_log().to_vec()
        };
        assert_eq!(walk(31), walk(31), "same seed, same fault schedule");
        let bad = |log: Vec<FaultBatch>| log.iter().map(|b| b.link_bad).collect::<Vec<_>>();
        assert_ne!(
            bad(walk(31)),
            bad(walk(32)),
            "seeds differ, schedules differ"
        );
    }

    #[test]
    fn recovery_beats_no_recovery_under_loss() {
        let run = |recovery| {
            let config = FaultConfig::new(0.3).with_recovery(recovery);
            let mut sim = faulted(7, 6, TreeSharing::Shared, config);
            sim.run_to_end().unwrap();
            sim.finish()
        };
        let on = run(true);
        let off = run(false);
        // The 80-node unit scenario never clears the paper's 95% fidelity
        // bar, so compare delivered fidelity: a failed install zeroes the
        // whole period, and retries turn a ~loss failure rate into ~loss^4.
        assert!(
            mean_fidelity(&on) > mean_fidelity(&off),
            "retry/repair must buy fidelity: on={} off={}",
            mean_fidelity(&on),
            mean_fidelity(&off)
        );
    }

    #[test]
    fn crashes_trigger_tree_repair() {
        let config = FaultConfig::new(0.05).with_crash_rate(0.05);
        let mut sim = faulted(7, 5, TreeSharing::Shared, config);
        sim.run_to_end().unwrap();
        let log = sim.fault_log().to_vec();
        assert!(
            log.iter().any(|b| b.crashes > 0),
            "5% of 80 nodes must crash"
        );
        assert!(
            log.iter()
                .any(|b| b.trees_rebuilt > 0 || b.naive_fallbacks > 0),
            "crashes into standing trees must force repairs"
        );
        sim.finish(); // refcount discipline still holds after repairs
    }

    #[test]
    fn blackout_fails_installs_inside_the_window() {
        let scenario = small_scenario(7);
        // Cover the whole region for the middle of the run: every install
        // whose collector sits anywhere is forced to fail, recovery or not.
        let blackout = Blackout {
            center: wsn_geom::Point::new(150.0, 150.0),
            radius_m: 500.0,
            from: 2,
            until: 5,
        };
        let config = FaultConfig::new(0.0).with_blackout(blackout);
        let set = QuerySet::generate(&scenario, 4);
        let mut sim = SteppedSim::with_faults(scenario, set, TreeSharing::Shared, config).unwrap();
        sim.run_to_end().unwrap();
        let log = sim.fault_log().to_vec();
        assert_eq!(
            log.iter().filter(|b| b.blackout).count(),
            3,
            "half-open window [2,5) covers three boundaries"
        );
        assert!(
            log.iter()
                .filter(|b| b.blackout)
                .all(|b| b.install_failures > 0),
            "a region-wide blackout must fail that boundary's installs"
        );
        sim.finish();
    }
}
