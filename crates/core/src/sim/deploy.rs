//! Deployment substrate construction shared by the single- and multi-user
//! simulations.
//!
//! This is the setup phase of `Simulation::new`, extracted verbatim so the
//! multi-user simulation builds the *identical* substrate — same RNG fork
//! order (placement = fork 1, CCP election = fork 2), same all-nodes spatial
//! grid, same backbone-only neighbour table — from the same scenario seed.
//! The single-user golden snapshots pin that this extraction changed nothing:
//! `tests/golden/fig4_quick.json` is byte-identical across the refactor.

use crate::config::Scenario;
use crate::error::ConfigError;
use std::time::Instant;
use wsn_geom::{Point, Rect, SpatialGrid};
use wsn_net::{NeighborTable, NodeRole};
use wsn_power::ccp::{elect_backbone, CcpConfig};
use wsn_power::PowerPlan;
use wsn_sim::SimRng;

/// The static substrate of one deployment: node positions, the all-nodes
/// spatial grid, the backbone neighbour table and the power plan.
#[derive(Debug)]
pub(crate) struct Deployment {
    pub(crate) positions: Vec<Point>,
    pub(crate) all_nodes_grid: SpatialGrid,
    pub(crate) neighbors: NeighborTable,
    pub(crate) plan: PowerPlan,
    /// Wall-clock spent on placement, the spatial grid and the neighbour
    /// table (a timing observation, not simulation state).
    pub(crate) neighbor_ms: f64,
    /// Wall-clock spent on the CCP backbone election.
    pub(crate) ccp_ms: f64,
}

impl Deployment {
    /// Builds the deployment for `scenario`, consuming forks 1 and 2 of the
    /// scenario's root RNG (the caller continues with fork 3 onwards, which
    /// is what keeps the single-user event stream byte-identical to the
    /// pre-extraction construction).
    pub(crate) fn build(scenario: &Scenario, rng: &mut SimRng) -> Result<Self, ConfigError> {
        Self::build_with(scenario, rng, elect_backbone)
    }

    /// [`Deployment::build`] with a caller-chosen election. The closure gets
    /// the placed positions, the region, the CCP config and fork 2 of the
    /// root RNG — which it may ignore (the churn-mode priority election is
    /// deterministic without it), but which `build_with` always consumes so
    /// the fork discipline (placement = fork 1, election = fork 2) holds for
    /// every caller identically.
    pub(crate) fn build_with(
        scenario: &Scenario,
        rng: &mut SimRng,
        elect: impl FnOnce(&[Point], Rect, &CcpConfig, &mut SimRng) -> Vec<NodeRole>,
    ) -> Result<Self, ConfigError> {
        let region = scenario.region();
        let phase_start = Instant::now();
        let ms_since = |start: Instant| start.elapsed().as_secs_f64() * 1e3;

        // --- Deployment -------------------------------------------------
        let mut placement_rng = rng.fork(1);
        let positions: Vec<Point> = (0..scenario.node_count)
            .map(|_| {
                Point::new(
                    placement_rng.gen_range_f64(region.min_x, region.max_x),
                    placement_rng.gen_range_f64(region.min_y, region.max_y),
                )
            })
            .collect();
        let comm_range = scenario.radio.comm_range_m;
        let mut all_nodes_grid =
            SpatialGrid::new(region, comm_range).map_err(|e| ConfigError::new(e.to_string()))?;
        all_nodes_grid.reserve(positions.len());
        for (i, &p) in positions.iter().enumerate() {
            all_nodes_grid.insert(i, p);
        }
        let neighbor_grid_ms = ms_since(phase_start);

        // --- Power management (CCP backbone + PSM schedule) --------------
        let phase_start = Instant::now();
        let mut ccp_rng = rng.fork(2);
        let roles = elect(&positions, region, &scenario.ccp, &mut ccp_rng);
        let ccp_ms = ms_since(phase_start);

        // The event loop only walks backbone adjacency (every flood and
        // routing hop filters on `is_backbone`), so the table is built among
        // the elected backbone — a fraction of the deployment — with results
        // identical to filtering the full table.
        let phase_start = Instant::now();
        let neighbors =
            NeighborTable::build_among(&positions, region, comm_range, |i| roles[i].is_backbone());
        let neighbor_ms = neighbor_grid_ms + ms_since(phase_start);

        let plan = PowerPlan::new(roles, scenario.sleep_schedule());
        Ok(Deployment {
            positions,
            all_nodes_grid,
            neighbors,
            plan,
            neighbor_ms,
            ccp_ms,
        })
    }

    /// A spatial grid over backbone nodes only, for nearest-collector
    /// lookups. The backbone is static after election, so one grid serves a
    /// whole run.
    pub(crate) fn backbone_grid(
        positions: &[Point],
        plan: &PowerPlan,
        scenario: &Scenario,
    ) -> SpatialGrid {
        let mut grid = SpatialGrid::new(scenario.region(), scenario.radio.comm_range_m)
            .expect("validated scenarios have a positive communication range");
        for node in plan.backbone_nodes() {
            grid.insert(node.index(), positions[node.index()]);
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_is_a_pure_function_of_scenario_and_rng() {
        let scenario = Scenario::paper_default()
            .with_node_count(120)
            .with_region_side(350.0)
            .with_seed(9);
        let build = || {
            let mut rng = SimRng::seed_from_u64(scenario.seed);
            Deployment::build(&scenario, &mut rng).unwrap()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.plan.roles(), b.plan.roles());
        assert!(a.plan.backbone_count() > 0);
        assert!(a.plan.backbone_count() < scenario.node_count);
    }

    #[test]
    fn rng_state_after_build_matches_two_manual_forks() {
        // The substrate must consume exactly forks 1 and 2: downstream
        // single-user streams (motion = fork 3, ...) depend on it.
        let scenario = Scenario::paper_default().with_node_count(60).with_seed(4);
        let mut rng = SimRng::seed_from_u64(scenario.seed);
        Deployment::build(&scenario, &mut rng).unwrap();
        let mut reference = SimRng::seed_from_u64(scenario.seed);
        let _ = reference.fork(1);
        let _ = reference.fork(2);
        assert_eq!(rng, reference);
    }
}
