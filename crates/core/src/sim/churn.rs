//! Seed-derived node churn schedules.
//!
//! Churn mode kills and joins a deterministic batch of nodes at every period
//! boundary. Each batch is a pure function of `(scenario seed, boundary)` —
//! its own RNG stream, independent of every other stream in the simulation —
//! so the schedule is identical whatever `--jobs` parallelism or admission
//! pattern drives the engine, which is what lets CI `cmp` churn outputs
//! byte-for-byte across job counts.
//!
//! A batch kills `floor(rate × alive)` distinct live nodes (a partial
//! Fisher–Yates draw over the ascending live-slot list) and joins the same
//! number of fresh nodes at uniform positions, keeping the population stable
//! so arbitrarily long runs stay within the peak slot count. Deaths are
//! applied before joins, so joiners deterministically recycle the slots the
//! batch just freed.

use crate::error::ConfigError;
use wsn_sim::{mix_seed, SimRng};

/// Stream tag for the per-boundary churn batches.
const CHURN_STREAM: u64 = 0x5EED_0000_0000_0005;

/// Churn-mode parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Fraction of the live population killed (and re-joined) per period
    /// boundary. Must be finite and strictly positive.
    pub rate: f64,
    /// When `true`, every batch's incremental repair is checked bit-identical
    /// against a full re-election (CI uses this; large-scale benches turn it
    /// off because the reference election is the thing being avoided).
    pub verify: bool,
}

impl ChurnConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `rate` is not finite, not positive, or
    /// at least 1 (a batch may not kill the entire population).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.rate.is_finite() || self.rate <= 0.0 || self.rate >= 1.0 {
            return Err(ConfigError::new(format!(
                "churn rate must be in (0, 1), got {}",
                self.rate
            )));
        }
        Ok(())
    }
}

/// One boundary's deaths, as slot indices. Join positions are drawn from the
/// same stream by the caller (via `NodeStore::spawn_uniform`) after the
/// deaths are applied.
#[derive(Debug, Clone)]
pub struct ChurnBatchPlan {
    /// The batch's RNG stream, positioned after the death draw; the caller
    /// draws join positions from it.
    pub rng: SimRng,
    /// Slots to kill, in draw order.
    pub deaths: Vec<usize>,
}

impl ChurnBatchPlan {
    /// Plans the batch for `boundary`: draws `floor(rate × alive)` distinct
    /// victims from `alive_slots` (which must be sorted ascending so the
    /// draw is independent of how the caller tracks liveness).
    pub fn generate(seed: u64, boundary: u64, rate: f64, alive_slots: &[usize]) -> Self {
        debug_assert!(
            alive_slots.windows(2).all(|w| w[0] <= w[1]),
            "alive slots must be ascending"
        );
        let mut rng = SimRng::seed_from_u64(mix_seed(seed, &[CHURN_STREAM, boundary]));
        let count = (rate * alive_slots.len() as f64).floor() as usize;
        // Partial Fisher–Yates: after i swaps, pool[..i] is a uniform
        // i-subset in uniform order.
        let mut pool = alive_slots.to_vec();
        for i in 0..count {
            let j = rng.gen_range_usize(i, pool.len());
            pool.swap(i, j);
        }
        pool.truncate(count);
        ChurnBatchPlan { rng, deaths: pool }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rates() {
        for rate in [0.0, -0.5, 1.0, 2.0, f64::NAN, f64::INFINITY] {
            let cfg = ChurnConfig { rate, verify: true };
            assert!(cfg.validate().is_err(), "rate {rate} must be rejected");
        }
        let ok = ChurnConfig {
            rate: 0.05,
            verify: false,
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn batch_is_deterministic_and_distinct() {
        let alive: Vec<usize> = (0..200).collect();
        let a = ChurnBatchPlan::generate(7, 3, 0.1, &alive);
        let b = ChurnBatchPlan::generate(7, 3, 0.1, &alive);
        assert_eq!(a.deaths, b.deaths, "same (seed, boundary) same batch");
        assert_eq!(a.deaths.len(), 20, "floor(0.1 × 200)");
        let mut sorted = a.deaths.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "victims are distinct");
        assert!(sorted.iter().all(|s| *s < 200));
        let c = ChurnBatchPlan::generate(7, 4, 0.1, &alive);
        assert_ne!(a.deaths, c.deaths, "each boundary draws its own stream");
    }

    #[test]
    fn small_populations_round_down_to_zero() {
        let alive: Vec<usize> = (0..9).collect();
        let plan = ChurnBatchPlan::generate(1, 1, 0.1, &alive);
        assert!(plan.deaths.is_empty(), "floor(0.9) = 0 deaths");
    }
}
