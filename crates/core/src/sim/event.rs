//! Events driving the protocol simulation.

use wsn_net::NodeId;

/// A discrete event in the MobiQuery protocol simulation.
///
/// Events carry the minimum state needed to resume the corresponding protocol
/// action; everything else lives in the per-query state tracked by the world.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A motion profile (by index into the pre-generated list) reaches the
    /// proxy and, through the query gateway, the network.
    ProfileDelivered(usize),

    /// A collector (or the proxy's attachment node) forwards the prefetch
    /// message for query `k` towards the k-th pickup point.
    PrefetchForward {
        /// Chain generation; stale generations are dropped (the cancel-message
        /// mechanism of Section 4.2).
        generation: u64,
        /// Query sequence number the prefetch message targets.
        k: u64,
        /// The node holding the prefetch message.
        from: NodeId,
    },

    /// One hop of the area anycast carrying the prefetch message for query `k`.
    PrefetchHop {
        /// Chain generation.
        generation: u64,
        /// Target query.
        k: u64,
        /// The greedy-forwarding route (source first, accepting node last).
        route: Vec<NodeId>,
        /// Index of the node currently holding the message.
        index: usize,
        /// Retransmission attempt for the current hop.
        attempt: u32,
    },

    /// The query-tree setup message is (re-)broadcast by a tree node to its
    /// children for query `k`.
    SetupBroadcast {
        /// Target query.
        k: u64,
        /// The broadcasting tree node.
        node: NodeId,
        /// Retransmission attempt.
        attempt: u32,
    },

    /// A backbone tree node receives the setup message for query `k`.
    SetupArrive {
        /// Target query.
        k: u64,
        /// The receiving node.
        node: NodeId,
    },

    /// A buffered setup message is delivered to a duty-cycled node during one
    /// of its active windows.
    SleepingDeliver {
        /// Target query.
        k: u64,
        /// The duty-cycled node being woken into the query.
        node: NodeId,
        /// Retransmission attempt.
        attempt: u32,
    },

    /// A duty-cycled leaf wakes at its scheduled reading time, samples its
    /// sensor and sends the reading to its parent.
    LeafSend {
        /// Target query.
        k: u64,
        /// The leaf node.
        node: NodeId,
    },

    /// A data frame (reading or partial aggregate) is transmitted from one
    /// node to another, with link-layer retransmission on loss.
    DataSend {
        /// Target query.
        k: u64,
        /// Sender.
        from: NodeId,
        /// Receiver (the sender's tree parent).
        to: NodeId,
        /// The node ids whose readings are aggregated in this frame.
        contributions: Vec<NodeId>,
        /// Retransmission attempt.
        attempt: u32,
    },

    /// A partial aggregate arrives at a tree node.
    DataArrive {
        /// Target query.
        k: u64,
        /// The receiving tree node.
        node: NodeId,
        /// The node ids whose readings are aggregated in this message.
        contributions: Vec<NodeId>,
    },

    /// A tree node's sub-deadline (Equation 1) fires: it forwards its partial
    /// aggregate to its parent regardless of missing children.
    AggregateSend {
        /// Target query.
        k: u64,
        /// The sending tree node.
        node: NodeId,
    },

    /// The user reaches the k-th pickup point: the result (whatever reached
    /// the collector) is handed over and the query is scored.
    QueryDeadline {
        /// Query sequence number.
        k: u64,
    },

    /// No-Prefetching baseline: the user broadcasts the query for result `k`
    /// into the network at the start of the period.
    NpLaunch {
        /// Query sequence number.
        k: u64,
    },
}
