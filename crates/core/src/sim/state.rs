//! Per-query protocol state.

use std::collections::{HashMap, HashSet};
use wsn_geom::Point;
use wsn_net::{FloodTree, NodeId};
use wsn_sim::SimTime;

/// Everything the network remembers about one outstanding query (one pickup
/// point): the collector, the query tree, setup progress and the partial
/// aggregates flowing towards the collector.
///
/// This is exactly the state whose footprint the paper's storage-cost
/// analysis (Section 5.2) bounds: just-in-time prefetching keeps only a
/// handful of these alive at any instant, greedy prefetching keeps one per
/// remaining query period.
#[derive(Debug, Clone)]
pub struct QueryState {
    /// The query sequence number.
    pub k: u64,
    /// The prefetch-chain generation that installed this state.
    pub generation: u64,
    /// The pickup point predicted from the motion profile in force when the
    /// prefetch message was forwarded.
    pub predicted_pickup: Point,
    /// The collector node (root of the query tree).
    pub collector: NodeId,
    /// When the collector received the prefetch message (or, for the
    /// No-Prefetching baseline, when the user broadcast the query).
    pub prefetch_received_at: SimTime,
    /// The query tree over backbone nodes in the (predicted) query area.
    pub tree: FloodTree,
    /// When each backbone tree node received the setup message.
    pub setup_arrival: HashMap<NodeId, SimTime>,
    /// The backbone parent assigned to each duty-cycled node in the area.
    pub sleeping_parent: HashMap<NodeId, NodeId>,
    /// When each duty-cycled node actually received the buffered setup.
    pub sleeping_ready: HashMap<NodeId, SimTime>,
    /// Partial aggregates accumulated at each tree node (contributing node ids).
    pub received: HashMap<NodeId, HashSet<NodeId>>,
    /// Tree nodes that have already forwarded their aggregate upward.
    pub sent: HashSet<NodeId>,
    /// Contributions that have reached the collector so far.
    pub collector_received: HashSet<NodeId>,
    /// Whether the setup flood for this query has started.
    pub setup_started: bool,
}

impl QueryState {
    /// Creates the state installed when a collector accepts the prefetch
    /// message (or the NP broadcast) for query `k`.
    pub fn new(
        k: u64,
        generation: u64,
        predicted_pickup: Point,
        collector: NodeId,
        prefetch_received_at: SimTime,
        tree: FloodTree,
    ) -> Self {
        QueryState {
            k,
            generation,
            predicted_pickup,
            collector,
            prefetch_received_at,
            tree,
            setup_arrival: HashMap::new(),
            sleeping_parent: HashMap::new(),
            sleeping_ready: HashMap::new(),
            received: HashMap::new(),
            sent: HashSet::new(),
            collector_received: HashSet::new(),
            setup_started: false,
        }
    }

    /// Returns `true` when `node` (a backbone tree member) already has the
    /// setup message.
    pub fn has_setup(&self, node: NodeId) -> bool {
        self.setup_arrival.contains_key(&node)
    }

    /// Records a partial aggregate arriving at `node`.
    pub fn accumulate(&mut self, node: NodeId, contributions: impl IntoIterator<Item = NodeId>) {
        self.received.entry(node).or_default().extend(contributions);
    }

    /// Takes the set a node forwards upward: its own accumulated
    /// contributions (the caller adds the node's own reading separately).
    pub fn take_accumulated(&mut self, node: NodeId) -> HashSet<NodeId> {
        self.received.remove(&node).unwrap_or_default()
    }

    /// Number of nodes (backbone + duty-cycled) that are set up to
    /// participate in this query.
    pub fn participants(&self) -> usize {
        self.setup_arrival.len() + self.sleeping_ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Rect;
    use wsn_net::NeighborTable;

    fn tiny_state() -> QueryState {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(100.0, 0.0),
        ];
        let table = NeighborTable::build(&positions, Rect::square(200.0), 105.0);
        let tree = FloodTree::build(NodeId(0), &table, |_| true);
        QueryState::new(3, 1, Point::new(10.0, 0.0), NodeId(0), SimTime::ZERO, tree)
    }

    #[test]
    fn accumulate_and_take() {
        let mut s = tiny_state();
        s.accumulate(NodeId(1), [NodeId(2), NodeId(1)]);
        s.accumulate(NodeId(1), [NodeId(2)]);
        let set = s.take_accumulated(NodeId(1));
        assert_eq!(set.len(), 2);
        assert!(s.take_accumulated(NodeId(1)).is_empty());
    }

    #[test]
    fn setup_tracking() {
        let mut s = tiny_state();
        assert!(!s.has_setup(NodeId(0)));
        s.setup_arrival.insert(NodeId(0), SimTime::from_secs(1));
        assert!(s.has_setup(NodeId(0)));
        s.sleeping_ready.insert(NodeId(2), SimTime::from_secs(2));
        assert_eq!(s.participants(), 2);
    }
}
